"""Time-averaged cost constraints via Lyapunov virtual queues.

The paper's Problem 1 is posed "to minimize the convergence error under
*time-averaged* cost constraints" (§I, §VI): the channel budget
``E[Σ_m 1^t_{m,n}] ≤ K_n`` need only hold on average over time, not at
every individual step.  The standard tool for such constraints is a
Lyapunov virtual queue with drift-plus-penalty control (Neely 2010):

- each edge keeps a virtual queue ``Z_n`` tracking accumulated budget
  overshoot, ``Z_n(t+1) = max(0, Z_n(t) + cost_n(t) − K_n)``;
- the per-step budget handed to the sampler is relaxed when the queue
  is short and tightened when it is long,
  ``B_n(t) = clip(K_n + (K_n − Z_n(t)) / V, B_min, B_max)``,
  where ``V`` trades constraint slack against sampling freedom.

Queue stability (``Z_n(t)/t → 0``) implies the long-run average cost
satisfies the constraint; :class:`BudgetedSampler` wraps any
:class:`~repro.sampling.base.Sampler` with this controller so MACH (or
a baseline) can burst above ``K_n`` on steps where its estimates say
participation is valuable, repaying the debt later.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.sampling.base import DeviceProfile, Sampler
from repro.utils.validation import check_positive


class TimeAveragedBudget:
    """Virtual-queue controller for one edge's time-averaged budget.

    Parameters
    ----------
    capacity:
        The long-run average budget K_n (Eq. (3) relaxed over time).
    control_strength:
        The Lyapunov ``V`` parameter; larger values let the per-step
        budget deviate further from K_n before the queue pulls it back.
    min_budget:
        Floor for the per-step budget (keeps at least some exploration
        even while repaying debt).
    max_budget_factor:
        Cap on the per-step budget as a multiple of ``capacity``.
    """

    def __init__(
        self,
        capacity: float,
        control_strength: float = 1.0,
        min_budget: float = 0.5,
        max_budget_factor: float = 2.0,
    ) -> None:
        check_positive("capacity", capacity)
        check_positive("control_strength", control_strength)
        check_positive("min_budget", min_budget)
        if max_budget_factor < 1.0:
            raise ValueError(
                f"max_budget_factor must be >= 1, got {max_budget_factor}"
            )
        self.capacity = float(capacity)
        self.control_strength = float(control_strength)
        self.min_budget = float(min_budget)
        self.max_budget = float(capacity * max_budget_factor)
        self.queue = 0.0
        self._total_cost = 0.0
        self._steps = 0

    def allowed_budget(self) -> float:
        """Per-step budget for the next step under drift-plus-penalty."""
        relaxed = self.capacity + (self.capacity - self.queue) / self.control_strength
        return float(np.clip(relaxed, self.min_budget, self.max_budget))

    def observe_cost(self, cost: float) -> None:
        """Feed back the realized per-step cost (participant count)."""
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        self.queue = max(0.0, self.queue + cost - self.capacity)
        self._total_cost += cost
        self._steps += 1

    @property
    def average_cost(self) -> float:
        """Realized long-run average cost so far."""
        if self._steps == 0:
            return 0.0
        return self._total_cost / self._steps

    @property
    def steps(self) -> int:
        return self._steps

    def constraint_satisfied(self, slack: float = 1e-6) -> bool:
        """Whether the *time-averaged* constraint currently holds.

        The virtual-queue bound gives average cost ≤ K_n + Z(t)/t, so we
        check the queue-normalized criterion rather than the raw mean
        (which can transiently exceed K_n early on).
        """
        if self._steps == 0:
            return True
        return self.average_cost <= self.capacity + self.queue / self._steps + slack


class BudgetedSampler(Sampler):
    """Wrap any sampler with per-edge time-averaged budget control.

    The wrapper intercepts :meth:`probabilities`: the inner strategy is
    asked for a strategy under the *controller's* per-step budget
    instead of the raw K_n, and the realized expected cost (Σq) is fed
    back to the queue.  All other hooks delegate unchanged.
    """

    requires_oracle = False

    def __init__(
        self,
        inner: Sampler,
        control_strength: float = 1.0,
        max_budget_factor: float = 2.0,
    ) -> None:
        self.inner = inner
        self.name = f"budgeted_{inner.name}"
        self.requires_oracle = inner.requires_oracle
        self.control_strength = control_strength
        self.max_budget_factor = max_budget_factor
        self._controllers: Dict[int, TimeAveragedBudget] = {}

    def _controller(self, edge: int, capacity: float) -> TimeAveragedBudget:
        if edge not in self._controllers:
            self._controllers[edge] = TimeAveragedBudget(
                capacity,
                control_strength=self.control_strength,
                max_budget_factor=self.max_budget_factor,
            )
        return self._controllers[edge]

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        self.inner.setup(profiles, num_edges)

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        controller = self._controller(edge, capacity)
        budget = controller.allowed_budget()
        q = self.inner.probabilities(t, edge, device_indices, budget)
        controller.observe_cost(float(np.sum(q)))
        return q

    def observe_participation(self, t, device, grad_sq_norms, mean_loss) -> None:
        self.inner.observe_participation(t, device, grad_sq_norms, mean_loss)

    def observe_oracle(self, t, device, grad_sq_norm) -> None:
        self.inner.observe_oracle(t, device, grad_sq_norm)

    def on_global_sync(self, t) -> None:
        self.inner.on_global_sync(t)

    def queue_lengths(self) -> Dict[int, float]:
        """Current virtual-queue length per edge (diagnostics)."""
        return {edge: c.queue for edge, c in self._controllers.items()}

    def average_costs(self) -> Dict[int, float]:
        """Realized average per-step cost per edge (diagnostics)."""
        return {edge: c.average_cost for edge, c in self._controllers.items()}

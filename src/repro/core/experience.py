"""Algorithm 2: online experience updating with a UCB estimator.

Every device keeps a *gradient experience buffer* ``G^t_m`` holding the
squared ℓ2-norms of all its local stochastic gradients since the last
edge-to-cloud communication (Eq. (14)).  At each communication step the
device refreshes its estimated maximum gradient norm ``G̃²_m`` with the
UCB score of Eq. (15):

.. math::
    \\tilde G^2_m = \\underbrace{\\max_{t'} \\; 1^{t'}_{m,n}
    \\,\\mathrm{Avg}(G^{t'}_m)}_{exploitation}
    + \\underbrace{\\sqrt{\\log(t) / \\textstyle\\sum_{t'}
    1^{t'}_{m,n}}}_{exploration}

and clears the buffer.  Devices never sampled keep an infinite
exploration bonus, so each edge is driven to try them — this is what
lets MACH operate with no prior knowledge of device data statistics.

Exploitation window
-------------------
Read literally, Eq. (15)'s max ranges over *all* past steps, making the
exploitation term a lifetime maximum: since gradient norms are largest
at the start of training, every device's estimate freezes at its
early-training value and the sampling strategy stops adapting — at odds
with the algorithm's stated goal of tracking dynamic edge conditions
(and with the buffer-clearing in Algorithm 2 line 4, which exists
precisely so new windows reflect current statistics).  We therefore
default to ``window="recent"``: the max is taken over the buffer
snapshots of the *current* inter-sync window, with the previous
estimate retained when the device did not participate at all.  The
literal reading remains available as ``window="lifetime"`` and the
ABL-UCB benchmark compares the two.

Other documented deviations: Eq. (15)'s ``log(t)`` is undefined at
``t ∈ {0, 1}``; we use ``log(t + 1)`` like standard UCB1 round counts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_membership, check_positive

#: Valid exploitation-window modes.
WINDOW_MODES = ("recent", "lifetime")


class DeviceExperience:
    """Per-device state of Algorithm 2."""

    def __init__(self, device_id: int, window: str = "recent") -> None:
        check_membership("window", window, WINDOW_MODES)
        self.device_id = device_id
        self.window = window
        #: Gradient experience buffer G^t_m (squared norms since last sync).
        self.buffer: List[float] = []
        #: Max over participated-step buffer averages in the current window.
        self.window_best: float = 0.0
        #: Whether the device participated at least once this window.
        self.window_participated: bool = False
        #: Lifetime max over participated-step buffer averages (term A,
        #: literal Eq. (15) reading).
        self.lifetime_best: float = 0.0
        #: Total participation count Σ_{t'} 1^{t'}_{m,n}.
        self.participation_count: int = 0
        #: Latest exploitation value carried across syncs.
        self._exploit: Optional[float] = None
        #: Latest full UCB estimate G̃²_m (None until first computable).
        self._estimate: Optional[float] = None

    def record(self, grad_sq_norms: Sequence[float]) -> None:
        """Fold one participated step's local gradients into the buffer.

        Implements Eq. (14) followed by the incremental update of the
        exploitation term's running maximum.
        """
        norms = [float(g) for g in grad_sq_norms]
        if not norms:
            raise ValueError("a participated step must report >= 1 gradient norm")
        if any(g < 0 for g in norms):
            raise ValueError("squared gradient norms must be non-negative")
        self.buffer.extend(norms)
        self.participation_count += 1
        running_average = float(np.mean(self.buffer))
        self.window_best = max(self.window_best, running_average)
        self.window_participated = True
        self.lifetime_best = max(self.lifetime_best, running_average)

    def record_failure(self) -> None:
        """A sampled-but-failed step: the device was tried but uploaded
        nothing.

        Counts toward Σ 1^{t'}_{m,n} — shrinking the exploration bonus
        — while leaving the exploitation term untouched, so a device
        that keeps failing drifts down the UCB ranking: the estimator
        learns device *reliability* alongside gradient magnitude.
        """
        self.participation_count += 1

    def exploration_bonus(self, t: int) -> float:
        """Term B of Eq. (15); infinite when the device was never sampled."""
        if self.participation_count == 0:
            return math.inf
        return math.sqrt(math.log(t + 1) / self.participation_count)

    def _exploitation(self) -> float:
        """Term A under the configured window mode."""
        if self.window == "lifetime":
            return self.lifetime_best
        if self.window_participated:
            return self.window_best
        # No participation this window: carry the previous estimate.
        return self._exploit if self._exploit is not None else 0.0

    def ucb_estimate(self, t: int) -> float:
        """The full Eq. (15) score at communication step ``t``."""
        return self._exploitation() + self.exploration_bonus(t)

    def sync(self, t: int) -> float:
        """Algorithm 2 lines 2–4: refresh G̃²_m and clear the buffer."""
        self._exploit = self._exploitation()
        self._estimate = self._exploit + self.exploration_bonus(t)
        self.buffer = []
        self.window_best = 0.0
        self.window_participated = False
        return self._estimate

    @property
    def estimate(self) -> float:
        """Latest synced G̃²_m; infinite before the device is ever estimated."""
        if self._estimate is None:
            return math.inf
        return self._estimate

    def audit_components(self) -> "tuple[float, float, float]":
        """The latest synced ``(empirical, bonus, estimate)`` decomposition.

        ``empirical`` is the Eq. (15) exploitation term at the last
        sync (0.0 before any sync), ``bonus`` the exploration term
        (recovered exactly as ``estimate − empirical`` since the sync
        computed ``estimate = empirical + bonus``; infinite while the
        device was never estimated), ``estimate`` the G̃²_m the edge
        strategy consumes.  Read-only — used by the MACH decision audit
        trail (:mod:`repro.obs.audit`).
        """
        empirical = self._exploit if self._exploit is not None else 0.0
        estimate = self.estimate
        bonus = estimate - empirical if math.isfinite(estimate) else math.inf
        return empirical, bonus, estimate

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the Algorithm-2 state."""
        return {
            "buffer": list(self.buffer),
            "window_best": self.window_best,
            "window_participated": self.window_participated,
            "lifetime_best": self.lifetime_best,
            "participation_count": self.participation_count,
            "exploit": self._exploit,
            "estimate": self._estimate,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.buffer = [float(g) for g in state["buffer"]]
        self.window_best = float(state["window_best"])
        self.window_participated = bool(state["window_participated"])
        self.lifetime_best = float(state["lifetime_best"])
        self.participation_count = int(state["participation_count"])
        self._exploit = None if state["exploit"] is None else float(state["exploit"])
        self._estimate = (
            None if state["estimate"] is None else float(state["estimate"])
        )


class ExperienceTracker:
    """The population of per-device experiences, synced on Algorithm 1's clock."""

    def __init__(self, num_devices: int, window: str = "recent") -> None:
        check_positive("num_devices", num_devices)
        check_membership("window", window, WINDOW_MODES)
        self.window = window
        self.devices: Dict[int, DeviceExperience] = {
            m: DeviceExperience(m, window=window) for m in range(num_devices)
        }

    def record(self, device: int, grad_sq_norms: Sequence[float]) -> None:
        """Record one participated step for ``device`` (Eq. (14))."""
        self._get(device).record(grad_sq_norms)

    def record_failure(self, device: int) -> None:
        """Record a sampled-but-failed step for ``device``."""
        self._get(device).record_failure()

    def sync_all(self, t: int) -> None:
        """Edge-to-cloud step: refresh every device's UCB estimate."""
        for exp in self.devices.values():
            exp.sync(t)

    def estimates(self, device_indices: Sequence[int]) -> np.ndarray:
        """Current G̃²_m for the requested devices (inf ⇒ never estimated)."""
        return np.array([self._get(m).estimate for m in device_indices])

    def audit_components(
        self, device_indices: Sequence[int]
    ) -> Dict[str, List[float]]:
        """Per-device UCB decomposition for the requested devices.

        Returns aligned ``empirical`` / ``bonus`` / ``estimate`` lists —
        the audit-trail view of :meth:`estimates` (see
        :meth:`DeviceExperience.audit_components`).
        """
        empirical: List[float] = []
        bonus: List[float] = []
        estimate: List[float] = []
        for m in device_indices:
            e, b, g = self._get(m).audit_components()
            empirical.append(e)
            bonus.append(b)
            estimate.append(g)
        return {"empirical": empirical, "bonus": bonus, "estimate": estimate}

    def participation_counts(self) -> np.ndarray:
        """Per-device total participation counts (diagnostics)."""
        size = max(self.devices) + 1
        counts = np.zeros(size, dtype=int)
        for m, exp in self.devices.items():
            counts[m] = exp.participation_count
        return counts

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of every device's experience."""
        return {
            "window": self.window,
            "devices": {
                str(m): exp.state_dict() for m, exp in self.devices.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into an existing tracker."""
        if state.get("window") != self.window:
            raise ValueError(
                f"checkpoint window mode {state.get('window')!r} does not "
                f"match tracker window {self.window!r}"
            )
        devices = state.get("devices", {})
        if set(devices) != {str(m) for m in self.devices}:
            raise ValueError(
                "checkpoint device population does not match the tracker"
            )
        for key, device_state in devices.items():
            self.devices[int(key)].load_state_dict(device_state)

    def _get(self, device: int) -> DeviceExperience:
        if device not in self.devices:
            raise KeyError(f"unknown device {device}")
        return self.devices[device]

"""Algorithm 2: online experience updating with a UCB estimator.

Every device keeps a *gradient experience buffer* ``G^t_m`` holding the
squared ℓ2-norms of all its local stochastic gradients since the last
edge-to-cloud communication (Eq. (14)).  At each communication step the
device refreshes its estimated maximum gradient norm ``G̃²_m`` with the
UCB score of Eq. (15):

.. math::
    \\tilde G^2_m = \\underbrace{\\max_{t'} \\; 1^{t'}_{m,n}
    \\,\\mathrm{Avg}(G^{t'}_m)}_{exploitation}
    + \\underbrace{\\sqrt{\\log(t) / \\textstyle\\sum_{t'}
    1^{t'}_{m,n}}}_{exploration}

and clears the buffer.  Devices never sampled keep an infinite
exploration bonus, so each edge is driven to try them — this is what
lets MACH operate with no prior knowledge of device data statistics.

Exploitation window
-------------------
Read literally, Eq. (15)'s max ranges over *all* past steps, making the
exploitation term a lifetime maximum: since gradient norms are largest
at the start of training, every device's estimate freezes at its
early-training value and the sampling strategy stops adapting — at odds
with the algorithm's stated goal of tracking dynamic edge conditions
(and with the buffer-clearing in Algorithm 2 line 4, which exists
precisely so new windows reflect current statistics).  We therefore
default to ``window="recent"``: the max is taken over the buffer
snapshots of the *current* inter-sync window, with the previous
estimate retained when the device did not participate at all.  The
literal reading remains available as ``window="lifetime"`` and the
ABL-UCB benchmark compares the two.

Other documented deviations: Eq. (15)'s ``log(t)`` is undefined at
``t ∈ {0, 1}``; we use ``log(t + 1)`` like standard UCB1 round counts.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_membership, check_positive

#: Valid exploitation-window modes.
WINDOW_MODES = ("recent", "lifetime")


class DeviceExperience:
    """Per-device state of Algorithm 2."""

    def __init__(self, device_id: int, window: str = "recent") -> None:
        check_membership("window", window, WINDOW_MODES)
        self.device_id = device_id
        self.window = window
        #: Gradient experience buffer G^t_m (squared norms since last sync).
        self.buffer: List[float] = []
        #: Max over participated-step buffer averages in the current window.
        self.window_best: float = 0.0
        #: Whether the device participated at least once this window.
        self.window_participated: bool = False
        #: Lifetime max over participated-step buffer averages (term A,
        #: literal Eq. (15) reading).
        self.lifetime_best: float = 0.0
        #: Total participation count Σ_{t'} 1^{t'}_{m,n}.
        self.participation_count: int = 0
        #: Latest exploitation value carried across syncs.
        self._exploit: Optional[float] = None
        #: Latest full UCB estimate G̃²_m (None until first computable).
        self._estimate: Optional[float] = None

    def record(self, grad_sq_norms: Sequence[float]) -> None:
        """Fold one participated step's local gradients into the buffer.

        Implements Eq. (14) followed by the incremental update of the
        exploitation term's running maximum.
        """
        norms = [float(g) for g in grad_sq_norms]
        if not norms:
            raise ValueError("a participated step must report >= 1 gradient norm")
        if any(g < 0 for g in norms):
            raise ValueError("squared gradient norms must be non-negative")
        self.buffer.extend(norms)
        self.participation_count += 1
        running_average = float(np.mean(self.buffer))
        self.window_best = max(self.window_best, running_average)
        self.window_participated = True
        self.lifetime_best = max(self.lifetime_best, running_average)

    def record_failure(self) -> None:
        """A sampled-but-failed step: the device was tried but uploaded
        nothing.

        Counts toward Σ 1^{t'}_{m,n} — shrinking the exploration bonus
        — while leaving the exploitation term untouched, so a device
        that keeps failing drifts down the UCB ranking: the estimator
        learns device *reliability* alongside gradient magnitude.
        """
        self.participation_count += 1

    def exploration_bonus(self, t: int) -> float:
        """Term B of Eq. (15); infinite when the device was never sampled."""
        if self.participation_count == 0:
            return math.inf
        return math.sqrt(math.log(t + 1) / self.participation_count)

    def _exploitation(self) -> float:
        """Term A under the configured window mode."""
        if self.window == "lifetime":
            return self.lifetime_best
        if self.window_participated:
            return self.window_best
        # No participation this window: carry the previous estimate.
        return self._exploit if self._exploit is not None else 0.0

    def ucb_estimate(self, t: int) -> float:
        """The full Eq. (15) score at communication step ``t``."""
        return self._exploitation() + self.exploration_bonus(t)

    def sync(self, t: int) -> float:
        """Algorithm 2 lines 2–4: refresh G̃²_m and clear the buffer."""
        self._exploit = self._exploitation()
        self._estimate = self._exploit + self.exploration_bonus(t)
        self.buffer = []
        self.window_best = 0.0
        self.window_participated = False
        return self._estimate

    @property
    def estimate(self) -> float:
        """Latest synced G̃²_m; infinite before the device is ever estimated."""
        if self._estimate is None:
            return math.inf
        return self._estimate

    def audit_components(self) -> "tuple[float, float, float]":
        """The latest synced ``(empirical, bonus, estimate)`` decomposition.

        ``empirical`` is the Eq. (15) exploitation term at the last
        sync (0.0 before any sync), ``bonus`` the exploration term
        (recovered exactly as ``estimate − empirical`` since the sync
        computed ``estimate = empirical + bonus``; infinite while the
        device was never estimated), ``estimate`` the G̃²_m the edge
        strategy consumes.  Read-only — used by the MACH decision audit
        trail (:mod:`repro.obs.audit`).
        """
        empirical = self._exploit if self._exploit is not None else 0.0
        estimate = self.estimate
        bonus = estimate - empirical if math.isfinite(estimate) else math.inf
        return empirical, bonus, estimate

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the Algorithm-2 state."""
        return {
            "buffer": list(self.buffer),
            "window_best": self.window_best,
            "window_participated": self.window_participated,
            "lifetime_best": self.lifetime_best,
            "participation_count": self.participation_count,
            "exploit": self._exploit,
            "estimate": self._estimate,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.buffer = [float(g) for g in state["buffer"]]
        self.window_best = float(state["window_best"])
        self.window_participated = bool(state["window_participated"])
        self.lifetime_best = float(state["lifetime_best"])
        self.participation_count = int(state["participation_count"])
        self._exploit = None if state["exploit"] is None else float(state["exploit"])
        self._estimate = (
            None if state["estimate"] is None else float(state["estimate"])
        )


class DeviceExperienceView:
    """Read-only per-device window into the tracker's array storage.

    Mirrors the :class:`DeviceExperience` attribute surface (buffer,
    bests, counts, :meth:`exploration_bonus`, :attr:`estimate`) so
    diagnostics written against the scalar implementation keep working
    against the array-backed tracker.  Mutations go through the tracker.
    """

    __slots__ = ("_tracker", "device_id")

    def __init__(self, tracker: "ExperienceTracker", device_id: int) -> None:
        self._tracker = tracker
        self.device_id = device_id

    @property
    def window(self) -> str:
        return self._tracker.window

    @property
    def buffer(self) -> List[float]:
        t, m = self._tracker, self.device_id
        return [float(g) for g in t._buffer_data[m][: int(t._buffer_len[m])]]

    @property
    def window_best(self) -> float:
        return float(self._tracker._window_best[self.device_id])

    @property
    def window_participated(self) -> bool:
        return bool(self._tracker._window_participated[self.device_id])

    @property
    def lifetime_best(self) -> float:
        return float(self._tracker._lifetime_best[self.device_id])

    @property
    def participation_count(self) -> int:
        return int(self._tracker._participation_count[self.device_id])

    @property
    def estimate(self) -> float:
        """Latest synced G̃²_m; infinite before the device is ever estimated."""
        return float(self._tracker.estimates([self.device_id])[0])

    def exploration_bonus(self, t: int) -> float:
        """Term B of Eq. (15); infinite when the device was never sampled."""
        count = self.participation_count
        if count == 0:
            return math.inf
        return math.sqrt(math.log(t + 1) / count)

    def audit_components(self) -> "tuple[float, float, float]":
        """The latest synced ``(empirical, bonus, estimate)`` decomposition."""
        components = self._tracker.audit_components([self.device_id])
        return (
            components["empirical"][0],
            components["bonus"][0],
            components["estimate"][0],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceExperienceView(device_id={self.device_id}, "
            f"participation_count={self.participation_count})"
        )


class _DeviceViews(Mapping):
    """Mapping of device id → :class:`DeviceExperienceView`.

    Keeps ``tracker.devices`` usable like the old ``Dict[int,
    DeviceExperience]``: ``tracker.devices[m]``, iteration over ids,
    ``len``, ``in`` and ``max`` all behave as before.
    """

    __slots__ = ("_tracker",)

    def __init__(self, tracker: "ExperienceTracker") -> None:
        self._tracker = tracker

    def __getitem__(self, device: int) -> DeviceExperienceView:
        if not 0 <= device < self._tracker.num_devices:
            raise KeyError(f"unknown device {device}")
        return DeviceExperienceView(self._tracker, int(device))

    def __iter__(self):
        return iter(range(self._tracker.num_devices))

    def __len__(self) -> int:
        return self._tracker.num_devices


class ExperienceTracker:
    """The population of per-device experiences, synced on Algorithm 1's clock.

    Array-backed: the per-device Algorithm-2 scalars live in
    structure-of-arrays numpy storage sized by the explicit device
    population, so the per-sync refresh (:meth:`sync_all`) and the
    per-plan reads (:meth:`estimates` / :meth:`audit_components`) are
    single vectorized ops instead of Python loops over
    :class:`DeviceExperience` objects.  The public surface, numerical
    behavior and :meth:`state_dict` JSON schema are unchanged from the
    scalar implementation (:class:`DeviceExperience` remains the
    per-device reference twin, tested for exact agreement).

    Two bit-stability choices keep kill/resume and the reference twin
    exact: the running buffer average is ``np.mean`` over the *full*
    buffer (pairwise summation over the same values is deterministic,
    whereas an incremental sum would group additions differently after
    a checkpoint restore), and every bonus computation uses the same
    ``math.log`` / ``np.sqrt`` / divide sequence the scalar twin makes
    (all correctly rounded elementwise, so vector and scalar results
    match bit for bit).

    Lazy per-device sync
    --------------------
    :meth:`sync_all` is O(touched), not O(population): only devices
    with window activity since the previous sync (records, failures,
    arrival seeds) need their exploitation term folded; everyone else's
    estimate is a pure function of ``(exploit, count-at-sync, t)`` and
    is materialized on demand by :meth:`estimates`.  A run sampling K
    devices per step therefore pays O(K · T_g) per sync regardless of
    how many devices exist — the city-scale regime where K ≪ N.  The
    materialized values are bit-identical to the former eager refresh
    because the same scalar ``log`` feeds the same elementwise
    ``sqrt``/divide, just evaluated for the requested rows only.
    """

    def __init__(self, num_devices: int, window: str = "recent") -> None:
        check_positive("num_devices", num_devices)
        check_membership("window", window, WINDOW_MODES)
        self.window = window
        self.num_devices = int(num_devices)
        n = self.num_devices
        #: Per-device gradient experience buffers G^t_m (Eq. (14)):
        #: growable float arrays, valid up to ``_buffer_len[m]``.
        self._buffer_data: List[np.ndarray] = [np.empty(0) for _ in range(n)]
        self._buffer_len = np.zeros(n, dtype=int)
        self._window_best = np.zeros(n)
        self._window_participated = np.zeros(n, dtype=bool)
        self._lifetime_best = np.zeros(n)
        self._participation_count = np.zeros(n, dtype=int)
        # Exploitation term carried across syncs (0.0 until a device is
        # first folded; the JSON ``None`` state is tracked by the flag
        # array plus the has-any-sync-happened counter below).
        self._exploit = np.zeros(n)
        self._has_exploit = np.zeros(n, dtype=bool)
        #: Participation count frozen at the device's last estimate
        #: refresh — the denominator of its current exploration bonus.
        self._synced_count = np.zeros(n, dtype=int)
        #: Devices with window/count activity since the last sync; the
        #: only rows the next :meth:`sync_all` must fold.
        self._touched: set = set()
        #: Clock of the last sync (None before the first): with
        #: ``_synced_count`` this reproduces every untouched device's
        #: frozen estimate on demand.
        self._last_sync_t: Optional[int] = None
        self._num_syncs = 0
        #: Estimates pinned outside the lazy formula (arrival seeds and
        #: checkpoint-restored values, which freeze until the next
        #: sync).  Allocated only while such pins exist.
        self._explicit_estimate: Optional[np.ndarray] = None
        self._has_explicit: Optional[np.ndarray] = None

    def _pin_estimate(self, device: int, value: float) -> None:
        """Pin one device's estimate until the next sync."""
        if self._explicit_estimate is None:
            self._explicit_estimate = np.zeros(self.num_devices)
            self._has_explicit = np.zeros(self.num_devices, dtype=bool)
        self._explicit_estimate[device] = value
        self._has_explicit[device] = True

    @property
    def devices(self) -> _DeviceViews:
        """Mapping of device id → read-only per-device experience view."""
        return _DeviceViews(self)

    def _check_device(self, device: int) -> int:
        if not 0 <= device < self.num_devices:
            raise KeyError(f"unknown device {device}")
        return int(device)

    def _check_indices(self, device_indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(device_indices, dtype=int)
        if idx.size:
            bad = (idx < 0) | (idx >= self.num_devices)
            if bad.any():
                raise KeyError(f"unknown device {int(idx[bad][0])}")
        return idx

    def record(self, device: int, grad_sq_norms: Sequence[float]) -> None:
        """Record one participated step for ``device`` (Eq. (14))."""
        m = self._check_device(device)
        norms = [float(g) for g in grad_sq_norms]
        if not norms:
            raise ValueError("a participated step must report >= 1 gradient norm")
        if any(g < 0 for g in norms):
            raise ValueError("squared gradient norms must be non-negative")
        length = int(self._buffer_len[m])
        need = length + len(norms)
        data = self._buffer_data[m]
        if need > data.size:
            grown = np.empty(max(need, 2 * data.size, 8))
            grown[:length] = data[:length]
            self._buffer_data[m] = data = grown
        data[length:need] = norms
        self._buffer_len[m] = need
        self._participation_count[m] += 1
        self._touched.add(m)
        # Full-buffer mean (not an incremental sum): bit-stable across
        # checkpoint restores — see the class docstring.
        running_average = float(np.mean(data[:need]))
        if running_average > self._window_best[m]:
            self._window_best[m] = running_average
        self._window_participated[m] = True
        if running_average > self._lifetime_best[m]:
            self._lifetime_best[m] = running_average

    def record_failure(self, device: int) -> None:
        """Record a sampled-but-failed step for ``device``."""
        m = self._check_device(device)
        self._participation_count[m] += 1
        self._touched.add(m)

    def initialize_arrival(self, device: int, t: int) -> bool:
        """Seed a newly arrived device with prior-mean UCB state.

        Open-population support (see :mod:`repro.churn`): a device that
        enrolls mid-run would otherwise carry the infinite
        never-estimated bonus, and a burst of arrivals would crowd out
        every learned estimate for several rounds.  Instead, a device
        the tracker has *never* tried is initialized as if it had one
        pseudo-trial at the population's mean exploitation value — it
        competes immediately on the current population's scale while
        its single-trial exploration bonus still favors trying it soon.

        Returning devices (any prior participation or estimate) keep
        their learned state untouched; before the first sync there is
        no population prior and the arrival stays in the ordinary
        never-tried regime.  Returns whether the seeding happened.
        Tracker-level only: the prior is a population statistic the
        scalar :class:`DeviceExperience` twin has no view of.
        """
        m = self._check_device(device)
        if self._participation_count[m] > 0 or self._has_estimate(m):
            return False
        tried = self._has_exploit & (self._participation_count > 0)
        if not tried.any():
            return False
        prior = float(np.mean(self._exploit[tried]))
        self._participation_count[m] = 1
        self._synced_count[m] = 1
        self._exploit[m] = prior
        self._has_exploit[m] = True
        # The seed uses the arrival clock, not the last sync's, so it
        # is pinned verbatim until the next sync folds it normally.
        self._pin_estimate(m, prior + math.sqrt(math.log(t + 1)))
        self._touched.add(m)
        return True

    def _has_estimate(self, device: int) -> bool:
        """Whether ``device`` currently has a (finite or inf) estimate."""
        if self._num_syncs > 0:
            return True
        return bool(
            self._has_explicit is not None and self._has_explicit[device]
        )

    def sync_all(self, t: int) -> None:
        """Edge-to-cloud step: refresh every device's UCB estimate.

        Lazily: only the devices touched since the previous sync have
        their exploitation term folded and their window cleared here —
        O(touched).  Everyone else's refreshed estimate is the pure
        function ``exploit + sqrt(log(t + 1) / count-at-sync)`` of
        state this call leaves untouched, materialized on demand by
        :meth:`estimates`.  (An untouched device's window is already
        clear and, in ``lifetime`` mode, its ``exploit`` already equals
        its lifetime best from the sync that last folded it, so the
        skipped work is exactly the work whose result cannot change.)
        """
        if self._touched:
            touched = np.fromiter(
                sorted(self._touched), dtype=int, count=len(self._touched)
            )
            if self.window == "lifetime":
                exploit = self._lifetime_best[touched]
            else:
                # Window best where the device participated; otherwise
                # carry the previous value (0.0 before the first one).
                exploit = np.where(
                    self._window_participated[touched],
                    self._window_best[touched],
                    self._exploit[touched],
                )
            self._exploit[touched] = exploit
            self._has_exploit[touched] = True
            self._synced_count[touched] = self._participation_count[touched]
            # Clear the window: Algorithm 2 line 4.
            self._buffer_len[touched] = 0
            self._window_best[touched] = 0.0
            self._window_participated[touched] = False
            self._touched.clear()
        self._last_sync_t = int(t)
        self._num_syncs += 1
        # Pins (arrival seeds / restored values) are superseded by the
        # recomputable post-sync estimates.
        self._explicit_estimate = None
        self._has_explicit = None

    def estimates(self, device_indices: Sequence[int]) -> np.ndarray:
        """Current G̃²_m for the requested devices (inf ⇒ never estimated).

        O(len(device_indices)): materializes the lazily synced UCB
        values for the requested rows only, bit-identical to the former
        eager full-population refresh (same scalar ``log``, same
        elementwise ``sqrt``/divide — see the class docstring).
        """
        idx = self._check_indices(device_indices)
        est = np.full(idx.shape, math.inf)
        if self._num_syncs > 0:
            synced = self._synced_count[idx]
            tried = synced > 0
            if tried.any():
                log_t = math.log(self._last_sync_t + 1)
                est[tried] = self._exploit[idx][tried] + np.sqrt(
                    log_t / synced[tried]
                )
        if self._has_explicit is not None:
            pinned = self._has_explicit[idx]
            est[pinned] = self._explicit_estimate[idx][pinned]
        return est

    def audit_components(
        self, device_indices: Sequence[int]
    ) -> Dict[str, List[float]]:
        """Per-device UCB decomposition for the requested devices.

        Returns aligned ``empirical`` / ``bonus`` / ``estimate`` lists —
        the audit-trail view of :meth:`estimates` (see
        :meth:`DeviceExperience.audit_components`).
        """
        idx = self._check_indices(device_indices)
        has_exploit = self._has_exploit[idx] | (self._num_syncs > 0)
        empirical = np.where(has_exploit, self._exploit[idx], 0.0)
        estimate = self.estimates(idx)
        bonus = np.where(
            np.isfinite(estimate), estimate - empirical, math.inf
        )
        return {
            "empirical": empirical.tolist(),
            "bonus": bonus.tolist(),
            "estimate": estimate.tolist(),
        }

    def participation_counts(self) -> np.ndarray:
        """Per-device total participation counts (diagnostics).

        Sized by the explicit device population given at construction —
        well-defined independent of which ids have participated.
        """
        return self._participation_count.copy()

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of every device's experience.

        Schema-identical to the scalar per-device implementation
        (:meth:`DeviceExperience.state_dict`): old checkpoints load and
        new checkpoints round-trip through old readers.
        """
        synced = self._num_syncs > 0
        estimates = self.estimates(np.arange(self.num_devices))
        devices = {}
        for m in range(self.num_devices):
            length = int(self._buffer_len[m])
            devices[str(m)] = {
                "buffer": [float(g) for g in self._buffer_data[m][:length]],
                "window_best": float(self._window_best[m]),
                "window_participated": bool(self._window_participated[m]),
                "lifetime_best": float(self._lifetime_best[m]),
                "participation_count": int(self._participation_count[m]),
                "exploit": (
                    float(self._exploit[m])
                    if synced or self._has_exploit[m]
                    else None
                ),
                "estimate": (
                    float(estimates[m])
                    if synced or self._has_estimate(m)
                    else None
                ),
            }
        return {"window": self.window, "devices": devices}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into an existing tracker."""
        if state.get("window") != self.window:
            raise ValueError(
                f"checkpoint window mode {state.get('window')!r} does not "
                f"match tracker window {self.window!r}"
            )
        devices = state.get("devices", {})
        if set(devices) != {str(m) for m in range(self.num_devices)}:
            raise ValueError(
                "checkpoint device population does not match the tracker"
            )
        # Restored estimates are frozen until the next sync (exactly the
        # eager semantics), so they come back as pins; counts-at-sync
        # are unknowable from the schema, but setting them to the stored
        # counts is exact for every device the next sync does not fold,
        # and folded devices get refreshed from their true counts.
        self._num_syncs = 0
        self._last_sync_t = None
        self._explicit_estimate = None
        self._has_explicit = None
        self._touched = set()
        for key, device_state in devices.items():
            m = int(key)
            buffer = np.asarray(
                [float(g) for g in device_state["buffer"]], dtype=float
            )
            self._buffer_data[m] = buffer
            self._buffer_len[m] = buffer.size
            self._window_best[m] = float(device_state["window_best"])
            self._window_participated[m] = bool(
                device_state["window_participated"]
            )
            self._lifetime_best[m] = float(device_state["lifetime_best"])
            self._participation_count[m] = int(
                device_state["participation_count"]
            )
            self._synced_count[m] = self._participation_count[m]
            exploit = device_state["exploit"]
            self._has_exploit[m] = exploit is not None
            self._exploit[m] = 0.0 if exploit is None else float(exploit)
            estimate = device_state["estimate"]
            if estimate is not None:
                self._pin_estimate(m, float(estimate))
            if (
                self._buffer_len[m]
                or self._window_participated[m]
                or self._window_best[m]
            ):
                self._touched.add(m)

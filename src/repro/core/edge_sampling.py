"""Algorithm 3: per-edge device sampling strategy (Eqs. (16)–(18)).

Each edge independently turns the estimated maximum gradient norms
``G̃²_m`` of its current members into sampling probabilities:

1. **virtual probabilities** — the unclamped Remark-2 optimum,
   ``q̂_m = K_n G̃²_m / Σ_{m'} G̃²_{m'}`` (Eq. (16));
2. **smoothing** — a sigmoid transfer ``S(q̂)`` (Eq. (17)) that squashes
   the spread of the probabilities toward uniform, protecting early
   training from the variance blow-up the paper describes (a device
   sampled with ``q → 0`` gets aggregation weight ``1/q → ∞``);
3. **renormalization** — ``q_m = K_n S(q̂_m) / Σ S(q̂_{m'})`` (Eq. (18)),
   clipped into [0, 1] with budget-preserving water-filling.

Sign convention: the paper prints ``S(q̂) = 1 + α(1/(1+e^{βq̂}) − 1/2)``,
which is *decreasing* in ``q̂`` and would invert Remark 2's "assign
higher probabilities to larger gradient norms".  We therefore use the
increasing form ``1/(1+e^{−βq̂})`` (equivalently, the paper's β is
negative): with ``α, β ≥ 0`` and ``q̂ ≥ 0``, ``S`` rises monotonically
from 1 toward ``1 + α/2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import paper_optimal_probabilities
from repro.utils.probability import capped_proportional_probabilities
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EdgeSamplingConfig:
    """Control coefficients of the transfer function S(·) (Eq. (17)).

    The paper calls α and β "task-specific control coefficients" and
    advises keeping them small early in training so that G̃²_m can be
    estimated through near-uniform sampling; ``warmup_steps`` ramps both
    linearly from 0 to their configured values over that window.
    """

    alpha: float = 1.5
    beta: float = 2.0
    warmup_steps: int = 0
    #: Ablation switch: when False, skip Eq. (17) entirely and allocate
    #: capacity proportionally to the raw G̃² estimates (the unsmoothed
    #: Remark-2 rule with water-filling range repair).
    smoothing_enabled: bool = True

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.beta < 0:
            raise ValueError(f"beta must be >= 0, got {self.beta}")
        if self.warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {self.warmup_steps}")

    def at_step(self, t: int) -> "EdgeSamplingConfig":
        """Effective coefficients at step ``t`` under the warmup ramp."""
        if self.warmup_steps == 0 or t >= self.warmup_steps:
            return self
        ramp = t / self.warmup_steps
        return EdgeSamplingConfig(
            alpha=self.alpha * ramp,
            beta=self.beta * ramp,
            warmup_steps=0,
            smoothing_enabled=self.smoothing_enabled,
        )


def virtual_probabilities(g_sq_estimates: np.ndarray, capacity: float) -> np.ndarray:
    """Eq. (16): ``q̂_m = K_n G̃²_m / Σ G̃²`` (may exceed 1)."""
    return paper_optimal_probabilities(g_sq_estimates, capacity)


def smooth(q_hat: np.ndarray, alpha: float, beta: float) -> np.ndarray:
    """Eq. (17) transfer function (increasing form, see module docstring)."""
    q_hat = np.asarray(q_hat, dtype=float)
    if alpha < 0 or beta < 0:
        raise ValueError(f"alpha and beta must be >= 0, got {alpha}, {beta}")
    return 1.0 + alpha * (1.0 / (1.0 + np.exp(-beta * q_hat)) - 0.5)


def edge_strategy(
    g_sq_estimates: np.ndarray,
    capacity: float,
    config: EdgeSamplingConfig,
    t: int = 0,
) -> np.ndarray:
    """The full Algorithm 3: G̃² estimates → edge sampling strategy Q^t_n.

    Infinite estimates (devices whose UCB exploration bonus is still
    unbounded because they were never sampled) are mapped to twice the
    largest finite estimate, so unexplored devices win the comparison
    against every explored device without breaking the arithmetic; if
    *no* device has been explored the strategy degenerates to uniform.
    """
    g_sq_estimates = np.asarray(g_sq_estimates, dtype=float)
    if len(g_sq_estimates) == 0:
        return np.zeros(0)
    check_positive("capacity", capacity)
    if np.any(g_sq_estimates < 0):
        raise ValueError("G̃² estimates must be non-negative")

    finite = np.isfinite(g_sq_estimates)
    estimates = g_sq_estimates.copy()
    if not finite.any():
        estimates = np.ones_like(estimates)
    elif not finite.all():
        ceiling = max(2.0 * estimates[finite].max(), 1.0)
        estimates[~finite] = ceiling

    effective = config.at_step(t)
    if not effective.smoothing_enabled:
        return capped_proportional_probabilities(estimates, capacity)
    q_hat = virtual_probabilities(estimates, capacity)
    weights = smooth(q_hat, effective.alpha, effective.beta)
    return capped_proportional_probabilities(weights, capacity)

"""Numerical solver for Problem 1 (§III-A).

Remark 2 solves Problem 1 in closed form only after dropping the range
constraint ``q ∈ [0, 1]``.  This module solves the *full* constrained
program numerically —

.. math::
    \\min_q \\; \\sum_m G^2_m / q_m \\quad \\text{s.t.} \\;
    \\sum_m q_m \\le K_n, \\; q_m \\in (0, 1]

— with scipy's SLSQP, and provides the KKT machinery used to verify the
water-filling closed form (:func:`repro.core.convergence.
bound_minimizing_probabilities`) to optimizer precision.  The THEORY
tests cross-check all three solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize

from repro.core.convergence import bound_minimizing_probabilities, sampling_objective
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Problem1Solution:
    """Outcome of the numerical Problem-1 solve."""

    probabilities: np.ndarray
    objective: float
    converged: bool
    iterations: int

    def kkt_residual(self, g_sq: np.ndarray, capacity: float) -> float:
        """Max KKT stationarity violation of this solution.

        At the optimum, interior coordinates (0 < q < 1) share a common
        multiplier λ = G²_m / q²_m; coordinates clipped at 1 may have a
        smaller ratio.  Returns the spread of the interior ratios plus
        any budget violation.
        """
        q = self.probabilities
        interior = (q > 1e-6) & (q < 1 - 1e-6)
        residual = 0.0
        if interior.sum() >= 2:
            ratios = g_sq[interior] / q[interior] ** 2
            residual = float((ratios.max() - ratios.min()) / max(ratios.max(), 1e-12))
        budget_violation = max(0.0, float(q.sum()) - capacity)
        return residual + budget_violation


def solve_problem1(
    g_sq: np.ndarray,
    capacity: float,
    q_floor: float = 1e-4,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 500,
) -> Problem1Solution:
    """Solve the per-edge Problem 1 with SLSQP.

    Parameters
    ----------
    g_sq:
        Squared gradient-norm bounds ``G²_m`` of the edge's members.
    capacity:
        Channel capacity ``K_n`` (Eq. (3)).
    q_floor:
        Lower bound keeping the objective finite (q → 0 diverges).
    """
    g_sq = np.asarray(g_sq, dtype=float)
    if g_sq.ndim != 1 or g_sq.size == 0:
        raise ValueError(f"g_sq must be a non-empty vector, got shape {g_sq.shape}")
    if np.any(g_sq < 0):
        raise ValueError("squared gradient norms must be non-negative")
    check_positive("capacity", capacity)
    check_positive("q_floor", q_floor)
    n = g_sq.size
    budget = min(float(capacity), float(n))

    if x0 is None:
        x0 = np.full(n, budget / n)
    x0 = np.clip(x0, q_floor, 1.0)

    def objective(q: np.ndarray) -> float:
        return float(np.sum(g_sq / np.clip(q, q_floor, None)))

    def gradient(q: np.ndarray) -> np.ndarray:
        return -g_sq / np.clip(q, q_floor, None) ** 2

    result = minimize(
        objective,
        x0,
        jac=gradient,
        method="SLSQP",
        bounds=[(q_floor, 1.0)] * n,
        constraints=[{
            "type": "ineq",
            "fun": lambda q: budget - np.sum(q),
            "jac": lambda q: -np.ones(n),
        }],
        # ftol tighter than ~1e-10 makes SLSQP end on "positive
        # directional derivative" even at the optimum.
        options={"maxiter": max_iterations, "ftol": 1e-10},
    )
    return Problem1Solution(
        probabilities=np.clip(result.x, q_floor, 1.0),
        objective=float(result.fun),
        converged=bool(result.success),
        iterations=int(result.nit),
    )


def verify_closed_form(
    g_sq: np.ndarray, capacity: float, tolerance: float = 1e-3
) -> bool:
    """Check the water-filling closed form against the numerical solve.

    Returns True when the closed-form objective is within ``tolerance``
    (relative) of the SLSQP optimum — the property the THEORY tests pin.
    """
    g_sq = np.asarray(g_sq, dtype=float)
    positive = g_sq > 0
    if not positive.any():
        return True
    closed = bound_minimizing_probabilities(g_sq, capacity)
    numerical = solve_problem1(g_sq, capacity)
    # Compare on the strictly-positive-norm coordinates: zero-norm
    # devices contribute nothing to the objective and their probability
    # is arbitrary.
    closed_obj = sampling_objective(
        g_sq[positive], np.clip(closed[positive], 1e-9, 1.0)
    )
    gap = abs(closed_obj - numerical.objective)
    return gap <= tolerance * max(abs(numerical.objective), 1e-12)

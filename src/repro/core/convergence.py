"""Convergence theory of §III-A: Theorem 1, Problem 1 and Remark 2.

These functions make the paper's analysis executable: the Theorem-1
upper bound on the time-averaged squared gradient norm, the
sampling-dependent term each edge minimizes, the closed-form optimum
the paper states in Eq. (13), and the exact constrained minimizer of
the bound (used to sanity-check Eq. (13) in the THEORY benchmark).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive


def sampling_objective(g_sq: np.ndarray, q: np.ndarray) -> float:
    """The per-step sampling-dependent term ``Σ_m G²_m / q_m``.

    Remark 1: device mobility enters the Theorem-1 bound only through
    this sum (evaluated over the devices currently in each edge), so
    each edge minimizes it independently.
    """
    g_sq = np.asarray(g_sq, dtype=float)
    q = np.asarray(q, dtype=float)
    if g_sq.shape != q.shape:
        raise ValueError(f"shape mismatch: {g_sq.shape} vs {q.shape}")
    if np.any(g_sq < 0):
        raise ValueError("squared gradient norms must be non-negative")
    if np.any(q <= 0) or np.any(q > 1):
        raise ValueError("probabilities must be in (0, 1]")
    return float(np.sum(g_sq / q))


def convergence_bound(
    g_sq_per_step: Sequence[np.ndarray],
    q_per_step: Sequence[np.ndarray],
    gamma: float,
    smoothness: float,
    local_epochs: int,
    sync_interval: int,
    num_devices: int,
    f0_minus_fstar: float,
) -> float:
    """Evaluate the Theorem-1 upper bound (Eq. (9)).

    .. math::
        \\frac{1}{T}\\sum_t E\\|\\nabla f(w^t)\\|^2 \\le
        \\frac{2(f^0 - f^*)}{\\gamma I T} +
        \\sum_t \\frac{\\gamma L I(2 + \\gamma L I) +
        4(1+|M|)T_g^2 L^2 \\gamma^2}{2|M|T}
        \\sum_n \\sum_{m \\in M^t_n} \\frac{G^2_m}{q^t_{m,n}}

    Parameters
    ----------
    g_sq_per_step, q_per_step:
        Per step ``t``, the concatenated ``G²_m`` and ``q^t_{m,n}`` over
        all edges' member devices (any consistent ordering).
    gamma, smoothness, local_epochs, sync_interval:
        γ, L, I and T_g of the analysis.
    num_devices:
        |M|.
    f0_minus_fstar:
        ``f(w^0) − f*`` (≥ 0).
    """
    if len(g_sq_per_step) != len(q_per_step):
        raise ValueError("g_sq_per_step and q_per_step must have equal length")
    horizon = len(g_sq_per_step)
    check_positive("T (number of steps)", horizon)
    check_positive("gamma", gamma)
    check_positive("smoothness", smoothness)
    check_positive("local_epochs", local_epochs)
    check_positive("sync_interval", sync_interval)
    check_positive("num_devices", num_devices)
    if f0_minus_fstar < 0:
        raise ValueError(f"f0_minus_fstar must be >= 0, got {f0_minus_fstar}")

    gli = gamma * smoothness * local_epochs
    coefficient = (
        gli * (2 + gli)
        + 4 * (1 + num_devices) * sync_interval**2 * smoothness**2 * gamma**2
    ) / (2 * num_devices * horizon)

    optimisation_term = 2 * f0_minus_fstar / (gamma * local_epochs * horizon)
    sampling_term = coefficient * sum(
        sampling_objective(g_sq, q)
        for g_sq, q in zip(g_sq_per_step, q_per_step)
    )
    return float(optimisation_term + sampling_term)


def paper_optimal_probabilities(g_sq: np.ndarray, capacity: float) -> np.ndarray:
    """Eq. (13): ``q*_m = K_n G²_m / Σ_{m'} G²_{m'}`` (range unclamped).

    This is the closed form the paper states in Remark 2 and the rule
    MACH's edge sampling builds on (Eq. (16)).  Note it allocates the
    budget proportionally to *squared* norms; the exact minimizer of
    ``Σ G²/q`` under ``Σ q = K`` is proportional to the *unsquared*
    norms (see :func:`bound_minimizing_probabilities`) — the THEORY
    benchmark quantifies the gap, which is small unless norms are very
    spread out.
    """
    g_sq = np.asarray(g_sq, dtype=float)
    check_positive("capacity", capacity)
    if np.any(g_sq < 0):
        raise ValueError("squared gradient norms must be non-negative")
    total = g_sq.sum()
    if total == 0:
        return np.full(g_sq.shape, capacity / max(len(g_sq), 1))
    return capacity * g_sq / total


def bound_minimizing_probabilities(
    g_sq: np.ndarray, capacity: float
) -> np.ndarray:
    """Exact minimizer of ``Σ G²_m / q_m`` s.t. ``Σ q ≤ K``, ``q ∈ (0, 1]``.

    By Lagrangian stationarity the unclipped solution is ``q ∝ G_m``
    (Cauchy–Schwarz); entries that would exceed 1 are clipped and the
    residual budget re-allocated over the rest (water-filling).
    """
    from repro.utils.probability import capped_proportional_probabilities

    g_sq = np.asarray(g_sq, dtype=float)
    check_positive("capacity", capacity)
    if np.any(g_sq < 0):
        raise ValueError("squared gradient norms must be non-negative")
    return capped_proportional_probabilities(np.sqrt(g_sq), capacity)


def virtual_global_model(
    local_models: np.ndarray,
    edge_of_device: np.ndarray,
    participation: np.ndarray,
    probabilities: np.ndarray,
    num_edges: int,
) -> np.ndarray:
    """The virtual aggregate ``\\bar w^{t+1}`` of Eq. (7).

    ``local_models`` is (num_devices, dim); ``edge_of_device`` maps each
    device to its current edge; ``participation`` is the realized
    indicator ``1^t_{m,n}`` and ``probabilities`` the sampling vector
    ``q^t_{m,n}``.  Lemma 1: its expectation over the participation
    indicators equals the plain average of the local models — verified
    by a property-based test.
    """
    local_models = np.asarray(local_models, dtype=float)
    edge_of_device = np.asarray(edge_of_device, dtype=int)
    participation = np.asarray(participation, dtype=float)
    probabilities = np.asarray(probabilities, dtype=float)
    num_devices = local_models.shape[0]
    for name, arr in (
        ("edge_of_device", edge_of_device),
        ("participation", participation),
        ("probabilities", probabilities),
    ):
        if arr.shape != (num_devices,):
            raise ValueError(f"{name} must have shape ({num_devices},)")
    if np.any((participation > 0) & (probabilities <= 0)):
        raise ValueError("a device participated with probability 0")

    dim = local_models.shape[1]
    result = np.zeros(dim)
    for n in range(num_edges):
        members = np.flatnonzero(edge_of_device == n)
        if members.size == 0:
            continue
        inner = np.zeros(dim)
        for m in members:
            if participation[m]:
                inner += local_models[m] / probabilities[m]
        # Eq. (7) as printed weights each edge by |M^t_n| / |N|, under
        # which Lemma 1's stated expectation (1/|M|) Σ_m w_m only holds
        # when |N| = |M|; Eq. (6) and the Lemma-1 statement require the
        # |M^t_n| / |M| weighting used here (the |N| is a typo).
        result += inner * (members.size / num_devices) / members.size
    return result

"""The MACH sampler: Algorithm 1's sampling side, pluggable into the trainer.

MACH composes the two components of §III-B:

- **experience updating** (:class:`repro.core.experience.ExperienceTracker`):
  each sampled device appends its local squared gradient norms to its
  experience buffer (Eq. (14)); at every edge-to-cloud communication the
  UCB scores G̃²_m are refreshed (Eq. (15)) and buffers cleared;
- **edge sampling** (:func:`repro.core.edge_sampling.edge_strategy`):
  each edge independently converts the G̃²_m of its current members into
  the strategy Q^t_n (Eqs. (16)–(18)).

The sampler needs no prior knowledge of device data statistics — only
the gradient norms of devices it actually sampled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.edge_sampling import EdgeSamplingConfig, edge_strategy
from repro.core.experience import ExperienceTracker
from repro.sampling.base import DeviceProfile, Sampler


@dataclass(frozen=True)
class MACHConfig:
    """Hyper-parameters of MACH.

    ``edge_sampling`` carries the α/β transfer-function coefficients of
    Eq. (17) and the warmup ramp; ``sync_interval`` must match the HFL
    trainer's T_g so that UCB refreshes happen on the Algorithm-2 clock
    (``t mod T_g == 0``).
    """

    edge_sampling: EdgeSamplingConfig = field(default_factory=EdgeSamplingConfig)
    sync_interval: int = 5
    #: Exploitation-window mode of the UCB estimator ("recent" adapts to
    #: the current inter-sync window; "lifetime" is the literal Eq. (15)
    #: all-history max — see repro.core.experience).
    ucb_window: str = "recent"
    #: Candidate-selection mode: "full" runs the Eq. (16)–(18) strategy
    #: over every current member (exact paper behavior); "topk"
    #: prescreens the members with an ``argpartition`` over their UCB
    #: scores and runs the strategy only on the top candidates, so the
    #: per-edge strategy cost tracks channel capacity instead of edge
    #: population.  Never-estimated devices carry infinite scores and
    #: are prescreened first, preserving UCB's try-everyone pressure.
    selection: str = "full"
    #: Candidate-pool size as a multiple of the edge capacity K_n
    #: (only read in "topk" mode).
    candidate_factor: float = 4.0
    #: Pool floor so tiny capacities still explore a sane set.
    min_candidates: int = 32

    def __post_init__(self) -> None:
        if self.sync_interval <= 0:
            raise ValueError(
                f"sync_interval must be positive, got {self.sync_interval}"
            )
        if self.selection not in ("full", "topk"):
            raise ValueError(
                f"selection must be 'full' or 'topk', got {self.selection!r}"
            )
        if self.candidate_factor <= 0:
            raise ValueError(
                f"candidate_factor must be positive, got {self.candidate_factor}"
            )
        if self.min_candidates <= 0:
            raise ValueError(
                f"min_candidates must be positive, got {self.min_candidates}"
            )


class MACHSampler(Sampler):
    """Mobility-Aware deviCe sampling in Hierarchical federated learning."""

    name = "mach"

    def __init__(self, config: Optional[MACHConfig] = None) -> None:
        self.config = config if config is not None else MACHConfig()
        self._tracker: Optional[ExperienceTracker] = None

    @property
    def tracker(self) -> ExperienceTracker:
        if self._tracker is None:
            raise RuntimeError("setup() must be called before use")
        return self._tracker

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        if not profiles:
            raise ValueError("profiles is empty")
        num_devices = max(p.device_id for p in profiles) + 1
        self._tracker = ExperienceTracker(num_devices, window=self.config.ucb_window)

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        """Algorithm 1 line 3: Q^t_n ← EdgeSampling({G̃²_m | m ∈ M^t_n}).

        ``device_indices`` is consumed as the ndarray the trainer builds
        — no Python-list round trip — and indexes the SoA tracker
        directly.  In ``topk`` mode the strategy itself only sees the
        prescreened candidate pool; non-candidates get probability 0.
        """
        if len(device_indices) == 0:
            return np.zeros(0)
        estimates = self.tracker.estimates(device_indices)
        pool = self._candidate_pool_size(capacity)
        if self.config.selection == "topk" and pool < estimates.size:
            # O(members) partition instead of the O(members log members)
            # strategy-side sort; infinite (never-estimated) scores are
            # prescreened first.  Partition order is deterministic for a
            # fixed input, so runs and resumes replay exactly.
            candidates = np.argpartition(-estimates, pool - 1)[:pool]
            candidates.sort()
            probabilities = np.zeros(estimates.size)
            probabilities[candidates] = edge_strategy(
                estimates[candidates],
                capacity,
                self.config.edge_sampling,
                t=t,
            )
            return probabilities
        return edge_strategy(estimates, capacity, self.config.edge_sampling, t=t)

    def _candidate_pool_size(self, capacity: float) -> int:
        """Top-k pool size implied by the edge capacity."""
        return max(
            self.config.min_candidates,
            int(math.ceil(self.config.candidate_factor * capacity)),
        )

    def observe_participation(
        self,
        t: int,
        device: int,
        grad_sq_norms: Sequence[float],
        mean_loss: float,
    ) -> None:
        """Algorithm 1 line 10 / Algorithm 2 line 1: buffer the experience."""
        self.tracker.record(device, grad_sq_norms)

    def observe_failure(self, t: int, device: int) -> None:
        """A sampled device failed to upload: count the attempt so the
        UCB exploration bonus shrinks without any exploitation credit —
        the estimator learns device reliability (see
        :meth:`repro.core.experience.DeviceExperience.record_failure`)."""
        self.tracker.record_failure(device)

    def on_global_sync(self, t: int) -> None:
        """Algorithm 2 lines 2–4: refresh every G̃²_m, clear buffers."""
        self.tracker.sync_all(t)

    def on_device_joined(self, t: int, device: int) -> None:
        """Warm-start an arrival with prior-mean UCB state.

        Open-population churn support: a never-tried arrival is seeded
        as one pseudo-trial at the population's mean exploitation value
        (see :meth:`repro.core.experience.ExperienceTracker
        .initialize_arrival`); a returning device keeps its learned
        state and departures (the trainer excludes them from member
        sets) need no hook at all.
        """
        self.tracker.initialize_arrival(device, t)

    def audit_components(self, device_indices) -> dict:
        """Eq. (15) decomposition per candidate, for the audit trail."""
        return self.tracker.audit_components(device_indices)

    def state_dict(self) -> dict:
        return {"tracker": self.tracker.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.tracker.load_state_dict(state["tracker"])

"""MACH: the paper's primary contribution.

- :mod:`repro.core.convergence` — Theorem 1 convergence bound, the
  Problem-1 optimization and the Remark-2 closed-form optimum (Eq. (13));
- :mod:`repro.core.experience` — Algorithm 2, online UCB estimation of
  per-device maximum gradient norms (Eqs. (14)–(15));
- :mod:`repro.core.edge_sampling` — Algorithm 3, the per-edge sampling
  strategy (Eqs. (16)–(18));
- :mod:`repro.core.mach` — the complete MACH sampler (Algorithm 1's
  sampling side), pluggable into the HFL trainer.
"""

from repro.core.convergence import (
    bound_minimizing_probabilities,
    convergence_bound,
    paper_optimal_probabilities,
    sampling_objective,
    virtual_global_model,
)
from repro.core.edge_sampling import (
    EdgeSamplingConfig,
    edge_strategy,
    smooth,
    virtual_probabilities,
)
from repro.core.budget import BudgetedSampler, TimeAveragedBudget
from repro.core.problem import Problem1Solution, solve_problem1, verify_closed_form
from repro.core.experience import DeviceExperience, ExperienceTracker
from repro.core.mach import MACHConfig, MACHSampler

__all__ = [
    "convergence_bound",
    "sampling_objective",
    "paper_optimal_probabilities",
    "bound_minimizing_probabilities",
    "virtual_global_model",
    "EdgeSamplingConfig",
    "virtual_probabilities",
    "smooth",
    "edge_strategy",
    "BudgetedSampler",
    "Problem1Solution",
    "solve_problem1",
    "verify_closed_form",
    "TimeAveragedBudget",
    "DeviceExperience",
    "ExperienceTracker",
    "MACHConfig",
    "MACHSampler",
]

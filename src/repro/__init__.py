"""repro — reproduction of MACH (ICDCS 2024).

Mobility-aware Device Sampling for Statistical Heterogeneity in
Hierarchical Federated Learning, Zhang et al., ICDCS 2024.

Quickstart::

    from repro import (
        HFLConfig, HFLTrainer, MACHSampler, UniformSampler,
        make_federated_task, MarkovMobilityModel, build_model,
    )

    devices, test = make_federated_task("mnist", num_devices=20,
                                        samples_per_device=50, image_size=12)
    trace = MarkovMobilityModel.stay_or_jump(4, 0.8).sample_trace(200, 20, rng=0)
    config = HFLConfig(learning_rate=0.05, sync_interval=5)
    trainer = HFLTrainer(
        model_factory=lambda rng: build_model("mnist", (1, 12, 12), rng=rng),
        device_datasets=devices, trace=trace,
        sampler=MACHSampler(), config=config, test_dataset=test,
    )
    result = trainer.run(num_steps=200, target_accuracy=0.75)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    BudgetedSampler,
    EdgeSamplingConfig,
    MACHConfig,
    MACHSampler,
    bound_minimizing_probabilities,
    convergence_bound,
    paper_optimal_probabilities,
    sampling_objective,
)
from repro.data import (
    Dataset,
    make_blobs_dataset,
    make_federated_task,
    make_synthetic_image_dataset,
)
from repro.hfl import HFLConfig, HFLTrainer, TelemetryRecorder, TrainingResult
from repro.hotpath import hotpath_disabled, hotpath_enabled, set_hotpath_enabled
from repro.mobility import (
    MarkovMobilityModel,
    OrderKMarkovPredictor,
    RandomWaypointModel,
    MobilityTrace,
    TelecomTraceGenerator,
    static_trace,
)
from repro.nn import build_cifar_cnn, build_mlp, build_mnist_cnn, build_model
from repro.runtime import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.sampling import (
    ClassBalanceSampler,
    MACHOracleSampler,
    OortSampler,
    PowerOfChoiceSampler,
    Sampler,
    StatisticalSampler,
    UniformSampler,
)

__version__ = "1.0.0"

__all__ = [
    "EdgeSamplingConfig",
    "MACHConfig",
    "MACHSampler",
    "convergence_bound",
    "sampling_objective",
    "paper_optimal_probabilities",
    "bound_minimizing_probabilities",
    "Dataset",
    "make_federated_task",
    "make_synthetic_image_dataset",
    "make_blobs_dataset",
    "HFLConfig",
    "HFLTrainer",
    "TrainingResult",
    "MobilityTrace",
    "MarkovMobilityModel",
    "TelecomTraceGenerator",
    "static_trace",
    "build_model",
    "build_mnist_cnn",
    "build_cifar_cnn",
    "build_mlp",
    "Executor",
    "make_executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "Sampler",
    "UniformSampler",
    "ClassBalanceSampler",
    "StatisticalSampler",
    "MACHOracleSampler",
    "OortSampler",
    "PowerOfChoiceSampler",
    "BudgetedSampler",
    "TelemetryRecorder",
    "hotpath_enabled",
    "set_hotpath_enabled",
    "hotpath_disabled",
    "OrderKMarkovPredictor",
    "RandomWaypointModel",
    "__version__",
]

"""Global switch between the optimized hot paths and their reference twins.

The engine keeps two implementations of every hot-path optimization
introduced by the perf pass (DESIGN.md §9): the *optimized* path
(membership-index caching, fused evaluation, reusable nn workspaces,
index-subtract loss backward, …) and the original *reference* path it
replaced.  Both produce bit-identical results for a fixed seed; the
reference path exists so that claim stays checkable forever —
``benchmarks/bench_hotpath.py --smoke`` runs the same workload down
both paths and asserts the histories match exactly.

The switch is a process-global flag, not per-object state, because the
optimizations span layers (mobility, nn, hfl, runtime) and threading a
flag through every constructor would couple them all to this concern.
Worker threads observe flips immediately; worker *processes* inherit
the flag at pool start-up (fork) — flip it before building a trainer,
not mid-run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def hotpath_enabled() -> bool:
    """Whether the optimized hot paths are active (the default)."""
    return _ENABLED


def set_hotpath_enabled(enabled: bool) -> None:
    """Flip between the optimized and reference implementations."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def hotpath_disabled() -> Iterator[None]:
    """Run a block on the pre-optimization reference path.

    Used by the equivalence tests and ``bench_hotpath.py`` to produce
    the baseline the optimized path must match bit for bit.
    """
    previous = _ENABLED
    set_hotpath_enabled(False)
    try:
        yield
    finally:
        set_hotpath_enabled(previous)

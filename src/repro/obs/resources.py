"""Resource accounting: memory, payload bytes and wait time as metrics.

Mobility-HFL systems are communication-bound: the quantities that decide
whether a deployment is feasible are the bytes shipped per
device↔edge round and per sync exchange, the host memory the engine
holds, and the wall-clock burned waiting on stragglers.  This module
turns those one-off benchmark numbers into continuously exported
metrics.

:class:`ResourceAccountant` registers the following families on an
existing :class:`~repro.obs.metrics.MetricsRegistry`, so they flow
through the same JSON / Prometheus exporters as everything else:

- ``repro_payload_bytes_total{exchange,direction,topology,aggregation}``
  — model payload bytes, where ``exchange`` is ``device_edge`` (device
  downloads the edge model, uploads its update), ``edge_sync`` (edge
  uploads and sync broadcasts — cloud or peer exchange depending on
  topology) or ``stale_admit`` (late straggler deltas);
- ``repro_payload_exchanges_total{...}`` — count of individual model
  transfers behind those bytes;
- ``repro_rss_current_mb`` / ``repro_rss_peak_mb`` — resident set size
  gauges sampled per step (Linux ``/proc/self/statm`` and
  ``getrusage``; gauges simply stay unset on platforms without them);
- ``repro_wait_seconds_total{kind}`` — accumulated backoff
  (``kind="backoff"``) and stale-admission (``kind="stale_admit"``)
  wall-clock.

The accountant is a pure observer — counters and gauges only, no RNG,
no model state — so attaching it preserves bit-identity.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ResourceAccountant",
    "current_rss_mb",
    "peak_rss_mb",
]


def current_rss_mb() -> Optional[float]:
    """Current resident set size in MiB, or ``None`` if unavailable."""
    try:
        import os

        with open("/proc/self/statm") as fh:
            fields = fh.read().split()
        pages = int(fields[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        return None


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size in MiB, or ``None`` if unavailable."""
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


class ResourceAccountant:
    """Per-round resource accounting registered on a metrics registry."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        topology: str = "hierarchical",
        aggregation: str = "ipw",
    ) -> None:
        self.metrics = metrics
        self.topology = str(topology)
        self.aggregation = str(aggregation)
        self._payload_bytes = metrics.counter(
            "repro_payload_bytes_total",
            "Model payload bytes shipped per exchange",
        )
        self._payload_exchanges = metrics.counter(
            "repro_payload_exchanges_total",
            "Individual model transfers per exchange",
        )
        self._rss_current = metrics.gauge(
            "repro_rss_current_mb", "Current resident set size (MiB)"
        )
        self._rss_peak = metrics.gauge(
            "repro_rss_peak_mb", "Peak resident set size (MiB)"
        )
        self._wait_seconds = metrics.counter(
            "repro_wait_seconds_total",
            "Wall-clock accumulated in backoff/stale-admission waits",
        )
        # Python-side mirrors for summary() so exporters stay optional.
        self._bytes_by_exchange: Dict[str, float] = {}
        self._waits: Dict[str, float] = {}

    # -- payload accounting --------------------------------------------------

    def _ship(self, exchange: str, direction: str, transfers: int,
              nbytes: float) -> None:
        if transfers <= 0 or nbytes <= 0:
            return
        total = float(transfers) * float(nbytes)
        labels = {
            "exchange": exchange,
            "direction": direction,
            "topology": self.topology,
            "aggregation": self.aggregation,
        }
        self._payload_bytes.inc(total, **labels)
        self._payload_exchanges.inc(float(transfers), **labels)
        key = f"{exchange}/{direction}"
        self._bytes_by_exchange[key] = (
            self._bytes_by_exchange.get(key, 0.0) + total
        )

    def record_device_round(self, downloads: int, uploads: int,
                            model_bytes: int) -> None:
        """One edge round: every sampled device downloads the edge
        model; ``uploads`` of them shipped a reply this round (a parked
        straggler's payload travels later, at admission)."""
        self._ship("device_edge", "down", downloads, model_bytes)
        self._ship("device_edge", "up", uploads, model_bytes)

    def record_sync(self, uploads: int, broadcasts: int,
                    model_bytes: int) -> None:
        """One global sync: ``uploads`` edge models shipped up (or to
        peers, under gossip), ``broadcasts`` models shipped back down."""
        self._ship("edge_sync", "up", uploads, model_bytes)
        self._ship("edge_sync", "down", broadcasts, model_bytes)

    def record_stale_admit(self, admits: int, model_bytes: int) -> None:
        """Late straggler uploads admitted after the staleness window."""
        self._ship("stale_admit", "up", admits, model_bytes)

    # -- wait accounting -----------------------------------------------------

    def record_wait(self, kind: str, seconds: float) -> None:
        if seconds <= 0:
            return
        self._wait_seconds.inc(float(seconds), kind=kind)
        self._waits[kind] = self._waits.get(kind, 0.0) + float(seconds)

    # -- memory sampling -----------------------------------------------------

    def sample_memory(self) -> Dict[str, Optional[float]]:
        """Sample current/peak RSS into the gauges; returns the values."""
        current = current_rss_mb()
        peak = peak_rss_mb()
        if current is not None:
            self._rss_current.set(current)
        if peak is not None:
            self._rss_peak.set(peak)
        return {"current_mb": current, "peak_mb": peak}

    # -- summary -------------------------------------------------------------

    def summary(self) -> dict:
        total_bytes = sum(self._bytes_by_exchange.values())
        return {
            "topology": self.topology,
            "aggregation": self.aggregation,
            "payload_bytes_total": total_bytes,
            "payload_mb_total": round(total_bytes / (1024.0 * 1024.0), 3),
            "payload_bytes_by_exchange": dict(
                sorted(self._bytes_by_exchange.items())
            ),
            "wait_seconds": dict(sorted(self._waits.items())),
            "rss_current_mb": self._rss_current.value(),
            "rss_peak_mb": self._rss_peak.value(),
        }

"""repro.obs — first-class observability for the HFL engine.

Four sinks, composable through one :class:`Observability` handle:

- **event log** (:mod:`repro.obs.events`): append-only JSONL with a run
  manifest header and typed round / fault / sync / checkpoint / eval
  events, reconstructible into a
  :class:`~repro.hfl.telemetry.TelemetryRecorder`;
- **span tracer** (:mod:`repro.obs.tracing`): monotonic-clock
  cloud-step → edge-round → device-update hierarchy with per-worker
  attribution, zero-cost no-op when disabled;
- **metrics registry** (:mod:`repro.obs.metrics`): counters, gauges and
  fixed-bucket histograms, exportable as JSON and Prometheus text;
- **MACH audit trail** (:mod:`repro.obs.audit`): per-(step, edge)
  candidate-level UCB terms, probabilities and indicators —
  seed-replayable offline.

Three continuous layers build on the sinks (PR 9):

- **profiler** (:mod:`repro.obs.profiler`): opt-in hierarchical
  wall/CPU timing (phase → subsystem → hot-path site) with
  per-(step, edge) attribution, tracemalloc sampling, hotspot-table and
  flamegraph export;
- **resources** (:mod:`repro.obs.resources`): RSS, model-payload bytes
  per exchange and wait wall-clock, registered as ordinary metrics;
- **health** (:mod:`repro.obs.health`): declarative rolling-window SLO
  rules over the metrics registry evaluated into ok/degraded/failing
  :class:`~repro.obs.health.HealthReport` verdicts.

Determinism contract: every sink observes, none participates.  No obs
code path reads or advances an engine RNG stream, mutates model or
sampler state, or contributes to any ``state_dict`` — so an obs-enabled
run is bit-identical to an obs-disabled one on every executor backend,
and kill/resume replay is unaffected.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.audit import MACHAuditTrail, SamplingDecision
from repro.obs.bridge import ObservedTelemetryRecorder
from repro.obs.events import (
    EventLog,
    build_manifest,
    read_events,
    replay_telemetry,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.health import HealthMonitor, HealthReport, HealthRule, default_rules
from repro.obs.profiler import Profiler
from repro.obs.resources import ResourceAccountant
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "Observability",
    "EventLog",
    "build_manifest",
    "read_events",
    "replay_telemetry",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MACHAuditTrail",
    "SamplingDecision",
    "ObservedTelemetryRecorder",
    "Profiler",
    "ResourceAccountant",
    "HealthMonitor",
    "HealthReport",
    "HealthRule",
    "default_rules",
]


class Observability:
    """The run's observability sinks, bundled for the trainer.

    Any subset may be active; absent sinks cost one ``is None`` check at
    each instrumentation point.  The tracer is never ``None`` — when
    tracing is off it is the shared :data:`NULL_TRACER` whose spans are
    no-ops.

    Construction shortcuts::

        obs = Observability.enabled()                  # all in-memory sinks
        obs = Observability(events=EventLog("run.jsonl"),
                            tracer=SpanTracer())       # pick and choose
    """

    def __init__(
        self,
        events: Optional[EventLog] = None,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        audit: Optional[MACHAuditTrail] = None,
        profiler: Optional[Profiler] = None,
        resources: Optional[ResourceAccountant] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.events = events
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.audit = audit
        self.profiler = profiler
        self.resources = resources
        self.health = health
        if resources is not None and resources.metrics is not metrics:
            raise ValueError(
                "resources accountant must share the bundle's metrics "
                "registry so its families reach the exporters"
            )
        if health is not None and health.metrics is not metrics:
            raise ValueError(
                "health monitor must share the bundle's metrics registry"
            )

    @classmethod
    def enabled(
        cls,
        events: Optional[EventLog] = None,
        profiler: Optional[Profiler] = None,
        health_rules: Optional[list] = None,
    ) -> "Observability":
        """Every sink on: tracer + metrics + audit + resources + health
        (+ optional event log).

        The audit trail mirrors into the event log when one is given, so
        the on-disk ``sampling`` events always match the in-memory trail.
        The profiler stays opt-in even here — continuous profiling is a
        deliberate choice, not a side effect of turning on obs.
        """
        metrics = MetricsRegistry()
        return cls(
            events=events,
            tracer=SpanTracer(),
            metrics=metrics,
            audit=MACHAuditTrail(event_log=events),
            profiler=profiler,
            resources=ResourceAccountant(metrics),
            health=HealthMonitor(metrics, rules=health_rules),
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """An explicit all-off handle (equivalent to passing no obs)."""
        return cls()

    @property
    def active(self) -> bool:
        """Whether any sink would record anything."""
        return (
            self.events is not None
            or self.tracer.enabled
            or self.metrics is not None
            or self.audit is not None
            or self.profiler is not None
            or self.resources is not None
            or self.health is not None
        )

    def telemetry_recorder(self) -> ObservedTelemetryRecorder:
        """A telemetry recorder whose hooks mirror into these sinks."""
        return ObservedTelemetryRecorder(self)

    def close(self) -> None:
        """Flush and close the owned file-backed sinks (idempotent).

        Also uninstalls the profiler's process-global hook so no
        instrumentation outlives the bundle.
        """
        if self.profiler is not None:
            self.profiler.deactivate()
        if self.events is not None:
            self.events.close()

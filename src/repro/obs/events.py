"""Structured event log: an append-only JSONL record of one HFL run.

The log opens with a **run manifest** (config, seed, fault profile,
code version, host) and then carries one JSON object per line for every
typed engine event:

==================  =====================================================
``manifest``        run configuration header (always the first line)
``run_start``       the trainer entered :meth:`HFLTrainer.run`
``round``           one (step, edge) training round finished aggregating
``fault``           a round lost ≥ 1 sampled upload (device → fault kind)
``sync_attempt``    an edge→cloud attempt sequence hit ≥ 1 failure
``sampling``        MACH decision audit for one (step, edge) — see
                    :mod:`repro.obs.audit`
``device_joined``   a churn arrival enrolled (one event per device)
``device_left``     a churn departure de-enrolled (one event per device)
``late_admit``      a parked straggler upload joined a later aggregate
``late_drop``       a parked upload was discarded (device de-enrolled)
``checkpoint``      a resumable checkpoint was written
``eval``            the global model was evaluated
``run_end``         the run finished (steps run, final metrics)
==================  =====================================================

``round`` events carry enough detail (including the participant ids) to
reconstruct the :class:`~repro.hfl.telemetry.TelemetryRecorder` view of
the run offline — :func:`replay_telemetry` does exactly that, and the
test suite asserts the reconstruction equals the in-memory recorder.

The sink is write-only with respect to the engine: emitting an event
never touches an RNG, model state or anything captured by a
``state_dict``, so enabling the log cannot change a run's results.
"""

from __future__ import annotations

import io
import json
import platform
import subprocess
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "EventLog",
    "build_manifest",
    "read_events",
    "replay_telemetry",
]


def _git_revision() -> Optional[str]:
    """Best-effort git commit id of the working tree (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def build_manifest(
    seed: int,
    sampler: str,
    num_steps: int,
    config: Optional[Dict[str, Any]] = None,
    fault_profile: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The run-manifest payload written as the log's first line.

    ``config`` is a JSON-compatible dump of the scenario/HFL config,
    ``fault_profile`` the active profile's description (see
    :meth:`repro.faults.FaultModel.describe`), ``extra`` free-form
    caller fields (CLI argv, preset name, ...).
    """
    import numpy as np

    from repro import __version__

    manifest: Dict[str, Any] = {
        "seed": int(seed),
        "sampler": sampler,
        "num_steps": int(num_steps),
        "repro_version": __version__,
        "git_revision": _git_revision(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    if config is not None:
        manifest["config"] = config
    manifest["fault_profile"] = fault_profile
    if extra:
        manifest.update(extra)
    return manifest


class EventLog:
    """Append-only JSONL sink for typed run events.

    ``target`` is a path (opened for writing, parents created) or any
    text stream (kept open, caller owns it).  Events are serialized with
    compact separators and sorted keys, so logs are diffable across
    runs; the stream is flushed on :meth:`close` and every
    ``flush_every`` events (default: every event, so a killed run's log
    is complete up to the crash).
    """

    def __init__(
        self,
        target: Union[str, Path, io.TextIOBase],
        flush_every: int = 1,
    ) -> None:
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("w")
            self._owns_stream = True
            self.path: Optional[Path] = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self._flush_every = flush_every
        self._since_flush = 0
        self._closed = False
        self.num_events = 0

    def emit(self, type: str, **fields: Any) -> None:
        """Append one event line ``{"type": type, **fields}``."""
        if self._closed:
            raise RuntimeError("event log is closed")
        record = {"type": type}
        record.update(fields)
        self._stream.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"),
                       allow_nan=True)
            + "\n"
        )
        self.num_events += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._stream.flush()
            self._since_flush = 0

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Emit the run-manifest header (conventionally the first event)."""
        self.emit("manifest", **manifest)

    def flush(self) -> None:
        if not self._closed:
            self._stream.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._closed:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self._closed = True

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(
    source: Union[str, Path, Iterable[str]],
) -> List[Dict[str, Any]]:
    """Parse a JSONL event log back into a list of event dicts.

    ``source`` is a log path or any iterable of JSON lines.  Blank
    lines are skipped; malformed lines raise (a truncated final line
    from a killed run is the one tolerated corruption).
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    events: List[Dict[str, Any]] = []
    lines = [line for line in lines if line.strip()]
    for i, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final write from a killed run
            raise
    return events


def replay_telemetry(events: Iterable[Dict[str, Any]]):
    """Reconstruct a :class:`TelemetryRecorder` from a parsed event log.

    ``round`` events log the recorder's per-round fields verbatim (plus
    the participant ids), so the reconstruction restores them through
    :meth:`~repro.hfl.telemetry.TelemetryRecorder.load_state_dict` and
    the returned recorder's records, participation counts, fault
    counters and derived summaries are *exactly* the in-memory recorder
    of the run that wrote the log.  Phase wall-times are host
    observability, not logged per event, and stay empty — matching
    their exclusion from the recorder's own ``state_dict``.
    """
    from repro.hfl.telemetry import TelemetryRecorder

    records = []
    participation: Dict[int, int] = {}
    fault_counts: Dict[str, int] = {}
    degraded = []
    syncs = []
    # Churn is logged one event per device; regroup by step (events of
    # one step are contiguous and ordered departures-then-arrivals, so
    # a plain ordered dict rebuilds the per-step ChurnRecord exactly).
    churn_by_step: Dict[int, Dict[str, Any]] = {}
    late_admits = []
    late_drops = []
    for event in events:
        kind = event.get("type")
        if kind == "round":
            participants = [int(m) for m in event["participants"]]
            records.append(
                {
                    "t": int(event["t"]),
                    "edge": int(event["edge"]),
                    "num_members": int(event["num_members"]),
                    "num_participants": len(participants),
                    "prob_sum": float(event["prob_sum"]),
                    "prob_max": float(event["prob_max"]),
                    "prob_min": float(event["prob_min"]),
                    "mean_grad_sq_norm": event.get("mean_grad_sq_norm"),
                    "mean_loss": event.get("mean_loss"),
                }
            )
            for m in participants:
                participation[m] = participation.get(m, 0) + 1
        elif kind == "fault":
            by_kind: Dict[str, int] = {}
            for fault in event["failures"].values():
                by_kind[str(fault)] = by_kind.get(str(fault), 0) + 1
                fault_counts[str(fault)] = fault_counts.get(str(fault), 0) + 1
            degraded.append(
                {
                    "t": int(event["t"]),
                    "edge": int(event["edge"]),
                    "num_sampled": int(event["num_sampled"]),
                    "failures": by_kind,
                }
            )
        elif kind == "sync_attempt":
            failed = int(event["failed_attempts"])
            used_stale = bool(event["used_stale"])
            syncs.append(
                {
                    "t": int(event["t"]),
                    "edge": int(event["edge"]),
                    "failed_attempts": failed,
                    "used_stale": used_stale,
                    "backoff_seconds": float(event["backoff_seconds"]),
                }
            )
            if failed > 0:
                fault_counts["sync_failure"] = (
                    fault_counts.get("sync_failure", 0) + failed
                )
            if used_stale:
                fault_counts["stale_sync"] = fault_counts.get("stale_sync", 0) + 1
        elif kind in ("device_joined", "device_left"):
            t = int(event["t"])
            group = churn_by_step.setdefault(
                t, {"t": t, "joined": [], "left": [], "num_active": 0}
            )
            key = "joined" if kind == "device_joined" else "left"
            group[key].append(int(event["device"]))
            group["num_active"] = int(event["num_active"])
        elif kind == "late_admit":
            late_admits.append(
                {
                    "t": int(event["t"]),
                    "edge": int(event["edge"]),
                    "device": int(event["device"]),
                    "born_step": int(event["born_step"]),
                    "age": int(event["age"]),
                    "scale": float(event["scale"]),
                }
            )
        elif kind == "late_drop":
            late_drops.append(
                {
                    "t": int(event["t"]),
                    "edge": int(event["edge"]),
                    "device": int(event["device"]),
                    "born_step": int(event["born_step"]),
                    "age": int(event["age"]),
                }
            )

    recorder = TelemetryRecorder()
    recorder.load_state_dict(
        {
            "records": records,
            "participation": {str(k): v for k, v in participation.items()},
            "fault_counts": fault_counts,
            "degraded_rounds": degraded,
            "sync_attempts": syncs,
            "churn_records": list(churn_by_step.values()),
            "late_admits": late_admits,
            "late_drops": late_drops,
        }
    )
    return recorder

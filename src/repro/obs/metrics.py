"""Metrics registry: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metric *families*; each family
carries values keyed by a (possibly empty) label set, mirroring the
Prometheus data model.  Two export formats are supported:

- :meth:`MetricsRegistry.to_json` — a nested JSON-compatible dict for
  programmatic consumption (tests, dashboards, the runner's
  ``--metrics-out``);
- :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, ``_bucket`` /
  ``_sum`` / ``_count`` series for histograms) for scrape-compatible
  snapshots.

Histograms use **fixed bucket bounds** chosen at registration, so two
runs of the same build always export the same series — no dynamic
bucketing that would make snapshots incomparable.

The registry is pure bookkeeping: it never reads a clock or an RNG, so
attaching it to a run cannot perturb determinism.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASE_SECONDS_BUCKETS",
    "PARTICIPANTS_BUCKETS",
]

#: Default bucket bounds (seconds) for engine phase-time histograms:
#: sub-millisecond bookkeeping through multi-second evaluation passes.
PHASE_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Default bucket bounds for per-round participant counts.
PARTICIPANTS_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Prometheus text exposition format: label values escape backslash,
    # double-quote and line-feed (in that order, so the backslashes
    # introduced for quotes/newlines are not re-escaped).
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and line-feed only.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Family:
    """Shared bookkeeping of one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Family):
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }

    def render(self) -> List[str]:
        lines = self._header()
        for key, value in sorted(self._values.items()):
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(value)}"
            )
        return lines


class Gauge(_Family):
    """Last-write-wins instantaneous values."""

    kind = "gauge"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> Optional[float]:
        return self._values.get(_label_key(labels))

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }

    def render(self) -> List[str]:
        lines = self._header()
        for key, value in sorted(self._values.items()):
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(value)}"
            )
        return lines


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """Cumulative-bucket histogram with fixed, registration-time bounds."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str, buckets: Sequence[float]
    ) -> None:
        super().__init__(name, help)
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]
        #: Finite upper bounds; the +Inf bucket is implicit.
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._states: Dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.bounds) + 1)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                state.bucket_counts[i] += 1
                break
        else:
            state.bucket_counts[-1] += 1
        state.total += float(value)
        state.count += 1

    def snapshot(self, **labels: str) -> Optional[dict]:
        """Cumulative bucket counts, sum and count for one label set."""
        state = self._states.get(_label_key(labels))
        if state is None:
            return None
        cumulative: List[int] = []
        running = 0
        for c in state.bucket_counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": {
                **{
                    _format_value(b): cumulative[i]
                    for i, b in enumerate(self.bounds)
                },
                "+Inf": cumulative[-1],
            },
            "sum": state.total,
            "count": state.count,
        }

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "values": [
                {"labels": dict(key), **self.snapshot(**dict(key))}
                for key in sorted(self._states)
            ],
        }

    def render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._states):
            snap = self.snapshot(**dict(key))
            for bound, cum in snap["buckets"].items():
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, [('le', bound)])} {cum}"
                )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(snap['sum'])}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {snap['count']}")
        return lines


class MetricsRegistry:
    """Registry of metric families, exportable as JSON or Prometheus text."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family):
                raise ValueError(
                    f"metric {family.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter family ``name`` (idempotent)."""
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge family ``name`` (idempotent)."""
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = PHASE_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram family ``name`` (idempotent)."""
        return self._register(Histogram(name, help, buckets))  # type: ignore[return-value]

    def families(self) -> List[str]:
        return sorted(self._families)

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    # -- export --------------------------------------------------------------

    def to_json(self) -> Dict[str, dict]:
        """Every family's full state as a JSON-compatible dict."""
        return {
            name: family.to_json()
            for name, family in sorted(self._families.items())
        }

    def write_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format snapshot."""
        lines: List[str] = []
        for _name, family in sorted(self._families.items()):
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_prometheus())

"""Health/SLO layer: declarative rolling-window rules over the metrics.

This is the SLO substrate for the planned always-on coordinator
service: instead of grepping benchmark output, a run declares
:class:`HealthRule`\\ s — rolling-window conditions over metric families
already in the :class:`~repro.obs.metrics.MetricsRegistry` — and a
:class:`HealthMonitor` samples the registry each step and folds them
into a liveness/readiness-style :class:`HealthReport` with
``ok`` / ``degraded`` / ``failing`` verdicts.

Rule kinds (all thresholds are "higher is worse", with
``degraded <= failing``):

- ``gauge_p95`` — p95 of a gauge's last ``window`` samples (e.g. step
  latency);
- ``gauge_value`` — the gauge's latest value (e.g. stale-buffer size);
- ``counter_rate`` — a counter's per-step increase averaged over the
  window (e.g. sync failures per step);
- ``counter_ratio`` — increase of one counter divided by increase of
  another over the window (e.g. late admits per round);
- ``counter_age`` — steps since a counter last increased (e.g.
  checkpoint age).

A rule whose metric family does not exist (or has no samples yet)
evaluates to *no data*, which is ``ok`` — an unknown signal must not
fail a liveness probe.  The monitor itself is a pure observer: it reads
the registry, never the run's RNG or model state, so health checks
cannot perturb determinism.

The overall verdict (worst rule) is exported as the
``repro_health_status`` gauge (0 ok / 1 degraded / 2 failing, labeled
per rule plus ``rule="overall"``), transitions are recorded for the
runner's ``--health-out`` artifact, and the trainer emits a ``health``
JSONL event whenever the overall verdict changes.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import Counter, Gauge, MetricsRegistry

__all__ = [
    "HealthRule",
    "HealthReport",
    "HealthMonitor",
    "default_rules",
    "VERDICT_OK",
    "VERDICT_DEGRADED",
    "VERDICT_FAILING",
]

VERDICT_OK = "ok"
VERDICT_DEGRADED = "degraded"
VERDICT_FAILING = "failing"
_VERDICT_RANK = {VERDICT_OK: 0, VERDICT_DEGRADED: 1, VERDICT_FAILING: 2}

_RULE_KINDS = (
    "gauge_p95",
    "gauge_value",
    "counter_rate",
    "counter_ratio",
    "counter_age",
)


@dataclass(frozen=True)
class HealthRule:
    """One declarative rolling-window condition over a metric family."""

    name: str
    kind: str
    metric: str
    degraded: float
    failing: float
    window: int = 50
    #: Second counter family for ``counter_ratio`` denominators.
    denominator: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise ValueError(
                f"unknown rule kind {self.kind!r}; expected one of "
                f"{_RULE_KINDS}"
            )
        if self.failing < self.degraded:
            raise ValueError(
                f"rule {self.name!r}: failing threshold {self.failing} "
                f"below degraded threshold {self.degraded}"
            )
        if self.window < 1:
            raise ValueError(f"rule {self.name!r}: window must be >= 1")
        if self.kind == "counter_ratio" and not self.denominator:
            raise ValueError(
                f"rule {self.name!r}: counter_ratio needs a denominator"
            )

    def verdict(self, value: Optional[float]) -> str:
        if value is None or value != value:  # no data / NaN
            return VERDICT_OK
        if value >= self.failing:
            return VERDICT_FAILING
        if value >= self.degraded:
            return VERDICT_DEGRADED
        return VERDICT_OK

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "degraded": self.degraded,
            "failing": self.failing,
            "window": self.window,
        }
        if self.denominator:
            out["denominator"] = self.denominator
        return out


@dataclass(frozen=True)
class HealthReport:
    """Point-in-time evaluation of every rule plus the overall verdict."""

    step: int
    verdict: str
    rules: Tuple[dict, ...] = field(default_factory=tuple)

    @property
    def ready(self) -> bool:
        """Readiness-style check: not failing."""
        return self.verdict != VERDICT_FAILING

    @property
    def live(self) -> bool:
        """Liveness-style check: the monitor is receiving samples."""
        return True

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "verdict": self.verdict,
            "ready": self.ready,
            "live": self.live,
            "rules": list(self.rules),
        }


def default_rules(checkpoint_every: Optional[int] = None) -> List[HealthRule]:
    """The stock SLO rule set for an engine run.

    The thresholds are deliberately generous defaults for the simulator
    workloads; a service deployment would declare its own.  The
    checkpoint-age rule is only included when checkpointing is actually
    configured — demanding checkpoints from a run that never writes
    them would fail vacuously.
    """
    rules = [
        HealthRule(
            name="step_latency_p95",
            kind="gauge_p95",
            metric="repro_step_latency_seconds",
            degraded=1.0,
            failing=10.0,
            window=50,
        ),
        HealthRule(
            name="sync_failure_rate",
            kind="counter_rate",
            metric="repro_stale_syncs_total",
            degraded=0.25,
            failing=0.75,
            window=50,
        ),
        HealthRule(
            name="late_admit_ratio",
            kind="counter_ratio",
            metric="repro_late_admits_total",
            denominator="repro_rounds_total",
            degraded=0.25,
            failing=0.75,
            window=50,
        ),
        HealthRule(
            name="lost_round_rate",
            kind="counter_rate",
            metric="repro_lost_rounds_total",
            degraded=0.25,
            failing=0.75,
            window=50,
        ),
    ]
    if checkpoint_every is not None and checkpoint_every > 0:
        rules.append(
            HealthRule(
                name="checkpoint_age",
                kind="counter_age",
                metric="repro_checkpoints_total",
                degraded=float(3 * checkpoint_every),
                failing=float(10 * checkpoint_every),
                window=max(50, 10 * checkpoint_every),
            )
        )
    return rules


def _family_total(family: object) -> Optional[float]:
    """Sum a family's values across label sets (None when unsampled)."""
    if isinstance(family, (Counter, Gauge)):
        values = family._values
        if not values:
            return None
        return float(sum(values.values()))
    return None


def _p95(values: List[float]) -> float:
    ordered = sorted(values)
    index = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[index]


class HealthMonitor:
    """Samples the registry each step and evaluates the rules."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        rules: Optional[List[HealthRule]] = None,
        check_every: int = 1,
    ) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.metrics = metrics
        self.rules = list(rules) if rules is not None else default_rules()
        self.check_every = int(check_every)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self._status = metrics.gauge(
            "repro_health_status",
            "Health verdict per rule (0 ok, 1 degraded, 2 failing)",
        )
        #: Per-family rolling samples of (step, total).
        self._series: Dict[str, Deque[Tuple[int, float]]] = {}
        #: Per-counter step of last observed increase.
        self._last_increase: Dict[str, Optional[int]] = {}
        self._first_step: Optional[int] = None
        self._last_report: Optional[HealthReport] = None
        self._transitions: List[dict] = []
        self._samples_seen = 0
        max_window = max((r.window for r in self.rules), default=1)
        self._maxlen = max_window + 1
        for rule in self.rules:
            self._watch(rule.metric)
            if rule.denominator:
                self._watch(rule.denominator)

    def _watch(self, metric: str) -> None:
        if metric not in self._series:
            self._series[metric] = deque(maxlen=self._maxlen)
            self._last_increase[metric] = None

    # -- sampling ------------------------------------------------------------

    def observe(self, step: int) -> Optional[HealthReport]:
        """Sample every watched family at ``step``; evaluate when due.

        Returns the new :class:`HealthReport` on evaluation steps and
        ``None`` otherwise.
        """
        step = int(step)
        if self._first_step is None:
            self._first_step = step
        self._samples_seen += 1
        for metric, series in self._series.items():
            total = _family_total(self.metrics.get(metric))
            if total is None:
                continue
            if series and total > series[-1][1]:
                self._last_increase[metric] = step
            elif not series and total > 0:
                self._last_increase[metric] = step
            series.append((step, total))
        if self._samples_seen % self.check_every != 0:
            return None
        return self._evaluate(step)

    # -- evaluation ----------------------------------------------------------

    def _window(self, rule: HealthRule, metric: str) -> List[Tuple[int, float]]:
        series = self._series.get(metric, ())
        return list(series)[-(rule.window + 1):]

    def _rule_value(self, rule: HealthRule) -> Optional[float]:
        window = self._window(rule, rule.metric)
        if not window:
            return None
        if rule.kind == "gauge_value":
            return window[-1][1]
        if rule.kind == "gauge_p95":
            return _p95([value for _, value in window[-rule.window:]])
        if rule.kind == "counter_age":
            last = self._last_increase.get(rule.metric)
            if last is None:
                # Never incremented: age only starts counting once the
                # signal has appeared at least once (no-data is ok).
                return None
            return float(window[-1][0] - last)
        if len(window) < 2:
            return None
        delta = window[-1][1] - window[0][1]
        steps = window[-1][0] - window[0][0]
        if rule.kind == "counter_rate":
            return delta / steps if steps > 0 else None
        if rule.kind == "counter_ratio":
            denom_window = self._window(rule, rule.denominator or "")
            if len(denom_window) < 2:
                return None
            denom_delta = denom_window[-1][1] - denom_window[0][1]
            if denom_delta <= 0:
                return None
            return delta / denom_delta
        raise AssertionError(f"unreachable rule kind {rule.kind!r}")

    def _evaluate(self, step: int) -> HealthReport:
        rows = []
        worst = VERDICT_OK
        for rule in self.rules:
            value = self._rule_value(rule)
            verdict = rule.verdict(value)
            if _VERDICT_RANK[verdict] > _VERDICT_RANK[worst]:
                worst = verdict
            self._status.set(float(_VERDICT_RANK[verdict]), rule=rule.name)
            row = rule.to_dict()
            row["value"] = value
            row["verdict"] = verdict
            rows.append(row)
        self._status.set(float(_VERDICT_RANK[worst]), rule="overall")
        report = HealthReport(step=step, verdict=worst, rules=tuple(rows))
        previous = self._last_report
        if previous is None or previous.verdict != report.verdict:
            self._transitions.append({
                "step": step,
                "from": previous.verdict if previous else None,
                "to": report.verdict,
            })
        self._last_report = report
        return report

    # -- export --------------------------------------------------------------

    @property
    def last_report(self) -> Optional[HealthReport]:
        return self._last_report

    @property
    def transitions(self) -> List[dict]:
        return list(self._transitions)

    def to_json(self) -> dict:
        return {
            "check_every": self.check_every,
            "samples_seen": self._samples_seen,
            "rules": [rule.to_dict() for rule in self.rules],
            "report": (
                self._last_report.to_dict() if self._last_report else None
            ),
            "transitions": list(self._transitions),
        }

    def write_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")

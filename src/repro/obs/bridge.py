"""Bridge from the existing telemetry hooks into the obs sinks.

:class:`ObservedTelemetryRecorder` is a drop-in
:class:`~repro.hfl.telemetry.TelemetryRecorder`: the trainer calls the
same hooks, the in-memory state (and therefore ``state_dict`` and every
summary) is bit-identical to the plain recorder's — and each hook
additionally fans out to the run's :class:`~repro.obs.events.EventLog`
and :class:`~repro.obs.metrics.MetricsRegistry`.

Keeping the fan-out *here* rather than in the trainer means every
engine call site that already reports telemetry (rounds, faults, sync
attempts, phase timings) feeds the event log for free, and the trainer
only emits the events the recorder never sees (eval, checkpoint,
run_start/run_end, spans).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.hfl.telemetry import TelemetryRecorder
from repro.obs.metrics import PARTICIPANTS_BUCKETS, PHASE_SECONDS_BUCKETS

__all__ = ["ObservedTelemetryRecorder"]


class ObservedTelemetryRecorder(TelemetryRecorder):
    """A telemetry recorder that mirrors every hook into the obs sinks."""

    def __init__(self, obs) -> None:
        super().__init__()
        self._obs = obs
        metrics = obs.metrics
        if metrics is not None:
            self._rounds_total = metrics.counter(
                "repro_rounds_total", "Finished (step, edge) training rounds"
            )
            self._participants_total = metrics.counter(
                "repro_participants_total",
                "Device uploads that reached aggregation",
            )
            self._round_participants = metrics.histogram(
                "repro_round_participants",
                "Surviving participants per round",
                buckets=PARTICIPANTS_BUCKETS,
            )
            self._faults_total = metrics.counter(
                "repro_faults_total", "Injected faults by kind"
            )
            self._degraded_total = metrics.counter(
                "repro_degraded_rounds_total",
                "Rounds that lost at least one sampled upload",
            )
            self._lost_total = metrics.counter(
                "repro_lost_rounds_total",
                "Rounds that lost every sampled upload",
            )
            self._stale_total = metrics.counter(
                "repro_stale_syncs_total",
                "Sync steps where an edge fell back to its stale model",
            )
            self._backoff_total = metrics.counter(
                "repro_backoff_seconds_total",
                "Simulated edge-to-cloud retry backoff",
            )
            self._phase_seconds = metrics.histogram(
                "repro_phase_seconds",
                "Engine wall-clock per phase call",
                buckets=PHASE_SECONDS_BUCKETS,
            )
            self._joined_total = metrics.counter(
                "repro_devices_joined_total", "Churn arrivals (enrollments)"
            )
            self._left_total = metrics.counter(
                "repro_devices_left_total", "Churn departures (de-enrollments)"
            )
            self._active_gauge = metrics.gauge(
                "repro_active_devices",
                "Enrolled devices after the latest churn transition",
            )
            self._late_admits_total = metrics.counter(
                "repro_late_admits_total",
                "Parked late uploads admitted into a later aggregate",
            )
            self._late_drops_total = metrics.counter(
                "repro_late_drops_total",
                "Parked late uploads dropped (device de-enrolled)",
            )
            self._staleness_age = metrics.histogram(
                "repro_staleness_age_steps",
                "Age in steps of admitted late uploads",
                buckets=(1.0, 2.0, 3.0, 5.0, 8.0, 13.0),
            )

    # -- mirrored hooks ------------------------------------------------------

    def record_round(
        self,
        t: int,
        edge: int,
        members: np.ndarray,
        probabilities: np.ndarray,
        participant_ids: List[int],
        grad_sq_norms: List[float],
        losses: List[float],
    ) -> None:
        super().record_round(
            t, edge, members, probabilities, participant_ids,
            grad_sq_norms, losses,
        )
        record = self.records[-1]
        events = self._obs.events
        if events is not None:
            events.emit(
                "round",
                t=record.t,
                edge=record.edge,
                num_members=record.num_members,
                participants=[int(m) for m in participant_ids],
                prob_sum=record.prob_sum,
                prob_max=record.prob_max,
                prob_min=record.prob_min,
                mean_grad_sq_norm=record.mean_grad_sq_norm,
                mean_loss=record.mean_loss,
            )
        if self._obs.metrics is not None:
            self._rounds_total.inc(edge=str(edge))
            self._participants_total.inc(len(participant_ids))
            self._round_participants.observe(len(participant_ids))

    def record_faults(
        self, t: int, edge: int, failures: Mapping[int, str], num_sampled: int
    ) -> None:
        super().record_faults(t, edge, failures, num_sampled)
        if not failures:
            return
        events = self._obs.events
        if events is not None:
            events.emit(
                "fault",
                t=t,
                edge=edge,
                num_sampled=num_sampled,
                failures={str(device): kind for device, kind in failures.items()},
            )
        if self._obs.metrics is not None:
            by_kind: Dict[str, int] = {}
            for kind in failures.values():
                by_kind[kind] = by_kind.get(kind, 0) + 1
            for kind, count in by_kind.items():
                self._faults_total.inc(count, kind=kind)
            self._degraded_total.inc()
            if len(failures) == num_sampled:
                self._lost_total.inc()

    def record_sync_attempt(
        self,
        t: int,
        edge: int,
        failed_attempts: int,
        used_stale: bool,
        backoff_seconds: float,
    ) -> None:
        super().record_sync_attempt(
            t, edge, failed_attempts, used_stale, backoff_seconds
        )
        events = self._obs.events
        if events is not None:
            events.emit(
                "sync_attempt",
                t=t,
                edge=edge,
                failed_attempts=failed_attempts,
                used_stale=used_stale,
                backoff_seconds=backoff_seconds,
            )
        if self._obs.metrics is not None:
            if failed_attempts > 0:
                self._faults_total.inc(failed_attempts, kind="sync_failure")
            if used_stale:
                self._stale_total.inc()
            self._backoff_total.inc(backoff_seconds)

    def record_churn(
        self, t: int, joined: List[int], left: List[int], num_active: int
    ) -> None:
        super().record_churn(t, joined, left, num_active)
        if not joined and not left:
            return
        events = self._obs.events
        if events is not None:
            # One event per device (departures first, matching the
            # transition order inside the trainer); each carries the
            # post-transition active count so replay can rebuild the
            # ChurnRecord exactly by grouping on t.
            for device in left:
                events.emit(
                    "device_left",
                    t=t,
                    device=int(device),
                    num_active=int(num_active),
                )
            for device in joined:
                events.emit(
                    "device_joined",
                    t=t,
                    device=int(device),
                    num_active=int(num_active),
                )
        if self._obs.metrics is not None:
            if joined:
                self._joined_total.inc(len(joined))
            if left:
                self._left_total.inc(len(left))
            self._active_gauge.set(float(num_active))

    def record_late_admit(
        self, t: int, edge: int, device: int, born_step: int, age: int,
        scale: float,
    ) -> None:
        super().record_late_admit(t, edge, device, born_step, age, scale)
        events = self._obs.events
        if events is not None:
            events.emit(
                "late_admit",
                t=t,
                edge=edge,
                device=device,
                born_step=born_step,
                age=age,
                scale=scale,
            )
        if self._obs.metrics is not None:
            self._late_admits_total.inc()
            self._staleness_age.observe(float(age))

    def record_late_drop(
        self, t: int, edge: int, device: int, born_step: int, age: int
    ) -> None:
        super().record_late_drop(t, edge, device, born_step, age)
        events = self._obs.events
        if events is not None:
            events.emit(
                "late_drop",
                t=t,
                edge=edge,
                device=device,
                born_step=born_step,
                age=age,
            )
        if self._obs.metrics is not None:
            self._late_drops_total.inc()

    def record_phase(self, phase: str, seconds: float) -> None:
        super().record_phase(phase, seconds)
        if self._obs.metrics is not None:
            self._phase_seconds.observe(seconds, phase=phase)

"""MACH decision audit trail: why each device was (not) sampled.

For every ``(step, edge)`` round the trail records, per candidate
device inside the edge:

- the **empirical term** of Eq. (15) — the exploitation component of
  the device's UCB score G̃²_m at its last refresh;
- the **UCB exploration bonus** — ``√(log(t)/Σ 1^{t'}_{m,n})``, infinite
  for never-sampled devices;
- the resulting **G̃²_m estimate** the edge strategy consumed;
- the **sampling probability** q^t_{m,n} produced by Eqs. (16)–(18);
- the drawn **participation indicator** 1^t_{m,n}.

This makes the sampling-vs-mobility interplay replayable offline: the
engine draws the indicators from the named stream
``(master_seed, step, edge, "participation")``, so
:meth:`MACHAuditTrail.replay_indicators` can recompute every round's
Bernoulli draw *from the logged probabilities alone* and
:meth:`MACHAuditTrail.verify_replay` asserts the recomputation matches
the logged indicators bit for bit — the audit trail is a proof, not
just a trace.

Samplers that are not UCB-based still get probability/indicator audit
rows; their term columns are ``None`` (see
:meth:`repro.sampling.base.Sampler.audit_components`).

The trail only *reads* sampler state and the already-drawn indicators;
it never consumes randomness or enters any ``state_dict``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SamplingDecision", "MACHAuditTrail"]


def _jsonable(values: Optional[Sequence[float]]) -> Optional[List[Optional[float]]]:
    """Floats → JSON-compatible list; non-finite values become strings."""
    if values is None:
        return None
    out: List[Any] = []
    for v in values:
        if v is None:
            out.append(None)
        elif math.isinf(v):
            out.append("inf" if v > 0 else "-inf")
        elif math.isnan(v):
            out.append("nan")
        else:
            out.append(float(v))
    return out


def _from_jsonable(values: Optional[Sequence[Any]]) -> Optional[List[float]]:
    if values is None:
        return None
    return [
        v if v is None else float(v) for v in values
    ]


@dataclass(frozen=True)
class SamplingDecision:
    """The audit record of one (step, edge) sampling round."""

    t: int
    edge: int
    #: Candidate device ids (the edge's members at step ``t``).
    devices: Tuple[int, ...]
    #: Sampling probability per candidate (Eqs. (16)–(18) output).
    probabilities: Tuple[float, ...]
    #: Drawn participation indicator per candidate.
    indicators: Tuple[bool, ...]
    #: Eq. (15) exploitation term per candidate (None: non-UCB sampler).
    empirical: Optional[Tuple[float, ...]] = None
    #: Eq. (15) exploration bonus per candidate (None: non-UCB sampler).
    bonus: Optional[Tuple[float, ...]] = None
    #: The G̃²_m estimate the edge strategy consumed (None: non-UCB).
    estimate: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        n = len(self.devices)
        for name in ("probabilities", "indicators", "empirical", "bonus", "estimate"):
            value = getattr(self, name)
            if value is not None and len(value) != n:
                raise ValueError(
                    f"{name} has {len(value)} entries for {n} candidates"
                )

    @property
    def sampled(self) -> Tuple[int, ...]:
        """The device ids whose indicator was drawn 1."""
        return tuple(
            m for m, drawn in zip(self.devices, self.indicators) if drawn
        )

    def to_event(self) -> Dict[str, Any]:
        """JSON-compatible payload of one ``sampling`` event."""
        event: Dict[str, Any] = {
            "t": self.t,
            "edge": self.edge,
            "devices": list(self.devices),
            "probabilities": [float(q) for q in self.probabilities],
            "indicators": [int(i) for i in self.indicators],
        }
        event["empirical"] = _jsonable(self.empirical)
        event["bonus"] = _jsonable(self.bonus)
        event["estimate"] = _jsonable(self.estimate)
        return event

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "SamplingDecision":
        """Rebuild a decision from a parsed ``sampling`` event."""

        def terms(name: str) -> Optional[Tuple[float, ...]]:
            values = _from_jsonable(event.get(name))
            return None if values is None else tuple(values)

        return cls(
            t=int(event["t"]),
            edge=int(event["edge"]),
            devices=tuple(int(m) for m in event["devices"]),
            probabilities=tuple(float(q) for q in event["probabilities"]),
            indicators=tuple(bool(i) for i in event["indicators"]),
            empirical=terms("empirical"),
            bonus=terms("bonus"),
            estimate=terms("estimate"),
        )


class MACHAuditTrail:
    """In-memory collection of per-round sampling decisions.

    The trainer records into the trail as rounds are planned; an
    attached :class:`~repro.obs.events.EventLog` (if any) receives each
    decision as a ``sampling`` event at the same moment, so the on-disk
    and in-memory views never diverge.
    """

    def __init__(self, event_log=None) -> None:
        self.decisions: List[SamplingDecision] = []
        self._event_log = event_log

    def record_round(
        self,
        t: int,
        edge: int,
        devices: Sequence[int],
        probabilities: Sequence[float],
        indicators: Sequence[bool],
        components: Optional[Dict[str, Sequence[float]]] = None,
    ) -> None:
        """Record one planned round (``components`` from the sampler's
        :meth:`~repro.sampling.base.Sampler.audit_components`)."""
        components = components or {}

        def term(name: str) -> Optional[Tuple[float, ...]]:
            values = components.get(name)
            return None if values is None else tuple(float(v) for v in values)

        decision = SamplingDecision(
            t=int(t),
            edge=int(edge),
            devices=tuple(int(m) for m in devices),
            probabilities=tuple(float(q) for q in probabilities),
            indicators=tuple(bool(i) for i in indicators),
            empirical=term("empirical"),
            bonus=term("bonus"),
            estimate=term("estimate"),
        )
        self.decisions.append(decision)
        if self._event_log is not None:
            self._event_log.emit("sampling", **decision.to_event())

    # -- offline queries -----------------------------------------------------

    def sampled_sets(self) -> Dict[Tuple[int, int], Tuple[int, ...]]:
        """Per-(step, edge) sampled device set, from the logged indicators."""
        return {(d.t, d.edge): d.sampled for d in self.decisions}

    def replay_indicators(
        self, master_seed: int
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Re-draw every round's indicators from the logged probabilities.

        Uses exactly the engine's named stream
        ``round_generator(t, edge, "participation")`` and Bernoulli rule
        (:meth:`repro.hfl.edge.Edge.draw_participation`), so for the
        true master seed the result equals the logged indicators.
        """
        from repro.hfl.edge import Edge
        from repro.utils.rng import SeedSequenceFactory

        seeds = SeedSequenceFactory(master_seed)
        replayed: Dict[Tuple[int, int], np.ndarray] = {}
        for d in self.decisions:
            rng = seeds.round_generator(d.t, d.edge, "participation")
            replayed[(d.t, d.edge)] = Edge.draw_participation(
                np.asarray(d.probabilities, dtype=float), rng=rng
            )
        return replayed

    def verify_replay(self, master_seed: int) -> bool:
        """Check the logged indicators against a fresh seeded replay.

        Returns True when every round's logged indicators (hence every
        sampled set) is exactly reproduced from the logged probabilities
        and the master seed; raises ``ValueError`` naming the first
        divergent round otherwise.
        """
        replayed = self.replay_indicators(master_seed)
        for d in self.decisions:
            drawn = replayed[(d.t, d.edge)]
            if not np.array_equal(drawn, np.asarray(d.indicators, dtype=bool)):
                raise ValueError(
                    f"audit replay diverged at step {d.t}, edge {d.edge}: "
                    f"logged {list(map(int, d.indicators))}, replayed "
                    f"{list(map(int, drawn))}"
                )
        return True

    @classmethod
    def from_events(cls, events: Iterable[Dict[str, Any]]) -> "MACHAuditTrail":
        """Rebuild a trail from a parsed event log's ``sampling`` events."""
        trail = cls()
        trail.decisions = [
            SamplingDecision.from_event(e)
            for e in events
            if e.get("type") == "sampling"
        ]
        return trail

"""Hierarchical span tracing for the HFL engine.

A :class:`SpanTracer` records wall-clock spans on a monotonic clock
(:func:`time.perf_counter`) and nests them through an explicit stack, so
the trainer's instrumentation produces the natural hierarchy

.. code-block:: text

    cloud_step(t)
    ├── plan
    ├── execute
    │   └── edge_round(edge=n)            # synthesized from worker timings
    │       └── device_update(device=m, worker=...)
    ├── finish
    ├── sync                              # on sync steps
    └── eval                              # on evaluation points

Two kinds of spans exist:

- **live spans** opened with :meth:`SpanTracer.span` (a context manager)
  or the :meth:`SpanTracer.traced` decorator — start/end read the
  monotonic clock in the tracing thread;
- **synthesized spans** added with :meth:`SpanTracer.add_span` from a
  duration measured elsewhere (a pool worker's own clock).  Their
  ``start`` is the duration-stacked offset within the parent, which
  preserves the hierarchy and per-worker attribution without assuming
  worker clocks share an epoch (marked ``synthesized=True``).

When tracing is disabled the module-level :data:`NULL_TRACER` is used:
its ``span()`` returns one shared no-op context manager and every other
method is a no-op, so an un-traced run pays a single attribute load and
truthiness check per instrumentation point.

Span timestamps are observability, not run state: nothing here feeds
any RNG or ``state_dict``, so tracing cannot perturb the engine's
bit-identical determinism contract.
"""

from __future__ import annotations

import functools
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One recorded span: identity, hierarchy, timing and attributes."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "attrs",
        "synthesized",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        duration: float,
        attrs: Dict[str, Any],
        synthesized: bool = False,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs
        self.synthesized = synthesized

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible record (one line of the trace JSONL)."""
        record: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.synthesized:
            record["synthesized"] = True
        if self.attrs:
            record.update(self.attrs)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"duration={self.duration:.6f})"
        )


class _LiveSpan:
    """Context manager for one open span of a :class:`SpanTracer`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_span_id", "_parent_id")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        self._parent_id = tracer._stack[-1] if tracer._stack else None
        self._span_id = tracer._next_id()
        tracer._stack.append(self._span_id)
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer.spans.append(
            Span(
                self._span_id,
                self._parent_id,
                self._name,
                self._start - tracer._epoch,
                end - self._start,
                self._attrs,
            )
        )

    @property
    def span_id(self) -> int:
        return self._span_id


class SpanTracer:
    """Collects a hierarchy of wall-clock spans on a monotonic clock."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._counter = 0
        self._clock = time.perf_counter
        #: All span starts are reported relative to tracer creation, so
        #: traces from different runs are comparable.
        self._epoch = self._clock()
        #: Duration-stacking cursor per parent for synthesized children.
        self._synth_cursor: Dict[int, float] = {}

    def _next_id(self) -> int:
        self._counter += 1
        return self._counter

    @property
    def current_id(self) -> Optional[int]:
        """Span id of the innermost open span (None at top level)."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a live child span of the current span (context manager)."""
        return _LiveSpan(self, name, attrs)

    def add_span(
        self,
        name: str,
        duration: float,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[int]:
        """Record a synthesized span from an externally measured duration.

        ``parent_id`` defaults to the innermost open span.  Synthesized
        siblings under one parent are laid out back-to-back from the
        parent's start (worker wall-clocks share no epoch with the
        tracer, so only durations are trusted).  Returns the span id so
        callers can hang further children off it.
        """
        if duration < 0:
            raise ValueError(f"span duration must be >= 0, got {duration}")
        if parent_id is None:
            parent_id = self.current_id
        offset = self._synth_cursor.get(parent_id, 0.0) if parent_id else 0.0
        span_id = self._next_id()
        self.spans.append(
            Span(
                span_id,
                parent_id,
                name,
                offset,
                duration,
                attrs,
                synthesized=True,
            )
        )
        if parent_id is not None:
            self._synth_cursor[parent_id] = offset + duration
        return span_id

    def traced(self, name: str, **attrs: Any) -> Callable:
        """Decorator form of :meth:`span` for whole-function spans."""

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- export --------------------------------------------------------------

    def to_list(self) -> List[Dict[str, Any]]:
        """Every recorded span as a JSON-compatible dict, in end order."""
        return [span.to_dict() for span in self.spans]

    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Dump the trace as one span-dict per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as stream:
            for span in self.spans:
                stream.write(json.dumps(span.to_dict()) + "\n")

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        """Direct children of ``span_id`` (None ⇒ root spans)."""
        return [s for s in self.spans if s.parent_id == span_id]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span with the given name."""
        return sum(s.duration for s in self.spans if s.name == name)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(SpanTracer):
    """Zero-cost tracer used when tracing is disabled.

    Every instrumentation point degrades to returning a shared no-op
    context manager; nothing is allocated or recorded.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def add_span(self, name, duration, parent_id=None, **attrs):
        return None

    def traced(self, name: str, **attrs: Any) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate


#: The process-wide disabled tracer (safe to share: it holds no state).
NULL_TRACER = NullTracer()

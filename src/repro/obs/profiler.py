"""Continuous profiler: hierarchical wall/CPU timing with attribution.

:class:`Profiler` is the opt-in continuous-profiling layer of the obs
stack.  It aggregates three streams into one hierarchy of
``phase → subsystem → site`` records:

- **phase totals** reported by the trainer (plan / execute / finish /
  sync / eval / checkpoint), the same quantities the telemetry recorder
  tracks;
- **hot-path sites** self-reported through :func:`repro.prof.profile_site`
  by the mobility trace scan, ``Edge.aggregate`` and friends, tagged
  with the phase that was active when they ran;
- **worker timings** drained from the executors
  (:class:`repro.runtime.base.WorkerTiming`), attributed per
  (step, edge, device) under the synthetic
  ``execute/runtime/device_update`` site.

All clocks are observational (``perf_counter`` / ``process_time``); the
profiler never touches an RNG or model state, so enabling it cannot
perturb a run — the bit-identity contract is tested across all three
executors.

Exports:

- :meth:`Profiler.hotspot_table` — aggregate rows sorted by wall time,
  with per-edge attribution and share-of-run;
- :meth:`Profiler.to_json` / :meth:`Profiler.write_json` — the full
  report (hotspots, per-phase totals, recent per-step records,
  allocation samples);
- :meth:`Profiler.collapsed_stacks` / :meth:`Profiler.write_collapsed`
  — ``frame;frame;frame <microseconds>`` lines consumable by standard
  flamegraph tooling (e.g. ``flamegraph.pl``, speedscope).

Optionally, ``alloc_every=K`` samples :mod:`tracemalloc` every K steps
(current/peak traced bytes plus the top allocation sites).  Allocation
tracing has real overhead, so it is off unless requested.

Profiler state is **transient**: like ``ConvWorkspace`` and the worker
context caches, accumulated records are dropped on pickle/deepcopy and
the copy starts empty with the same configuration.  A profiler is
installed process-globally via :meth:`activate` (see
:mod:`repro.prof`); forked pool workers therefore inherit an inert
copy, and their work is attributed through the worker-timing drain
instead.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import prof as _prof

__all__ = ["Profiler", "SiteStat"]

SiteKey = Tuple[str, str, str]  # (phase, subsystem, site)


class SiteStat:
    """Aggregate wall/CPU totals for one (phase, subsystem, site)."""

    __slots__ = ("calls", "wall", "cpu", "per_edge", "per_worker")

    def __init__(self) -> None:
        self.calls = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.per_edge: Dict[str, float] = {}
        self.per_worker: Dict[str, float] = {}

    def add(self, wall: float, cpu: float, edge: Optional[object] = None,
            worker: Optional[str] = None) -> None:
        self.calls += 1
        self.wall += wall
        self.cpu += cpu
        if edge is not None:
            label = str(edge)
            self.per_edge[label] = self.per_edge.get(label, 0.0) + wall
        if worker is not None:
            self.per_worker[worker] = self.per_worker.get(worker, 0.0) + wall

    def to_dict(self) -> dict:
        out = {
            "calls": self.calls,
            "wall_seconds": self.wall,
            "cpu_seconds": self.cpu,
            "mean_seconds": self.wall / self.calls if self.calls else 0.0,
        }
        if self.per_edge:
            out["per_edge_seconds"] = dict(sorted(self.per_edge.items()))
        if self.per_worker:
            out["per_worker_seconds"] = dict(sorted(self.per_worker.items()))
        return out


class Profiler:
    """Opt-in continuous profiler; see the module docstring."""

    #: Everything except configuration is dropped on pickle/deepcopy.
    _CONFIG_ATTRS = ("alloc_every", "alloc_top", "max_step_records")

    def __init__(
        self,
        alloc_every: Optional[int] = None,
        alloc_top: int = 10,
        max_step_records: int = 256,
    ) -> None:
        if alloc_every is not None and alloc_every < 1:
            raise ValueError(f"alloc_every must be >= 1, got {alloc_every}")
        self.alloc_every = alloc_every
        self.alloc_top = int(alloc_top)
        self.max_step_records = int(max_step_records)
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        self._sites: Dict[SiteKey, SiteStat] = {}
        self._phases: Dict[str, SiteStat] = {}
        self._phase_stack: List[str] = []
        self._steps: Deque[dict] = deque(maxlen=self.max_step_records)
        self._current: Optional[dict] = None
        self._steps_observed = 0
        self._alloc_samples: List[dict] = []
        self._started_tracemalloc = False
        self._active = False

    # -- transience (pickle / deepcopy drop accumulated state) ---------------

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self._CONFIG_ATTRS}

    def __setstate__(self, state: dict) -> None:
        for name in self._CONFIG_ATTRS:
            setattr(self, name, state[name])
        self._reset_buffers()

    # -- activation ----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def activate(self) -> "Profiler":
        """Install as the process-global profiler (see ``repro.prof``)."""
        if _prof.get_profiler() is self:
            return self
        _prof.set_profiler(self)
        self._active = True
        if self.alloc_every is not None:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        return self

    def deactivate(self) -> None:
        """Uninstall; stops tracemalloc if this profiler started it."""
        if _prof.get_profiler() is self:
            _prof.set_profiler(None)
        self._active = False
        if self._started_tracemalloc:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.stop()
            self._started_tracemalloc = False

    def __enter__(self) -> "Profiler":
        return self.activate()

    def __exit__(self, *exc: object) -> None:
        self.deactivate()

    # -- phase / step context ------------------------------------------------

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else "run"

    def push_phase(self, name: str) -> None:
        self._phase_stack.append(name)

    def pop_phase(self) -> None:
        if self._phase_stack:
            self._phase_stack.pop()

    @contextmanager
    def phase_scope(self, name: str) -> Iterator[None]:
        """Tag sites recorded inside the block with phase ``name``."""
        self.push_phase(name)
        try:
            yield
        finally:
            self.pop_phase()

    def begin_step(self, step: int) -> None:
        self._current = {"step": int(step), "wall_seconds": 0.0,
                         "phases": {}, "edges": {}}

    def end_step(self, step: int, seconds: float) -> None:
        record = self._current
        if record is None or record["step"] != int(step):
            record = {"step": int(step), "phases": {}, "edges": {}}
        record["wall_seconds"] = float(seconds)
        self._steps.append(record)
        self._current = None
        self._steps_observed += 1
        if self.alloc_every is not None and step % self.alloc_every == 0:
            self._sample_allocations(step)

    def record_phase(self, phase: str, wall: float, cpu: float = 0.0) -> None:
        """One timed engine phase (plan/execute/finish/sync/eval/...)."""
        stat = self._phases.get(phase)
        if stat is None:
            stat = self._phases[phase] = SiteStat()
        stat.add(wall, cpu)
        if self._current is not None:
            phases = self._current["phases"]
            phases[phase] = phases.get(phase, 0.0) + wall

    # -- ingestion -----------------------------------------------------------

    def record_site(self, subsystem: str, site: str, wall: float, cpu: float,
                    attrs: Optional[dict] = None) -> None:
        """Sink for :func:`repro.prof.profile_site` (duck-typed hook)."""
        attrs = attrs or {}
        key = (self.current_phase, str(subsystem), str(site))
        stat = self._sites.get(key)
        if stat is None:
            stat = self._sites[key] = SiteStat()
        stat.add(wall, cpu, edge=attrs.get("edge"))

    def observe_worker_timings(self, timings: Iterable[object]) -> None:
        """Attribute drained ``WorkerTiming`` rows to device updates.

        Worker clocks measure wall time inside the worker; CPU time is
        not available across process boundaries, so ``cpu_seconds``
        stays zero for this site.
        """
        key = ("execute", "runtime", "device_update")
        stat = self._sites.get(key)
        if stat is None:
            stat = self._sites[key] = SiteStat()
        for t in timings:
            stat.add(t.seconds, 0.0, edge=t.edge, worker=t.worker)
            if self._current is not None and self._current["step"] == t.step:
                edges = self._current["edges"]
                label = str(t.edge)
                edges[label] = edges.get(label, 0.0) + t.seconds

    # -- allocation sampling -------------------------------------------------

    def _sample_allocations(self, step: int) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        snapshot = tracemalloc.take_snapshot()
        top = []
        for stat in snapshot.statistics("lineno")[: self.alloc_top]:
            frame = stat.traceback[0]
            top.append({
                "site": f"{frame.filename}:{frame.lineno}",
                "size_kb": round(stat.size / 1024.0, 1),
                "count": stat.count,
            })
        self._alloc_samples.append({
            "step": int(step),
            "current_kb": round(current / 1024.0, 1),
            "peak_kb": round(peak / 1024.0, 1),
            "top": top,
        })

    @property
    def allocation_samples(self) -> List[dict]:
        return list(self._alloc_samples)

    # -- export --------------------------------------------------------------

    def total_phase_seconds(self) -> float:
        return sum(stat.wall for stat in self._phases.values())

    def hotspot_table(self) -> List[dict]:
        """Aggregate site rows sorted by wall time (descending).

        ``share`` is each site's fraction of the total phase wall time
        (falling back to total site time when no phases were recorded).
        """
        denom = self.total_phase_seconds()
        if denom <= 0.0:
            denom = sum(stat.wall for stat in self._sites.values())
        rows = []
        for (phase, subsystem, site), stat in self._sites.items():
            row = {"phase": phase, "subsystem": subsystem, "site": site}
            row.update(stat.to_dict())
            row["share"] = stat.wall / denom if denom > 0 else 0.0
            rows.append(row)
        rows.sort(key=lambda r: (-r["wall_seconds"], r["phase"],
                                 r["subsystem"], r["site"]))
        return rows

    def phase_table(self) -> List[dict]:
        rows = []
        for phase, stat in sorted(self._phases.items()):
            row = {"phase": phase}
            row.update(stat.to_dict())
            rows.append(row)
        return rows

    def to_json(self) -> dict:
        return {
            "config": {name: getattr(self, name)
                       for name in self._CONFIG_ATTRS},
            "steps_observed": self._steps_observed,
            "total_phase_seconds": self.total_phase_seconds(),
            "phases": self.phase_table(),
            "hotspots": self.hotspot_table(),
            "recent_steps": list(self._steps),
            "allocations": self.allocation_samples,
        }

    def write_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")

    def collapsed_stacks(self) -> List[str]:
        """Flamegraph-compatible collapsed stacks.

        One line per frame path, ``frame;frame;... <value>``, value in
        integer microseconds.  Phase frames carry their *self* time
        (phase total minus the site time attributed inside them) so the
        stack totals add up; per-edge attribution appears as a child
        frame of its site.
        """
        lines: List[str] = []
        site_by_phase: Dict[str, float] = {}
        for (phase, subsystem, site), stat in sorted(self._sites.items()):
            site_by_phase[phase] = site_by_phase.get(phase, 0.0) + stat.wall
            base = f"run;{phase};{subsystem};{site}"
            if stat.per_edge:
                attributed = 0.0
                for edge, wall in sorted(stat.per_edge.items()):
                    lines.append(f"{base};edge_{edge} {int(wall * 1e6)}")
                    attributed += wall
                rest = stat.wall - attributed
                if rest > 0:
                    lines.append(f"{base} {int(rest * 1e6)}")
            else:
                lines.append(f"{base} {int(stat.wall * 1e6)}")
        for phase, stat in sorted(self._phases.items()):
            self_wall = stat.wall - site_by_phase.get(phase, 0.0)
            if self_wall > 0:
                lines.append(f"run;{phase} {int(self_wall * 1e6)}")
        return lines

    def write_collapsed(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = "\n".join(self.collapsed_stacks())
        path.write_text(text + ("\n" if text else ""))

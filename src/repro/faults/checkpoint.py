"""Checkpoint/resume for :class:`repro.hfl.trainer.HFLTrainer`.

A :class:`TrainerCheckpoint` captures everything the trainer mutates
over a run — edge and cloud models, the last successfully synced edge
models (the sync-failure fallback), the sampler's learned state, the
telemetry stream, the training history and counters — at a step
boundary.  Because every random draw in the engine comes from a named
stream keyed by ``(step, edge, device)`` (never from a stateful
cursor), restoring this snapshot and continuing at step ``k`` replays
the exact byte-for-byte history an uninterrupted run would have
produced; ``tests/faults/test_checkpoint.py`` asserts it.

Serialization goes through :mod:`repro.utils.serialization`'s tagged
JSON (:func:`~repro.utils.serialization.to_jsonable`), which
round-trips float64 arrays exactly.

Models are checkpointed only as flat parameter vectors — never as
layer objects — so the codec is independent of how a live
:class:`~repro.nn.model.Model` stores parameters.  With the
flat-buffer aliasing redesign this stays true in both directions:
``edge_models`` / ``cloud_model`` are standalone arrays (copies of the
canonical buffer, not views into it), and restoring installs them via
``load_flat``-style copies, so a resumed trainer re-aliases its own
fresh buffer.  Resume bit-equality additionally relies on the
experience tracker computing buffer averages over the *full* restored
buffer (see :class:`repro.core.experience.ExperienceTracker`), never
from incrementally accumulated partial sums.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.utils.serialization import (
    from_jsonable,
    save_json,
    to_jsonable,
)

#: Format marker so future layout changes can be detected on load.
#: v2 (the topology layer) added the ``topology_name`` /
#: ``aggregation_name`` run fingerprints and the ``topology_state``
#: snapshot.  v3 (the open-population layer) added the ``churn_state``
#: snapshot, the ``stale_buffer`` of parked late uploads, the
#: ``robustness_counters`` and a SHA-256 ``payload_sha256`` integrity
#: checksum.  v1/v2 checkpoints still load, defaulting to a closed
#: population with an empty staleness buffer.
CHECKPOINT_VERSION = 3

#: Older formats :meth:`TrainerCheckpoint.from_dict` can still read.
LEGACY_CHECKPOINT_VERSIONS = (1, 2)


class CheckpointIntegrityError(ValueError):
    """A checkpoint file is unreadable, truncated or fails its checksum."""


def _payload_checksum(payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of ``payload`` minus the checksum.

    Canonical form (sorted keys, no whitespace) makes the digest
    independent of dict insertion order and of how the file was
    pretty-printed, so a checkpoint survives a re-serialization but
    never a flipped bit in its data.
    """
    body = {k: v for k, v in payload.items() if k != "payload_sha256"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class TrainerCheckpoint:
    """One resumable snapshot of an HFL run at a step boundary.

    ``step`` counts *completed* steps: resuming continues at ``t =
    step``.  ``master_seed`` and ``sampler_name`` fingerprint the run so
    a checkpoint cannot silently resume a different experiment.
    """

    step: int
    master_seed: int
    sampler_name: str
    edge_models: List[np.ndarray]
    cloud_model: np.ndarray
    last_synced_edge_models: List[np.ndarray]
    sampler_state: Dict[str, Any]
    history_steps: List[int]
    history_accuracy: List[float]
    history_loss: List[float]
    participation_counts: np.ndarray
    total_participants: int
    reached_target_at: Optional[int] = None
    telemetry_state: Optional[Dict[str, Any]] = None
    topology_name: str = "hierarchical"
    aggregation_name: str = "ipw"
    topology_state: Dict[str, Any] = field(default_factory=dict)
    #: Open-population snapshot (``None`` for a closed-world run).
    churn_state: Optional[Dict[str, Any]] = None
    #: Parked late uploads awaiting admission (see DESIGN.md §13).
    stale_buffer: List[Dict[str, Any]] = field(default_factory=list)
    #: Robustness accounting the trainer surfaces in its result
    #: (simulated backoff, late admits/drops, churn totals).
    robustness_counters: Dict[str, Any] = field(default_factory=dict)
    #: Adaptive-evaluation cursor (``None`` for fixed cadence or for
    #: checkpoints that predate it): next due step, current interval,
    #: and the accuracy of the previous evaluation.
    eval_state: Optional[Dict[str, Any]] = None
    version: int = CHECKPOINT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Encode into a JSON-safe dict (arrays tagged for exactness).

        The returned payload carries a ``payload_sha256`` checksum over
        its canonical JSON, so :meth:`from_dict` detects any on-disk
        corruption that still parses as JSON.
        """
        payload = to_jsonable(
            {
                "version": self.version,
                "step": self.step,
                "master_seed": self.master_seed,
                "sampler_name": self.sampler_name,
                "edge_models": self.edge_models,
                "cloud_model": self.cloud_model,
                "last_synced_edge_models": self.last_synced_edge_models,
                "sampler_state": self.sampler_state,
                "history_steps": self.history_steps,
                "history_accuracy": self.history_accuracy,
                "history_loss": self.history_loss,
                "participation_counts": self.participation_counts,
                "total_participants": self.total_participants,
                "reached_target_at": self.reached_target_at,
                "telemetry_state": self.telemetry_state,
                "topology_name": self.topology_name,
                "aggregation_name": self.aggregation_name,
                "topology_state": self.topology_state,
                "churn_state": self.churn_state,
                "stale_buffer": self.stale_buffer,
                "robustness_counters": self.robustness_counters,
                "eval_state": self.eval_state,
            }
        )
        payload["payload_sha256"] = _payload_checksum(payload)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrainerCheckpoint":
        """Rebuild from :meth:`to_dict` output."""
        required = {
            "step",
            "master_seed",
            "sampler_name",
            "edge_models",
            "cloud_model",
            "last_synced_edge_models",
            "sampler_state",
        }
        missing = required - set(payload)
        if missing:
            raise ValueError(f"checkpoint missing keys: {sorted(missing)}")
        version = int(payload.get("version", CHECKPOINT_VERSION))
        if version != CHECKPOINT_VERSION and version not in LEGACY_CHECKPOINT_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(expected {CHECKPOINT_VERSION} or a legacy version in "
                f"{LEGACY_CHECKPOINT_VERSIONS})"
            )
        stored_checksum = payload.get("payload_sha256")
        if stored_checksum is not None:
            actual = _payload_checksum(payload)
            if actual != stored_checksum:
                raise CheckpointIntegrityError(
                    "checkpoint payload fails its SHA-256 checksum "
                    f"(stored {stored_checksum[:12]}…, recomputed "
                    f"{actual[:12]}…) — the file was corrupted after it "
                    "was written"
                )
        decoded = from_jsonable(payload)
        return cls(
            step=int(decoded["step"]),
            master_seed=int(decoded["master_seed"]),
            sampler_name=str(decoded["sampler_name"]),
            edge_models=[np.asarray(m, dtype=float) for m in decoded["edge_models"]],
            cloud_model=np.asarray(decoded["cloud_model"], dtype=float),
            last_synced_edge_models=[
                np.asarray(m, dtype=float)
                for m in decoded["last_synced_edge_models"]
            ],
            sampler_state=dict(decoded["sampler_state"]),
            history_steps=[int(s) for s in decoded.get("history_steps", [])],
            history_accuracy=list(decoded.get("history_accuracy", [])),
            history_loss=list(decoded.get("history_loss", [])),
            participation_counts=np.asarray(
                decoded.get("participation_counts", []), dtype=int
            ),
            total_participants=int(decoded.get("total_participants", 0)),
            reached_target_at=decoded.get("reached_target_at"),
            telemetry_state=decoded.get("telemetry_state"),
            # v1 checkpoints predate the topology layer; every such run
            # used the hierarchical + ipw pair implicitly.
            topology_name=str(decoded.get("topology_name", "hierarchical")),
            aggregation_name=str(decoded.get("aggregation_name", "ipw")),
            topology_state=dict(decoded.get("topology_state") or {}),
            # v1/v2 checkpoints predate the open-population layer; every
            # such run was a closed world with no staleness buffer.
            churn_state=decoded.get("churn_state"),
            stale_buffer=list(decoded.get("stale_buffer") or []),
            robustness_counters=dict(decoded.get("robustness_counters") or {}),
            # Pre-adaptive-cadence checkpoints carry no eval cursor; the
            # trainer re-derives one from the restored history.
            eval_state=decoded.get("eval_state"),
            # Loads normalize to the current version: re-saving a
            # legacy checkpoint writes the v3 layout.
            version=CHECKPOINT_VERSION,
        )

    @staticmethod
    def previous_path(path: Union[str, Path]) -> Path:
        """Where :meth:`save` rotates the previously saved checkpoint."""
        path = Path(path)
        return path.with_name(path.name + ".prev")

    def save(self, path: Union[str, Path]) -> Path:
        """Write the checkpoint atomically (write-then-rename).

        A crash mid-write must never leave a truncated checkpoint where
        a resumable one used to be.  An existing checkpoint at ``path``
        is rotated to ``<name>.prev`` first, so even post-write
        corruption of the newest file (bad disk, concurrent truncation)
        leaves one older resumable snapshot behind —
        :meth:`load_with_fallback` picks it up.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        save_json(self.to_dict(), tmp)
        if path.exists():
            path.replace(self.previous_path(path))
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrainerCheckpoint":
        """Read a checkpoint written by :meth:`save`.

        Raises :class:`CheckpointIntegrityError` (naming the file) when
        the file is truncated, not valid JSON, not a checkpoint object,
        or fails its payload checksum — distinct from
        :class:`FileNotFoundError` so callers can fall back to the
        rotated copy only on integrity failures they can explain.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no checkpoint at {path}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointIntegrityError(
                f"checkpoint at {path} is truncated or not valid JSON "
                f"({exc})"
            ) from None
        if not isinstance(payload, dict):
            raise CheckpointIntegrityError(
                f"checkpoint at {path} is valid JSON but not a checkpoint "
                f"object (top-level {type(payload).__name__})"
            )
        try:
            return cls.from_dict(payload)
        except CheckpointIntegrityError as exc:
            raise CheckpointIntegrityError(
                f"checkpoint at {path}: {exc}"
            ) from None

    @classmethod
    def load_with_fallback(
        cls, path: Union[str, Path]
    ) -> Tuple["TrainerCheckpoint", Path]:
        """Load ``path``, falling back to its rotated ``.prev`` copy.

        Returns ``(checkpoint, path_actually_loaded)``.  The fallback
        fires when the primary file is missing, truncated or fails its
        checksum; if the rotated copy is no better, the *primary* error
        propagates (it names the file the caller asked for).
        """
        path = Path(path)
        try:
            return cls.load(path), path
        except (FileNotFoundError, CheckpointIntegrityError) as primary:
            prev = cls.previous_path(path)
            try:
                return cls.load(prev), prev
            except (FileNotFoundError, CheckpointIntegrityError):
                raise primary from None

"""Checkpoint/resume for :class:`repro.hfl.trainer.HFLTrainer`.

A :class:`TrainerCheckpoint` captures everything the trainer mutates
over a run — edge and cloud models, the last successfully synced edge
models (the sync-failure fallback), the sampler's learned state, the
telemetry stream, the training history and counters — at a step
boundary.  Because every random draw in the engine comes from a named
stream keyed by ``(step, edge, device)`` (never from a stateful
cursor), restoring this snapshot and continuing at step ``k`` replays
the exact byte-for-byte history an uninterrupted run would have
produced; ``tests/faults/test_checkpoint.py`` asserts it.

Serialization goes through :mod:`repro.utils.serialization`'s tagged
JSON (:func:`~repro.utils.serialization.to_jsonable`), which
round-trips float64 arrays exactly.

Models are checkpointed only as flat parameter vectors — never as
layer objects — so the codec is independent of how a live
:class:`~repro.nn.model.Model` stores parameters.  With the
flat-buffer aliasing redesign this stays true in both directions:
``edge_models`` / ``cloud_model`` are standalone arrays (copies of the
canonical buffer, not views into it), and restoring installs them via
``load_flat``-style copies, so a resumed trainer re-aliases its own
fresh buffer.  Resume bit-equality additionally relies on the
experience tracker computing buffer averages over the *full* restored
buffer (see :class:`repro.core.experience.ExperienceTracker`), never
from incrementally accumulated partial sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.utils.serialization import (
    from_jsonable,
    load_json,
    save_json,
    to_jsonable,
)

#: Format marker so future layout changes can be detected on load.
#: v2 (the topology layer) added the ``topology_name`` /
#: ``aggregation_name`` run fingerprints and the ``topology_state``
#: snapshot; v1 checkpoints still load, defaulting to the hierarchical
#: + ipw pair every pre-topology run implicitly used.
CHECKPOINT_VERSION = 2

#: Older formats :meth:`TrainerCheckpoint.from_dict` can still read.
LEGACY_CHECKPOINT_VERSIONS = (1,)


@dataclass
class TrainerCheckpoint:
    """One resumable snapshot of an HFL run at a step boundary.

    ``step`` counts *completed* steps: resuming continues at ``t =
    step``.  ``master_seed`` and ``sampler_name`` fingerprint the run so
    a checkpoint cannot silently resume a different experiment.
    """

    step: int
    master_seed: int
    sampler_name: str
    edge_models: List[np.ndarray]
    cloud_model: np.ndarray
    last_synced_edge_models: List[np.ndarray]
    sampler_state: Dict[str, Any]
    history_steps: List[int]
    history_accuracy: List[float]
    history_loss: List[float]
    participation_counts: np.ndarray
    total_participants: int
    reached_target_at: Optional[int] = None
    telemetry_state: Optional[Dict[str, Any]] = None
    topology_name: str = "hierarchical"
    aggregation_name: str = "ipw"
    topology_state: Dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Encode into a JSON-safe dict (arrays tagged for exactness)."""
        return to_jsonable(
            {
                "version": self.version,
                "step": self.step,
                "master_seed": self.master_seed,
                "sampler_name": self.sampler_name,
                "edge_models": self.edge_models,
                "cloud_model": self.cloud_model,
                "last_synced_edge_models": self.last_synced_edge_models,
                "sampler_state": self.sampler_state,
                "history_steps": self.history_steps,
                "history_accuracy": self.history_accuracy,
                "history_loss": self.history_loss,
                "participation_counts": self.participation_counts,
                "total_participants": self.total_participants,
                "reached_target_at": self.reached_target_at,
                "telemetry_state": self.telemetry_state,
                "topology_name": self.topology_name,
                "aggregation_name": self.aggregation_name,
                "topology_state": self.topology_state,
            }
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrainerCheckpoint":
        """Rebuild from :meth:`to_dict` output."""
        required = {
            "step",
            "master_seed",
            "sampler_name",
            "edge_models",
            "cloud_model",
            "last_synced_edge_models",
            "sampler_state",
        }
        missing = required - set(payload)
        if missing:
            raise ValueError(f"checkpoint missing keys: {sorted(missing)}")
        version = int(payload.get("version", CHECKPOINT_VERSION))
        if version != CHECKPOINT_VERSION and version not in LEGACY_CHECKPOINT_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(expected {CHECKPOINT_VERSION} or a legacy version in "
                f"{LEGACY_CHECKPOINT_VERSIONS})"
            )
        decoded = from_jsonable(payload)
        return cls(
            step=int(decoded["step"]),
            master_seed=int(decoded["master_seed"]),
            sampler_name=str(decoded["sampler_name"]),
            edge_models=[np.asarray(m, dtype=float) for m in decoded["edge_models"]],
            cloud_model=np.asarray(decoded["cloud_model"], dtype=float),
            last_synced_edge_models=[
                np.asarray(m, dtype=float)
                for m in decoded["last_synced_edge_models"]
            ],
            sampler_state=dict(decoded["sampler_state"]),
            history_steps=[int(s) for s in decoded.get("history_steps", [])],
            history_accuracy=list(decoded.get("history_accuracy", [])),
            history_loss=list(decoded.get("history_loss", [])),
            participation_counts=np.asarray(
                decoded.get("participation_counts", []), dtype=int
            ),
            total_participants=int(decoded.get("total_participants", 0)),
            reached_target_at=decoded.get("reached_target_at"),
            telemetry_state=decoded.get("telemetry_state"),
            # v1 checkpoints predate the topology layer; every such run
            # used the hierarchical + ipw pair implicitly.
            topology_name=str(decoded.get("topology_name", "hierarchical")),
            aggregation_name=str(decoded.get("aggregation_name", "ipw")),
            topology_state=dict(decoded.get("topology_state") or {}),
            # Loads normalize to the current version: re-saving a
            # legacy checkpoint writes the v2 layout.
            version=CHECKPOINT_VERSION,
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the checkpoint atomically (write-then-rename).

        A crash mid-write must never leave a truncated checkpoint where
        a resumable one used to be.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        save_json(self.to_dict(), tmp)
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrainerCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no checkpoint at {path}")
        return cls.from_dict(load_json(path))

"""Seeded fault injection for the HFL engine.

A :class:`FaultModel` is consulted by :class:`repro.hfl.trainer
.HFLTrainer` during the *finish* phase of every round (upload faults)
and at every edge→cloud communication step (sync faults).  All fault
decisions are made trainer-side, after the executor barrier, so the
:mod:`repro.runtime` backends never see faults and their bit-identical
determinism contract is untouched.

Determinism contract: every draw of :class:`SeededFaultModel` comes
from a :class:`~repro.utils.rng.SeedSequenceFactory` named stream keyed
by ``(step, edge, device)`` (plus the fault kind), derived from a child
factory of the trainer's master seed.  Decisions therefore depend only
on the master seed and the fault profile — never on executor backend,
worker count or completion order — and serial/thread/process runs stay
bit-identical under any profile.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.profile import FaultProfile
from repro.hfl.latency import LatencySimulator
from repro.utils.rng import SeedSequenceFactory


@dataclass(frozen=True)
class SyncOutcome:
    """Result of one edge's edge→cloud aggregation attempt sequence."""

    #: Attempts that failed before success (or before giving up).
    failed_attempts: int
    #: Whether an attempt eventually succeeded within the retry budget.
    success: bool
    #: Total simulated exponential-backoff wait across the failures.
    backoff_seconds: float


class FaultModel(ABC):
    """Decides, per round, which uploads fail and which syncs fail."""

    name: str = "faults"

    def describe(self) -> dict:
        """JSON-compatible description for the run manifest.

        The observability event log records this in its header so an
        archived run is self-describing: which fault model ran, with
        which knobs.  Subclasses should extend the base payload.
        """
        return {"name": self.name}

    def bind(self, num_devices: int, seeds: SeedSequenceFactory) -> None:
        """Attach the population size and the trainer's seed factory.

        Called once by the trainer before training (and again on
        resume); implementations must derive all randomness from
        ``seeds`` to preserve the determinism contract.
        """

    @abstractmethod
    def upload_fault(
        self,
        step: int,
        edge: int,
        device: int,
        departed: bool,
        num_concurrent: int,
    ) -> Optional[str]:
        """Fault kind lost in transit, or ``None`` when the upload lands.

        ``departed`` flags a device that was inside the edge at the plan
        phase but outside it at the finish phase (mobility-coupled
        departure); ``num_concurrent`` is the round's participant count
        (sharing the uplink, for the straggler deadline).
        """

    @abstractmethod
    def corrupt_payload(
        self, step: int, edge: int, device: int, payload: np.ndarray
    ) -> Optional[np.ndarray]:
        """A corrupted copy of ``payload``, or ``None`` when intact."""

    @abstractmethod
    def sync_outcome(self, step: int, edge: int) -> SyncOutcome:
        """Outcome of the edge→cloud attempt sequence at a sync step."""


class SeededFaultModel(FaultModel):
    """The reference implementation: profile rates, named-stream draws."""

    name = "seeded"

    def __init__(self, profile: FaultProfile) -> None:
        if not isinstance(profile, FaultProfile):
            raise TypeError(
                f"expected FaultProfile, got {type(profile).__name__}"
            )
        self.profile = profile
        self._seeds: Optional[SeedSequenceFactory] = None
        self._latency: Optional[LatencySimulator] = None

    def describe(self) -> dict:
        from dataclasses import asdict

        return {"name": self.name, "profile": asdict(self.profile)}

    def bind(self, num_devices: int, seeds: SeedSequenceFactory) -> None:
        # A child factory keeps fault streams disjoint from every engine
        # stream (participation draws, work items, probes) by construction.
        self._seeds = seeds.child("faults")
        if self.profile.straggler_deadline_seconds is not None:
            self._latency = LatencySimulator(
                num_devices,
                self.profile.latency,
                rng=self._seeds.generator("device-speeds"),
            )

    def _rng(self, step: int, edge: int, role: str) -> np.random.Generator:
        if self._seeds is None:
            raise RuntimeError("bind() must be called before drawing faults")
        return self._seeds.round_generator(step, edge, role)

    # -- upload-phase faults -------------------------------------------------

    def upload_fault(
        self,
        step: int,
        edge: int,
        device: int,
        departed: bool,
        num_concurrent: int,
    ) -> Optional[str]:
        profile = self.profile
        if departed and profile.mobility_departure_rate > 0:
            rng = self._rng(step, edge, f"fault/departure/{device}")
            if rng.random() < profile.mobility_departure_rate:
                return "departure"
        if profile.dropout_rate > 0:
            rng = self._rng(step, edge, f"fault/dropout/{device}")
            if rng.random() < profile.dropout_rate:
                return "departure"
        if self._is_straggler(step, edge, device, num_concurrent):
            return "straggler"
        return None

    def _is_straggler(
        self, step: int, edge: int, device: int, num_concurrent: int
    ) -> bool:
        deadline = self.profile.straggler_deadline_seconds
        if deadline is None or self._latency is None:
            return False
        jitter = 1.0
        if self.profile.straggler_jitter_sigma > 0:
            rng = self._rng(step, edge, f"fault/straggler/{device}")
            jitter = rng.lognormal(0.0, self.profile.straggler_jitter_sigma)
        elapsed = self._latency.compute_seconds(device) * jitter
        elapsed += self._latency.upload_seconds(max(num_concurrent, 1))
        return elapsed > deadline

    def corrupt_payload(
        self, step: int, edge: int, device: int, payload: np.ndarray
    ) -> Optional[np.ndarray]:
        if self.profile.corruption_rate <= 0:
            return None
        rng = self._rng(step, edge, f"fault/corruption/{device}")
        if rng.random() >= self.profile.corruption_rate:
            return None
        corrupted = np.array(payload, dtype=float, copy=True)
        # Flip a sparse set of coordinates to NaN/±Inf — one bad burst,
        # not a fully garbled payload, the harder case for detection.
        num_bad = max(1, corrupted.size // 1024)
        positions = rng.integers(0, corrupted.size, size=num_bad)
        values = rng.choice([np.nan, np.inf, -np.inf], size=num_bad)
        corrupted[positions] = values
        return corrupted

    # -- sync-phase faults ---------------------------------------------------

    def sync_outcome(self, step: int, edge: int) -> SyncOutcome:
        profile = self.profile
        if profile.sync_failure_rate <= 0:
            return SyncOutcome(failed_attempts=0, success=True, backoff_seconds=0.0)
        rng = self._rng(step, edge, "fault/sync")
        # One initial attempt plus the bounded retries; a single vector
        # draw keeps the stream consumption independent of the outcome.
        draws = rng.random(profile.max_sync_retries + 1)
        failed = 0
        for d in draws:
            if d < profile.sync_failure_rate:
                failed += 1
            else:
                break
        success = failed <= profile.max_sync_retries
        return SyncOutcome(
            failed_attempts=failed,
            success=success,
            backoff_seconds=profile.backoff_seconds(failed),
        )


def make_fault_model(
    profile: "Optional[FaultProfile]",
) -> Optional[FaultModel]:
    """A :class:`SeededFaultModel` for an active profile, else ``None``."""
    if profile is None or not profile.active:
        return None
    return SeededFaultModel(profile)

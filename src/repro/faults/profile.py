"""Fault profiles: the configurable failure surface of an HFL run.

The paper's premise is that devices are mobile and unreliable — they
wander out of edge coverage mid-round and their uploads cannot be
assumed.  A :class:`FaultProfile` bundles the rates of the four fault
types the engine injects (see :mod:`repro.faults.model`):

- **departure** — a sampled device leaves before its upload lands,
  either at random (``dropout_rate``) or coupled to the mobility trace
  (``mobility_departure_rate``: the device is inside the edge at the
  plan phase but outside it by the finish phase);
- **straggler** — the device's simulated compute + upload time (from
  :class:`repro.hfl.latency.LatencySimulator`) exceeds the per-round
  deadline;
- **corruption** — the upload arrives with NaN/Inf injected into the
  flat parameter vector (a lossy link / faulty device);
- **sync failure** — one edge→cloud aggregation attempt fails; the
  trainer retries with bounded exponential backoff and falls back to
  the edge's last successfully synced model when all retries fail.

Profiles are frozen and hashable so they can ride inside scenario
configurations; :func:`resolve_fault_profile` parses the CLI string
form (a preset name, ``key=value`` pairs, or both).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.hfl.latency import LatencyConfig
from repro.utils.validation import check_fraction, check_positive

#: The canonical fault kind labels used in telemetry and reports.
FAULT_KINDS = ("departure", "straggler", "corruption", "sync_failure")


@dataclass(frozen=True)
class FaultProfile:
    """Rates and knobs of the four seeded fault types.

    The default profile is the perfect world (all rates zero, no
    deadline) — constructing a trainer with it is exactly equivalent to
    passing no profile at all.
    """

    #: Probability a sampled device's upload is lost at random.
    dropout_rate: float = 0.0
    #: Probability the upload is lost when the device left the edge's
    #: coverage between the plan and finish phases (mobility-coupled).
    mobility_departure_rate: float = 0.0
    #: Per-round deadline in simulated seconds; ``None`` disables
    #: straggler timeouts.
    straggler_deadline_seconds: Optional[float] = None
    #: Lognormal sigma of the per-round compute-time jitter.
    straggler_jitter_sigma: float = 0.5
    #: Latency model driving compute/upload times for the deadline.
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    #: Probability an upload arrives with NaN/Inf injected.
    corruption_rate: float = 0.0
    #: Probability one edge→cloud aggregation attempt fails.
    sync_failure_rate: float = 0.0
    #: Retries after the first failed edge→cloud attempt.
    max_sync_retries: int = 3
    #: First-retry backoff; attempt ``i`` waits ``base * 2**i`` seconds.
    backoff_base_seconds: float = 0.5
    #: Cap on any single backoff wait.
    backoff_cap_seconds: float = 8.0

    def __post_init__(self) -> None:
        check_fraction("dropout_rate", self.dropout_rate)
        check_fraction("mobility_departure_rate", self.mobility_departure_rate)
        check_fraction("corruption_rate", self.corruption_rate)
        check_fraction("sync_failure_rate", self.sync_failure_rate)
        if self.straggler_deadline_seconds is not None:
            check_positive(
                "straggler_deadline_seconds", self.straggler_deadline_seconds
            )
        if self.straggler_jitter_sigma < 0:
            raise ValueError(
                f"straggler_jitter_sigma must be >= 0, got "
                f"{self.straggler_jitter_sigma}"
            )
        if self.max_sync_retries < 0:
            raise ValueError(
                f"max_sync_retries must be >= 0, got {self.max_sync_retries}"
            )
        check_positive("backoff_base_seconds", self.backoff_base_seconds)
        check_positive("backoff_cap_seconds", self.backoff_cap_seconds)

    @property
    def active(self) -> bool:
        """Whether any fault type can actually fire under this profile."""
        return (
            self.dropout_rate > 0
            or self.mobility_departure_rate > 0
            or self.straggler_deadline_seconds is not None
            or self.corruption_rate > 0
            or self.sync_failure_rate > 0
        )

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Total simulated backoff after ``failed_attempts`` failures."""
        if failed_attempts < 0:
            raise ValueError(
                f"failed_attempts must be >= 0, got {failed_attempts}"
            )
        return sum(
            min(self.backoff_base_seconds * 2**i, self.backoff_cap_seconds)
            for i in range(failed_attempts)
        )

    def with_overrides(self, **kwargs) -> "FaultProfile":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Named profiles for the CLI and benchmarks.  "severe" enables every
#: fault type at rates high enough that a short smoke run exercises all
#: of them.
FAULT_PRESETS: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "mild": FaultProfile(
        dropout_rate=0.05,
        mobility_departure_rate=0.25,
        corruption_rate=0.01,
        sync_failure_rate=0.05,
    ),
    "moderate": FaultProfile(
        dropout_rate=0.10,
        mobility_departure_rate=0.50,
        straggler_deadline_seconds=6.0,
        corruption_rate=0.02,
        sync_failure_rate=0.10,
    ),
    "severe": FaultProfile(
        dropout_rate=0.25,
        mobility_departure_rate=1.0,
        straggler_deadline_seconds=3.0,
        corruption_rate=0.05,
        sync_failure_rate=0.25,
        max_sync_retries=2,
    ),
}

#: ``key=value`` spellings accepted by :func:`resolve_fault_profile`.
_SPEC_KEYS = {
    "dropout": ("dropout_rate", float),
    "mobility": ("mobility_departure_rate", float),
    "deadline": ("straggler_deadline_seconds", float),
    "jitter": ("straggler_jitter_sigma", float),
    "corruption": ("corruption_rate", float),
    "sync_failure": ("sync_failure_rate", float),
    "max_sync_retries": ("max_sync_retries", int),
}


def resolve_fault_profile(
    spec: "Optional[str | FaultProfile]",
) -> Optional[FaultProfile]:
    """Turn a CLI/scenario fault spec into a profile (``None`` stays ``None``).

    Accepts a ready :class:`FaultProfile`, a preset name (``"mild"``),
    ``key=value`` pairs (``"dropout=0.2,corruption=0.05"``) or a preset
    followed by overrides (``"severe,deadline=2.0"``).  Keys:
    ``dropout``, ``mobility``, ``deadline``, ``jitter``, ``corruption``,
    ``sync_failure``, ``max_sync_retries``.
    """
    if spec is None or isinstance(spec, FaultProfile):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"fault profile must be a string or FaultProfile, got {type(spec).__name__}"
        )
    profile = FaultProfile()
    overrides = {}
    for i, token in enumerate(t.strip() for t in spec.split(",") if t.strip()):
        if "=" not in token:
            if i != 0:
                raise ValueError(
                    f"preset name must come first in fault spec {spec!r}"
                )
            if token not in FAULT_PRESETS:
                raise ValueError(
                    f"unknown fault preset {token!r}; choose from "
                    f"{sorted(FAULT_PRESETS)}"
                )
            profile = FAULT_PRESETS[token]
            continue
        key, _, value = token.partition("=")
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown fault spec key {key!r}; choose from "
                f"{sorted(_SPEC_KEYS)}"
            )
        field_name, cast = _SPEC_KEYS[key]
        overrides[field_name] = cast(value)
    return profile.with_overrides(**overrides) if overrides else profile

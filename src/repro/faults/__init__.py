"""Deterministic fault injection, degradation and checkpointing.

The robustness layer of the engine: :class:`FaultProfile` configures
four seeded fault types (mobility-coupled departure, straggler timeout,
payload corruption, edge→cloud sync failure), :class:`SeededFaultModel`
draws them from named ``(step, edge, device)`` streams so every
executor backend stays bit-identical, and :class:`TrainerCheckpoint`
makes long runs resumable with exact-history replay.  See DESIGN.md §8.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    LEGACY_CHECKPOINT_VERSIONS,
    CheckpointIntegrityError,
    TrainerCheckpoint,
)
from repro.faults.model import (
    FaultModel,
    SeededFaultModel,
    SyncOutcome,
    make_fault_model,
)
from repro.faults.profile import (
    FAULT_KINDS,
    FAULT_PRESETS,
    FaultProfile,
    resolve_fault_profile,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "LEGACY_CHECKPOINT_VERSIONS",
    "CheckpointIntegrityError",
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "FaultModel",
    "FaultProfile",
    "SeededFaultModel",
    "SyncOutcome",
    "TrainerCheckpoint",
    "make_fault_model",
    "resolve_fault_profile",
]

"""Deterministic random-number management for reproducible simulations.

Every stochastic component in the library (data synthesis, Non-IID
partitioning, mobility traces, device sampling, SGD minibatching) draws
from an explicit :class:`numpy.random.Generator`.  Components never touch
the global numpy RNG; instead a :class:`SeedSequenceFactory` derives
independent child streams by name, so adding a new consumer never
perturbs the random stream of an existing one.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned as-is), a
    ``SeedSequence``, or ``None`` (fresh OS-entropy generator).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


class SeedSequenceFactory:
    """Derive named, independent random streams from one master seed.

    The factory hashes the requested stream name into ``spawn_key``
    material so that the stream for a given ``(master_seed, name)`` pair
    is stable across runs and across call order.

    Example
    -------
    >>> factory = SeedSequenceFactory(42)
    >>> data_rng = factory.generator("data")
    >>> mobility_rng = factory.generator("mobility")
    >>> factory.generator("data").normal() == data_rng.normal()
    True
    """

    def __init__(self, master_seed: Optional[int] = 0) -> None:
        if master_seed is not None and master_seed < 0:
            raise ValueError(f"master_seed must be non-negative, got {master_seed}")
        self.master_seed = master_seed

    def _name_key(self, name: str) -> int:
        # Stable, platform-independent 63-bit hash of the stream name.
        key = 0
        for ch in name:
            key = (key * 1000003 + ord(ch)) % (2**63 - 1)
        return key

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """Return the :class:`SeedSequence` for stream ``name``."""
        return np.random.SeedSequence(
            entropy=self.master_seed, spawn_key=(self._name_key(name),)
        )

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (stable per name)."""
        return np.random.default_rng(self.seed_sequence(name))

    # ---- work-item streams (parallel execution) ----------------------------

    @staticmethod
    def work_item_name(step: int, edge: int, device: int) -> str:
        """Canonical stream name of one ``(step, edge, device)`` work item."""
        if step < 0 or edge < 0 or device < 0:
            raise ValueError(
                f"work item coordinates must be non-negative, got "
                f"({step}, {edge}, {device})"
            )
        return f"step/{step}/edge/{edge}/device/{device}"

    def work_item_sequence(
        self, step: int, edge: int, device: int
    ) -> np.random.SeedSequence:
        """Seed sequence of the ``(step, edge, device)`` local-update stream.

        Parallel executors derive every work item's randomness from this
        stream, so the minibatch draws of a device's local update depend
        only on ``(master_seed, step, edge, device)`` — never on which
        worker ran the item or in what order items completed.  Serial
        and parallel runs therefore produce bit-identical histories.
        """
        return self.seed_sequence(self.work_item_name(step, edge, device))

    def work_item_generator(
        self, step: int, edge: int, device: int
    ) -> np.random.Generator:
        """Fresh generator for the ``(step, edge, device)`` work item."""
        return np.random.default_rng(self.work_item_sequence(step, edge, device))

    def round_generator(self, step: int, edge: int, role: str) -> np.random.Generator:
        """Per-``(step, edge)`` engine stream (e.g. participation draws).

        ``role`` namespaces independent per-round decisions — the
        trainer uses ``"participation"`` for the Bernoulli indicator
        draws and ``"probe/<m>"`` for MACH-P oracle probes — so each is
        order-independent like the work-item streams.
        """
        if step < 0 or edge < 0:
            raise ValueError(
                f"round coordinates must be non-negative, got ({step}, {edge})"
            )
        return self.generator(f"step/{step}/edge/{edge}/{role}")

    def child(self, name: str) -> "SeedSequenceFactory":
        """Derive a sub-factory whose streams are independent of the parent's."""
        return SeedSequenceFactory(self._name_key(name) ^ (self.master_seed or 0))

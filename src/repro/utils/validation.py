"""Input-validation helpers raising uniform, informative errors."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_probability_vector(
    name: str, probs: np.ndarray, total: float = None, atol: float = 1e-8
) -> np.ndarray:
    """Validate that every entry of ``probs`` is in [0, 1].

    If ``total`` is given, additionally require ``probs.sum()`` to be
    within ``atol`` of it.
    """
    probs = np.asarray(probs, dtype=float)
    if probs.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {probs.shape}")
    if np.any(probs < -atol) or np.any(probs > 1 + atol):
        raise ValueError(f"{name} entries must be in [0, 1], got {probs!r}")
    if total is not None and not np.isclose(probs.sum(), total, atol=atol):
        raise ValueError(
            f"{name} must sum to {total}, got {probs.sum()!r}"
        )
    return probs


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Validate that ``array`` has exactly the expected ``shape``."""
    array = np.asarray(array)
    if array.shape != tuple(shape):
        raise ValueError(f"{name} must have shape {shape}, got {array.shape}")
    return array


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that every entry of ``array`` is finite (no NaN/Inf).

    Aggregation guards call this on every freshly aggregated flat model:
    a single non-finite device update would otherwise poison the edge —
    and, after the next sync, the global — model silently and forever.
    """
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        finite = np.isfinite(array)
        bad = int(array.size - np.count_nonzero(finite))
        first = int(np.flatnonzero(~finite.ravel())[0])
        raise ValueError(
            f"{name} contains {bad} non-finite value(s) (NaN/Inf), "
            f"first at flat index {first}"
        )
    return array


def check_membership(name: str, value, allowed: Sequence) -> object:
    """Validate that ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value

"""Probability-vector helpers shared by sampling strategies."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def capped_proportional_probabilities(
    weights: np.ndarray, capacity: float
) -> np.ndarray:
    """Probabilities proportional to ``weights`` with budget ``capacity``.

    Solves: find ``q`` with ``q_i ∈ [0, 1]``, ``Σ q_i = min(capacity,
    len(weights))`` and ``q_i ∝ w_i`` among the entries not clipped at 1
    (water-filling).  This is the standard way to honour Eq. (3) when a
    raw proportional rule would push some probabilities above 1.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1:
        raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    check_positive("capacity", capacity)
    n = weights.shape[0]
    if n == 0:
        return np.zeros(0)
    budget = min(float(capacity), float(n))
    if weights.sum() == 0:
        return np.full(n, budget / n)

    q = np.zeros(n)
    active = np.ones(n, dtype=bool)
    remaining = budget
    # Water-filling: repeatedly clip entries that exceed 1 and
    # redistribute the remaining budget proportionally.
    for _ in range(n):
        active_weights = weights * active
        total = active_weights.sum()
        if total <= 0:
            # All remaining weights zero: spread leftover uniformly.
            zeros = active & (weights == 0)
            if zeros.any() and remaining > 0:
                q[zeros] = min(1.0, remaining / zeros.sum())
            break
        # Divide before scaling: `remaining * w` can underflow to 0
        # for subnormal weights even though the ratio w/total is finite.
        candidate = remaining * (active_weights / total)
        overflow = active & (candidate >= 1.0)
        if not overflow.any():
            q[active] = candidate[active]
            break
        q[overflow] = 1.0
        remaining -= float(overflow.sum())
        active &= ~overflow
        if remaining <= 0:
            break
    return np.clip(q, 0.0, 1.0)

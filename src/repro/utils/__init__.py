"""Shared utilities: seeded RNG management, validation and small math helpers."""

from repro.utils.rng import SeedSequenceFactory, as_generator
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
    check_shape,
)

__all__ = [
    "SeedSequenceFactory",
    "as_generator",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "check_shape",
]

"""JSON serialization for training results and experiment reports.

Long benchmark runs should be inspectable after the fact; these helpers
serialize :class:`~repro.hfl.trainer.TrainingResult` and the comparison
reports to plain JSON (numpy types coerced), and load them back into
lightweight dataclass equivalents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.hfl.metrics import TrainingHistory
from repro.hfl.trainer import TrainingResult


def _coerce(value: Any) -> Any:
    """Make numpy scalars/arrays JSON-serializable."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    return value


def training_result_to_dict(result: TrainingResult) -> Dict[str, Any]:
    """Serialize a TrainingResult into a JSON-compatible dict."""
    return _coerce(
        {
            "sampler_name": result.sampler_name,
            "steps_run": result.steps_run,
            "reached_target_at": result.reached_target_at,
            "mean_participants_per_step": result.mean_participants_per_step,
            "participation_counts": result.participation_counts,
            "history": {
                "steps": result.history.steps,
                "accuracy": result.history.accuracy,
                "loss": result.history.loss,
            },
            "diagnostics": result.diagnostics,
        }
    )


def training_result_from_dict(payload: Dict[str, Any]) -> TrainingResult:
    """Rebuild a TrainingResult from :func:`training_result_to_dict` output."""
    required = {"sampler_name", "steps_run", "history", "participation_counts"}
    missing = required - set(payload)
    if missing:
        raise ValueError(f"payload missing keys: {sorted(missing)}")
    history = TrainingHistory(
        steps=list(payload["history"]["steps"]),
        accuracy=list(payload["history"]["accuracy"]),
        loss=list(payload["history"]["loss"]),
    )
    return TrainingResult(
        sampler_name=payload["sampler_name"],
        history=history,
        steps_run=int(payload["steps_run"]),
        participation_counts=np.asarray(payload["participation_counts"], dtype=int),
        mean_participants_per_step=float(
            payload.get("mean_participants_per_step", 0.0)
        ),
        reached_target_at=payload.get("reached_target_at"),
        diagnostics=dict(payload.get("diagnostics", {})),
    )


def save_training_result(result: TrainingResult, path: Union[str, Path]) -> Path:
    """Write a TrainingResult to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(training_result_to_dict(result), indent=2))
    return path


def load_training_result(path: Union[str, Path]) -> TrainingResult:
    """Read a TrainingResult JSON file back."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no result file at {path}")
    return training_result_from_dict(json.loads(path.read_text()))

"""JSON serialization for training results and experiment reports.

Long benchmark runs should be inspectable after the fact; these helpers
serialize :class:`~repro.hfl.trainer.TrainingResult` and the comparison
reports to plain JSON (numpy types coerced), and load them back into
lightweight dataclass equivalents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # deferred at runtime: repro.hfl.trainer imports
    # repro.faults, which serializes through this module.
    from repro.hfl.trainer import TrainingResult


def _coerce(value: Any) -> Any:
    """Make numpy scalars/arrays JSON-serializable."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    return value


#: Tag key marking an ndarray in :func:`to_jsonable` output.
_NDARRAY_TAG = "__ndarray__"


def to_jsonable(value: Any) -> Any:
    """Recursively encode ``value`` for exact JSON round-tripping.

    Unlike :func:`_coerce` (lossy ``tolist`` for report files), arrays
    are tagged with their dtype so :func:`from_jsonable` rebuilds them
    bit-identically — ``repr``-based JSON floats round-trip float64
    exactly.  Used by checkpointing, where exactness is the contract.
    """
    if isinstance(value, np.ndarray):
        return {_NDARRAY_TAG: {"dtype": str(value.dtype), "data": value.tolist()}}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} for JSON")


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`to_jsonable` (tagged arrays become ndarrays)."""
    if isinstance(value, dict):
        if set(value) == {_NDARRAY_TAG}:
            spec = value[_NDARRAY_TAG]
            return np.array(spec["data"], dtype=np.dtype(spec["dtype"]))
        return {k: from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    return value


def save_json(payload: Any, path: Union[str, Path]) -> Path:
    """Write ``payload`` (already jsonable) to ``path``, creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Read a JSON file written by :func:`save_json`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no JSON file at {path}")
    return json.loads(path.read_text())


def training_result_to_dict(result: TrainingResult) -> Dict[str, Any]:
    """Serialize a TrainingResult into a JSON-compatible dict."""
    return _coerce(
        {
            "sampler_name": result.sampler_name,
            "steps_run": result.steps_run,
            "reached_target_at": result.reached_target_at,
            "mean_participants_per_step": result.mean_participants_per_step,
            "participation_counts": result.participation_counts,
            "history": {
                "steps": result.history.steps,
                "accuracy": result.history.accuracy,
                "loss": result.history.loss,
            },
            "diagnostics": result.diagnostics,
        }
    )


def training_result_from_dict(payload: Dict[str, Any]) -> "TrainingResult":
    """Rebuild a TrainingResult from :func:`training_result_to_dict` output."""
    from repro.hfl.metrics import TrainingHistory
    from repro.hfl.trainer import TrainingResult

    required = {"sampler_name", "steps_run", "history", "participation_counts"}
    missing = required - set(payload)
    if missing:
        raise ValueError(f"payload missing keys: {sorted(missing)}")
    history = TrainingHistory(
        steps=list(payload["history"]["steps"]),
        accuracy=list(payload["history"]["accuracy"]),
        loss=list(payload["history"]["loss"]),
    )
    return TrainingResult(
        sampler_name=payload["sampler_name"],
        history=history,
        steps_run=int(payload["steps_run"]),
        participation_counts=np.asarray(payload["participation_counts"], dtype=int),
        mean_participants_per_step=float(
            payload.get("mean_participants_per_step", 0.0)
        ),
        reached_target_at=payload.get("reached_target_at"),
        diagnostics=dict(payload.get("diagnostics", {})),
    )


def save_training_result(result: TrainingResult, path: Union[str, Path]) -> Path:
    """Write a TrainingResult to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(training_result_to_dict(result), indent=2))
    return path


def load_training_result(path: Union[str, Path]) -> TrainingResult:
    """Read a TrainingResult JSON file back."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no result file at {path}")
    return training_result_from_dict(json.loads(path.read_text()))

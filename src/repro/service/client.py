"""urllib-based client for a remote coordinator (no new dependencies).

Mirrors the in-process :class:`~repro.service.coordinator.Coordinator`
surface method for method, returning the same typed objects from
:mod:`repro.service.types` — ``repro.api.attach(url)`` hands one of
these out, and :class:`~repro.api.RunHandle` drives either backend
through the shared vocabulary.
"""

from __future__ import annotations

import json
import time
from typing import Iterator, List, Optional
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro.experiments.config import ScenarioConfig
from repro.service.types import RoundStatus, RunResultSummary, RunStatus


class ServiceError(RuntimeError):
    """The coordinator rejected a request (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a :class:`CoordinatorServer` over HTTP."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        data = None if body is None else json.dumps(body).encode()
        request = Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode())
        except HTTPError as error:
            detail = error.read().decode()
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceError(error.code, detail) from None

    # -- coordinator surface -------------------------------------------------

    def api_version(self) -> str:
        return str(self._request("GET", "/v1/version")["api_version"])

    def submit(
        self,
        config: Optional[ScenarioConfig] = None,
        sampler: str = "mach",
        seed: Optional[int] = None,
        stop_at_target: bool = False,
        preset: Optional[str] = None,
        overrides: Optional[dict] = None,
    ) -> str:
        """Submit a scenario (inline config or preset name); returns run id."""
        if (config is None) == (preset is None):
            raise ValueError("provide exactly one of 'config' or 'preset'")
        body: dict = {
            "sampler": sampler,
            "stop_at_target": stop_at_target,
        }
        if seed is not None:
            body["seed"] = seed
        if overrides:
            body["overrides"] = overrides
        if preset is not None:
            body["preset"] = preset
        else:
            body["scenario"] = config.to_dict()
        return str(self._request("POST", "/v1/runs", body)["run_id"])

    def list_runs(self) -> List[RunStatus]:
        payload = self._request("GET", "/v1/runs")
        return [RunStatus.from_dict(entry) for entry in payload["runs"]]

    def status(self, run_id: str) -> RunStatus:
        return RunStatus.from_dict(self._request("GET", f"/v1/runs/{run_id}"))

    def pause(self, run_id: str) -> RunStatus:
        return RunStatus.from_dict(
            self._request("POST", f"/v1/runs/{run_id}/pause")
        )

    def resume_run(self, run_id: str) -> RunStatus:
        return RunStatus.from_dict(
            self._request("POST", f"/v1/runs/{run_id}/resume")
        )

    def stop(self, run_id: str) -> RunStatus:
        return RunStatus.from_dict(
            self._request("POST", f"/v1/runs/{run_id}/stop")
        )

    def wait(self, run_id: str, timeout: float = 600.0) -> RunStatus:
        """Poll until the run reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status.terminal:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"run {run_id} still {status.state}")
            time.sleep(0.1)

    def summary(self, run_id: str) -> RunResultSummary:
        return RunResultSummary.from_dict(
            self._request("GET", f"/v1/runs/{run_id}/result")
        )

    def stream(
        self, run_id: str, follow: bool = False
    ) -> Iterator[RoundStatus]:
        """The run's round metrics as typed objects (JSONL under the hood)."""
        suffix = "?follow=1" if follow else ""
        request = Request(self.base_url + f"/v1/runs/{run_id}/rounds{suffix}")
        timeout = None if follow else self.timeout
        try:
            with urlopen(request, timeout=timeout) as response:
                for raw in response:
                    line = raw.decode().strip()
                    if line:
                        yield RoundStatus.from_dict(json.loads(line))
        except HTTPError as error:
            raise ServiceError(error.code, error.read().decode()) from None

    def health(self) -> dict:
        """The health endpoint's report (verdict / ready / live / rules).

        A failing verdict arrives as HTTP 503 but still carries the
        full report body, so it is returned rather than raised — the
        caller inspects ``verdict``/``ready``.
        """
        request = Request(self.base_url + "/v1/health")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode())
        except HTTPError as error:
            if error.code == 503:
                return json.loads(error.read().decode())
            raise

    def prometheus(self) -> str:
        request = Request(self.base_url + "/metrics")
        with urlopen(request, timeout=self.timeout) as response:
            return response.read().decode()

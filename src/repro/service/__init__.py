"""repro.service — the always-on HFL coordinator and its transports.

Three layers, thinnest on top:

- :mod:`repro.service.coordinator` — the service itself: a scenario
  registry + dispatcher thread driving the trainer's incremental round
  pipeline, with pause/resume/stop, periodic v3 checkpoints and
  crash recovery;
- :mod:`repro.service.http` — stdlib JSON/JSONL endpoints over the same
  surface (plus the Prometheus scrape and the health probe);
- :mod:`repro.service.client` — a urllib client returning the same
  typed objects the in-process coordinator returns.

Most callers should go through :mod:`repro.api` instead of importing
from here — the facade is the stability contract.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.coordinator import Coordinator, UnknownRunError
from repro.service.http import API_VERSION, CoordinatorServer, serve
from repro.service.types import (
    RUN_STATES,
    TERMINAL_STATES,
    RoundStatus,
    RunResultSummary,
    RunStatus,
)

__all__ = [
    "API_VERSION",
    "Coordinator",
    "CoordinatorServer",
    "RoundStatus",
    "RunResultSummary",
    "RunStatus",
    "RUN_STATES",
    "ServiceClient",
    "ServiceError",
    "TERMINAL_STATES",
    "UnknownRunError",
    "serve",
]

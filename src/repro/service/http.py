"""Stdlib HTTP transport for the coordinator (JSON in, JSON/JSONL out).

A deliberately thin adapter: every endpoint parses the request, calls
the matching :class:`~repro.service.coordinator.Coordinator` method and
renders its typed result — no logic lives here, so the in-process and
HTTP surfaces can never drift.  Built on ``http.server`` from the
standard library (the repo's no-new-dependencies rule), threaded so a
long-poll round stream never blocks a status probe.

Endpoints (all JSON unless noted):

- ``POST /v1/runs`` — submit ``{"preset": ...}`` or ``{"scenario":
  {...}}`` plus optional ``overrides``/``sampler``/``seed``/
  ``stop_at_target``; returns ``{"run_id": ..., "api_version": ...}``.
- ``GET /v1/runs`` — list run statuses.
- ``GET /v1/runs/<id>`` — one run's status.
- ``GET /v1/runs/<id>/rounds[?follow=1]`` — round metrics as JSONL
  (chunked while following).
- ``GET /v1/runs/<id>/result`` — terminal run's summary (404 while live).
- ``POST /v1/runs/<id>/pause|resume|stop`` — lifecycle control.
- ``GET /v1/health`` — the coordinator's SLO verdict (``ok`` when idle).
- ``GET /metrics`` — Prometheus text exposition.
- ``GET /v1/version`` — API version handshake.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.experiments.config import PRESETS, ScenarioConfig
from repro.service.coordinator import Coordinator, UnknownRunError

#: Version tag of the service/facade surface; served from /v1/version
#: and echoed by submissions so clients can assert compatibility.
API_VERSION = "1.0"


def scenario_from_request(body: dict) -> Tuple[ScenarioConfig, Optional[str]]:
    """Resolve the request body's scenario: preset name or inline dict.

    ``overrides`` apply on top of either base — the exact semantics of
    the CLI's ``--preset`` + flag overrides.  Returns the config and
    the preset name (``None`` for inline scenarios).
    """
    preset = body.get("preset")
    scenario = body.get("scenario")
    if (preset is None) == (scenario is None):
        raise ValueError("provide exactly one of 'preset' or 'scenario'")
    if preset is not None:
        if preset not in PRESETS:
            raise ValueError(
                f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
            )
        config = PRESETS[preset]
    else:
        config = ScenarioConfig.from_dict(scenario)
    overrides = body.get("overrides") or {}
    if overrides:
        config = config.with_overrides(**overrides)
    return config, preset


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.coordinator``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-coordinator/" + API_VERSION

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, text: str, content_type: str, status: int = 200
    ) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length).decode())

    @property
    def coordinator(self) -> Coordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            if parts == ["v1", "version"]:
                self._send_json({"api_version": API_VERSION})
            elif parts == ["v1", "health"]:
                report = self.coordinator.health()
                status = 200 if report.ready else 503
                self._send_json(report.to_dict(), status=status)
            elif parts == ["metrics"]:
                self._send_text(
                    self.coordinator.prometheus(),
                    "text/plain; version=0.0.4",
                )
            elif parts == ["v1", "runs"]:
                self._send_json(
                    {"runs": [s.to_dict() for s in self.coordinator.list_runs()]}
                )
            elif len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                self._send_json(self.coordinator.status(parts[2]).to_dict())
            elif len(parts) == 4 and parts[:2] == ["v1", "runs"] and parts[3] == "rounds":
                query = parse_qs(parsed.query)
                follow = query.get("follow", ["0"])[0] in ("1", "true")
                self._stream_rounds(parts[2], follow)
            elif len(parts) == 4 and parts[:2] == ["v1", "runs"] and parts[3] == "result":
                run_id = parts[2]
                if not self.coordinator.status(run_id).terminal:
                    self._error(404, f"run {run_id} is not finished")
                    return
                self._send_json(self.coordinator.summary(run_id).to_dict())
            else:
                self._error(404, f"no such endpoint: {parsed.path}")
        except UnknownRunError as error:
            self._error(404, f"unknown run: {error.args[0]}")
        except (ValueError, RuntimeError) as error:
            self._error(400, str(error))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            if parts == ["v1", "runs"]:
                body = self._read_body()
                config, preset = scenario_from_request(body)
                run_id = self.coordinator.submit(
                    config,
                    sampler=body.get("sampler", "mach"),
                    seed=body.get("seed"),
                    stop_at_target=bool(body.get("stop_at_target", False)),
                    preset=preset,
                )
                self._send_json(
                    {"run_id": run_id, "api_version": API_VERSION}, status=201
                )
            elif len(parts) == 4 and parts[:2] == ["v1", "runs"]:
                run_id, action = parts[2], parts[3]
                if action == "pause":
                    status = self.coordinator.pause(run_id)
                elif action == "resume":
                    status = self.coordinator.resume_run(run_id)
                elif action == "stop":
                    status = self.coordinator.stop(run_id)
                else:
                    self._error(404, f"no such action: {action}")
                    return
                self._send_json(status.to_dict())
            else:
                self._error(404, f"no such endpoint: {parsed.path}")
        except UnknownRunError as error:
            self._error(404, f"unknown run: {error.args[0]}")
        except (ValueError, RuntimeError) as error:
            self._error(400, str(error))

    def _stream_rounds(self, run_id: str, follow: bool) -> None:
        """Round metrics as JSONL; chunked transfer while following."""
        self.coordinator.status(run_id)  # 404 before headers when unknown
        if not follow:
            lines = "".join(
                json.dumps(r.to_dict()) + "\n"
                for r in self.coordinator.stream(run_id)
            )
            self._send_text(lines, "application/jsonl")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for r in self.coordinator.stream(run_id, follow=True, timeout=300):
                chunk = (json.dumps(r.to_dict()) + "\n").encode()
                self.wfile.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream


class CoordinatorServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one coordinator."""

    daemon_threads = True

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _CoordinatorHandler)
        self.coordinator = coordinator
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        thread.start()
        return thread


def serve(
    coordinator: Coordinator,
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = False,
) -> None:
    """Blocking entry point used by ``runner serve`` (Ctrl-C to exit)."""
    server = CoordinatorServer(coordinator, host=host, port=port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        coordinator.shutdown()

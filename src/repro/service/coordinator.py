"""The always-on HFL coordinator: a long-running loop around the trainer.

The :class:`Coordinator` owns a scenario registry — :meth:`submit`
queues a :class:`~repro.experiments.config.ScenarioConfig` and returns a
``run_id`` — and a single dispatcher thread that executes runs one at a
time by driving :meth:`HFLTrainer.steps`, the resumable step generator.
Runs execute on the trainer's *incremental round pipeline*
(``trainer.incremental = True``): edge rounds are admitted as their
local-update results complete via :meth:`Executor.submit_step`, with
finishing held in plan order so a drained queue is bit-identical to the
synchronous barrier trainer (the contract `tests/service` asserts on
all three executor backends).

Lifecycle: :meth:`pause` / :meth:`resume_run` gate the loop between
steps, :meth:`stop` closes the generator at the next step boundary, and
each run checkpoints periodically through the trainer's own v3
checksummed checkpoints (rotated ``.prev`` copies).  A coordinator
restarted over the same ``state_dir`` recovers crashed runs with
:meth:`recover`: the run manifest names everything needed to rebuild
the trainer, :meth:`TrainerCheckpoint.load_with_fallback` picks the
newest intact snapshot, and the named per-``(step, edge, device)`` seed
streams replay the remaining steps exactly — a kill −9 mid-round loses
wall-clock, never results.

The coordinator itself is transport-agnostic: in-process callers use it
directly (or through :mod:`repro.api`), and :mod:`repro.service.http`
exposes the same surface over stdlib HTTP.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.experiments.config import SAMPLER_NAMES, ScenarioConfig, make_sampler
from repro.experiments.runner import build_scenario, hfl_config_for
from repro.faults import TrainerCheckpoint
from repro.hfl.trainer import HFLTrainer, TrainingResult
from repro.obs.health import HealthMonitor, HealthReport, default_rules
from repro.obs.metrics import MetricsRegistry
from repro.service.types import (
    TERMINAL_STATES,
    RoundStatus,
    RunResultSummary,
    RunStatus,
)

#: Default cadence (in engine steps) of the per-run v3 checkpoints the
#: service writes when it has a ``state_dir`` to write into.
DEFAULT_CHECKPOINT_EVERY = 5


class UnknownRunError(KeyError):
    """No run with the requested id exists in this coordinator."""


@dataclass
class _RunRecord:
    """Everything the coordinator tracks about one submitted run."""

    run_id: str
    config: ScenarioConfig
    sampler: str
    seed: int
    stop_at_target: bool = False
    preset: Optional[str] = None
    state: str = "queued"
    steps_run: int = 0
    final_accuracy: Optional[float] = None
    reached_target_at: Optional[int] = None
    error: Optional[str] = None
    resume_from: Optional[TrainerCheckpoint] = None
    resumed_from_step: Optional[int] = None
    rounds: List[RoundStatus] = field(default_factory=list)
    result: Optional[TrainingResult] = None
    #: Set = running; cleared = paused.  The dispatcher waits on it
    #: between steps, so pausing never splits an engine step.
    unpaused: threading.Event = field(default_factory=threading.Event)
    stop_requested: bool = False
    done: threading.Event = field(default_factory=threading.Event)

    def __post_init__(self) -> None:
        self.unpaused.set()

    def status(self) -> RunStatus:
        return RunStatus(
            run_id=self.run_id,
            state=self.state,
            sampler=self.sampler,
            seed=self.seed,
            num_steps=self.config.num_steps,
            steps_run=self.steps_run,
            preset=self.preset,
            final_accuracy=self.final_accuracy,
            reached_target_at=self.reached_target_at,
            error=self.error,
            resumed_from_step=self.resumed_from_step,
        )


class Coordinator:
    """Always-on coordinator: submit scenarios, stream rounds, recover.

    ``state_dir`` makes the service durable: each run gets
    ``runs/<run_id>/`` holding a JSON manifest (enough to rebuild the
    trainer), the rotating v3 checkpoint pair and the per-round metrics
    JSONL.  Without a ``state_dir`` the coordinator is purely in-memory
    (no checkpoints, no recovery) — handy for tests and notebooks.

    ``checkpoint_every`` is the per-run checkpoint cadence in steps
    (default :data:`DEFAULT_CHECKPOINT_EVERY`; ignored without a
    ``state_dir``).  A shared :class:`MetricsRegistry` backs the
    Prometheus scrape and the :class:`HealthMonitor` driving
    :meth:`health`.
    """

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.state_dir = None if state_dir is None else Path(state_dir)
        self.checkpoint_every = (
            checkpoint_every if self.state_dir is not None else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.health_monitor = HealthMonitor(
            self.metrics, rules=default_rules(self.checkpoint_every)
        )
        self._runs: Dict[str, _RunRecord] = {}
        self._lock = threading.RLock()
        self._round_seen = threading.Condition(self._lock)
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._next_id = 1
        self._closed = False
        if self.state_dir is not None:
            (self.state_dir / "runs").mkdir(parents=True, exist_ok=True)
            for entry in sorted((self.state_dir / "runs").iterdir()):
                name = entry.name
                if name.startswith("run-") and name[4:].isdigit():
                    self._next_id = max(self._next_id, int(name[4:]) + 1)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-coordinator", daemon=True
        )
        self._dispatcher.start()

    # -- registry ------------------------------------------------------------

    def submit(
        self,
        config: ScenarioConfig,
        sampler: str = "mach",
        seed: Optional[int] = None,
        stop_at_target: bool = False,
        preset: Optional[str] = None,
        run_id: Optional[str] = None,
        _resume_from: Optional[TrainerCheckpoint] = None,
    ) -> str:
        """Register a scenario for execution; returns its ``run_id``.

        Runs execute sequentially in submission order on the dispatcher
        thread — the determinism-first scheduling policy (every run owns
        the full machine, exactly like the synchronous CLI).
        """
        if sampler not in SAMPLER_NAMES:
            raise ValueError(
                f"unknown sampler {sampler!r}; choose from {SAMPLER_NAMES}"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("coordinator is shut down")
            if run_id is None:
                run_id = f"run-{self._next_id:04d}"
                self._next_id += 1
            elif run_id in self._runs:
                raise ValueError(f"run id {run_id!r} already exists")
            record = _RunRecord(
                run_id=run_id,
                config=config,
                sampler=sampler,
                seed=config.seed if seed is None else seed,
                stop_at_target=stop_at_target,
                preset=preset,
                resume_from=_resume_from,
            )
            if _resume_from is not None:
                record.resumed_from_step = _resume_from.step
                record.steps_run = _resume_from.step
            self._runs[run_id] = record
            self._write_manifest(record)
        self._queue.put(run_id)
        return run_id

    def list_runs(self) -> List[RunStatus]:
        with self._lock:
            return [r.status() for r in self._runs.values()]

    def status(self, run_id: str) -> RunStatus:
        return self._record(run_id).status()

    def _record(self, run_id: str) -> _RunRecord:
        with self._lock:
            try:
                return self._runs[run_id]
            except KeyError:
                raise UnknownRunError(run_id) from None

    # -- lifecycle control ---------------------------------------------------

    def pause(self, run_id: str) -> RunStatus:
        """Hold the run at its next step boundary (no-op when terminal)."""
        record = self._record(run_id)
        with self._lock:
            if record.state in ("queued", "running"):
                record.unpaused.clear()
                if record.state == "running":
                    record.state = "paused"
                self._write_manifest(record)
        return record.status()

    def resume_run(self, run_id: str) -> RunStatus:
        """Release a paused run (no-op otherwise)."""
        record = self._record(run_id)
        with self._lock:
            if record.state == "paused":
                record.state = "running"
                self._write_manifest(record)
            record.unpaused.set()
        return record.status()

    def stop(self, run_id: str) -> RunStatus:
        """Stop the run at its next step boundary.

        A queued run is cancelled outright; a running (or paused) run
        closes its step generator after the current step, checkpoints
        its final state when durable, and lands in ``stopped`` with a
        packaged partial result.
        """
        record = self._record(run_id)
        with self._lock:
            record.stop_requested = True
            record.unpaused.set()  # a paused run must wake up to stop
            if record.state == "queued":
                record.state = "stopped"
                record.done.set()
                self._write_manifest(record)
                self._round_seen.notify_all()
        return record.status()

    def result(
        self, run_id: str, timeout: Optional[float] = None
    ) -> TrainingResult:
        """Block until the run is terminal; return its training result."""
        record = self._record(run_id)
        if not record.done.wait(timeout):
            raise TimeoutError(f"run {run_id} still {record.state}")
        if record.result is None:
            raise RuntimeError(
                f"run {run_id} ended {record.state} without a result: "
                f"{record.error}"
            )
        return record.result

    def summary(self, run_id: str) -> RunResultSummary:
        """JSON-safe summary of a terminal run (see :class:`RunResultSummary`)."""
        record = self._record(run_id)
        result = self.result(run_id, timeout=0.0)
        digest = None
        if result.final_cloud_model is not None:
            digest = hashlib.sha256(
                result.final_cloud_model.tobytes()
            ).hexdigest()
        has_history = bool(result.history.accuracy)
        return RunResultSummary(
            run_id=run_id,
            sampler=result.sampler_name,
            steps_run=result.steps_run,
            final_accuracy=(
                result.history.final_accuracy() if has_history else None
            ),
            best_accuracy=(
                result.history.best_accuracy() if has_history else None
            ),
            reached_target_at=result.reached_target_at,
            mean_participants_per_step=result.mean_participants_per_step,
            late_admits=result.late_admits,
            late_drops=result.late_drops,
            devices_joined=result.devices_joined,
            devices_left=result.devices_left,
            cloud_model_sha256=digest,
            history={
                "steps": [float(s) for s in result.history.steps],
                "accuracy": list(result.history.accuracy),
                "loss": list(result.history.loss),
            },
        )

    def stream(
        self, run_id: str, follow: bool = False, timeout: Optional[float] = None
    ) -> Iterator[RoundStatus]:
        """Yield the run's per-step round statuses in step order.

        ``follow=True`` keeps the iterator live until the run reaches a
        terminal state (the JSONL-over-HTTP endpoint tails this);
        ``timeout`` bounds each wait for the next round.
        """
        record = self._record(run_id)
        index = 0
        while True:
            with self._lock:
                while index >= len(record.rounds):
                    if not follow or record.state in TERMINAL_STATES:
                        return
                    if not self._round_seen.wait(timeout):
                        return
                pending = list(record.rounds[index:])
                index += len(pending)
            # Yield outside the lock: a slow consumer must never stall
            # the dispatcher's round appends.
            for round_status in pending:
                yield round_status

    # -- observability surface ----------------------------------------------

    def health(self) -> HealthReport:
        """The coordinator's SLO verdict (``ok`` until data says otherwise)."""
        report = self.health_monitor.last_report
        if report is None:
            # No engine steps observed yet: an idle service is healthy.
            report = HealthReport(step=0, verdict="ok")
        return report

    def prometheus(self) -> str:
        """The shared registry in Prometheus text exposition format."""
        return self.metrics.render_prometheus()

    # -- crash recovery ------------------------------------------------------

    def recover(self) -> List[str]:
        """Resubmit every non-terminal run found under ``state_dir``.

        For each recovered run the newest intact checkpoint (primary or
        rotated ``.prev``, via
        :meth:`TrainerCheckpoint.load_with_fallback`) seeds the resume;
        a run that died before its first checkpoint restarts from step
        0 — either way the replayed history is bit-identical to an
        uninterrupted run.  Returns the recovered run ids.
        """
        if self.state_dir is None:
            return []
        recovered: List[str] = []
        for run_dir in sorted((self.state_dir / "runs").iterdir()):
            manifest_path = run_dir / "run.json"
            if not manifest_path.is_file():
                continue
            manifest = json.loads(manifest_path.read_text())
            if manifest["state"] in TERMINAL_STATES:
                continue
            with self._lock:
                if manifest["run_id"] in self._runs:
                    continue
            checkpoint = None
            checkpoint_path = run_dir / "checkpoint.json"
            if checkpoint_path.is_file() or Path(
                str(checkpoint_path) + ".prev"
            ).is_file():
                checkpoint, _used = TrainerCheckpoint.load_with_fallback(
                    checkpoint_path
                )
            self._trim_round_log(run_dir, 0 if checkpoint is None else checkpoint.step)
            self.submit(
                ScenarioConfig.from_dict(manifest["config"]),
                sampler=manifest["sampler"],
                seed=manifest["seed"],
                stop_at_target=manifest.get("stop_at_target", False),
                preset=manifest.get("preset"),
                run_id=manifest["run_id"],
                _resume_from=checkpoint,
            )
            recovered.append(manifest["run_id"])
        return recovered

    def _trim_round_log(self, run_dir: Path, resume_step: int) -> None:
        """Drop JSONL rounds past the checkpoint so the replay appends
        cleanly (steps between the snapshot and the crash are re-run)."""
        log_path = run_dir / "metrics.jsonl"
        if not log_path.is_file():
            return
        kept = []
        for line in log_path.read_text().splitlines():
            if not line.strip():
                continue
            if int(json.loads(line)["steps_run"]) <= resume_step:
                kept.append(line)
        log_path.write_text("".join(line + "\n" for line in kept))

    # -- execution -----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            run_id = self._queue.get()
            if run_id is None:
                return
            record = self._record(run_id)
            with self._lock:
                if record.state != "queued":
                    continue  # cancelled while queued
                record.state = "paused" if not record.unpaused.is_set() else "running"
                self._write_manifest(record)
            try:
                self._execute_run(record)
            except Exception as error:  # noqa: BLE001 - run isolation
                with self._lock:
                    record.state = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    record.done.set()
                    self._write_manifest(record)
                    self._round_seen.notify_all()

    def _run_dir(self, run_id: str) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / "runs" / run_id

    def _write_manifest(self, record: _RunRecord) -> None:
        run_dir = self._run_dir(record.run_id)
        if run_dir is None:
            return
        run_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "run_id": record.run_id,
            "config": record.config.to_dict(),
            "sampler": record.sampler,
            "seed": record.seed,
            "stop_at_target": record.stop_at_target,
            "preset": record.preset,
            "state": record.state,
            "steps_run": record.steps_run,
        }
        tmp = run_dir / "run.json.tmp"
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp, run_dir / "run.json")

    def _execute_run(self, record: _RunRecord) -> None:
        config = record.config
        run_dir = self._run_dir(record.run_id)
        devices, test, trace, model_factory = build_scenario(
            config, record.seed
        )
        hfl_config = hfl_config_for(config, record.seed)
        if run_dir is not None and self.checkpoint_every is not None:
            from dataclasses import replace as dc_replace

            hfl_config = dc_replace(
                hfl_config,
                checkpoint_every=self.checkpoint_every,
                checkpoint_path=str(run_dir / "checkpoint.json"),
            )
        from repro.obs import Observability

        obs = Observability(metrics=self.metrics, health=self.health_monitor)
        trainer = HFLTrainer(
            model_factory=model_factory,
            device_datasets=devices,
            trace=trace,
            sampler=make_sampler(record.sampler, config),
            config=hfl_config,
            test_dataset=test,
            obs=obs,
        )
        trainer.incremental = True
        log_handle = None
        if run_dir is not None:
            mode = "a" if record.resume_from is not None else "w"
            log_handle = open(run_dir / "metrics.jsonl", mode)
        try:
            stepper = trainer.steps(
                config.num_steps,
                target_accuracy=config.target_accuracy,
                stop_at_target=record.stop_at_target,
                resume_from=record.resume_from,
            )
            stopped = False
            for outcome in stepper:
                round_status = RoundStatus(
                    run_id=record.run_id,
                    step=outcome.step,
                    steps_run=outcome.steps_run,
                    participants=outcome.participants,
                    synced=outcome.synced,
                    evaluated=outcome.evaluated,
                    accuracy=outcome.accuracy,
                    loss=outcome.loss,
                    reached_target=outcome.reached_target,
                    seconds=outcome.seconds,
                )
                if log_handle is not None:
                    log_handle.write(json.dumps(round_status.to_dict()) + "\n")
                    log_handle.flush()
                with self._lock:
                    record.steps_run = outcome.steps_run
                    record.rounds.append(round_status)
                    self._round_seen.notify_all()
                if record.stop_requested:
                    stepper.close()
                    stopped = True
                    break
                # Pause gate: the manifest already says "paused" (the
                # pause() call wrote it); the engine simply holds here.
                record.unpaused.wait()
                if record.stop_requested:
                    stepper.close()
                    stopped = True
                    break
            result = trainer.result()
            if stopped and run_dir is not None and result.steps_run > 0:
                # Durable stop: snapshot the final state so a later
                # recover() sees a terminal manifest and a checkpoint
                # consistent with the last completed step.
                trainer.make_checkpoint(result.steps_run).save(
                    run_dir / "checkpoint.json"
                )
            with self._lock:
                record.result = result
                record.steps_run = result.steps_run
                # A run stopped before its first evaluation has an
                # empty history — no accuracy to report, not an error.
                record.final_accuracy = (
                    result.history.final_accuracy()
                    if result.history.accuracy
                    else None
                )
                record.reached_target_at = result.reached_target_at
                record.state = "stopped" if stopped else "completed"
                record.done.set()
                self._write_manifest(record)
                self._round_seen.notify_all()
        finally:
            if log_handle is not None:
                log_handle.close()
            trainer.close()

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work and join the dispatcher (idempotent).

        Queued runs are cancelled; a run mid-flight is stopped at its
        next step boundary (durable state lands on disk, so a restarted
        coordinator can :meth:`recover` it).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for record in self._runs.values():
                if record.state in ("queued", "running", "paused"):
                    record.stop_requested = True
                    record.unpaused.set()
                    if record.state == "queued":
                        record.state = "stopped"
                        record.done.set()
                        self._write_manifest(record)
            self._round_seen.notify_all()
        self._queue.put(None)
        self._dispatcher.join(timeout)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""Typed status objects shared by the coordinator, clients and `repro.api`.

These are the wire-stable shapes of the service surface: everything a
transport carries is one of these dataclasses rendered through its
``to_dict`` (JSON-safe scalars only), and every client rehydrates with
the matching ``from_dict``.  Keeping them in one leaf module lets the
in-process coordinator, the HTTP layer and the top-level facade agree
on one vocabulary without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Lifecycle states a submitted run moves through.  Terminal states are
#: ``completed``, ``failed`` and ``stopped``; everything else is live.
RUN_STATES = (
    "queued",
    "running",
    "paused",
    "stopping",
    "completed",
    "failed",
    "stopped",
)

TERMINAL_STATES = ("completed", "failed", "stopped")


@dataclass(frozen=True)
class RoundStatus:
    """One completed engine step of a service run (a JSONL stream line).

    The service appends one of these to ``runs/<run_id>/metrics.jsonl``
    after every step; ``accuracy``/``loss`` are ``None`` except at
    evaluation points.
    """

    run_id: str
    step: int
    steps_run: int
    participants: int
    synced: bool
    evaluated: bool
    accuracy: Optional[float] = None
    loss: Optional[float] = None
    reached_target: bool = False
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "step": self.step,
            "steps_run": self.steps_run,
            "participants": self.participants,
            "synced": self.synced,
            "evaluated": self.evaluated,
            "accuracy": self.accuracy,
            "loss": self.loss,
            "reached_target": self.reached_target,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RoundStatus":
        return cls(
            run_id=str(data["run_id"]),
            step=int(data["step"]),
            steps_run=int(data["steps_run"]),
            participants=int(data["participants"]),
            synced=bool(data["synced"]),
            evaluated=bool(data["evaluated"]),
            accuracy=(
                None if data.get("accuracy") is None else float(data["accuracy"])
            ),
            loss=None if data.get("loss") is None else float(data["loss"]),
            reached_target=bool(data.get("reached_target", False)),
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class RunStatus:
    """Point-in-time lifecycle snapshot of a submitted run."""

    run_id: str
    state: str
    sampler: str
    seed: int
    num_steps: int
    steps_run: int = 0
    preset: Optional[str] = None
    final_accuracy: Optional[float] = None
    reached_target_at: Optional[int] = None
    error: Optional[str] = None
    resumed_from_step: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "state": self.state,
            "sampler": self.sampler,
            "seed": self.seed,
            "num_steps": self.num_steps,
            "steps_run": self.steps_run,
            "preset": self.preset,
            "final_accuracy": self.final_accuracy,
            "reached_target_at": self.reached_target_at,
            "error": self.error,
            "resumed_from_step": self.resumed_from_step,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunStatus":
        return cls(
            run_id=str(data["run_id"]),
            state=str(data["state"]),
            sampler=str(data["sampler"]),
            seed=int(data["seed"]),
            num_steps=int(data["num_steps"]),
            steps_run=int(data.get("steps_run", 0)),
            preset=(
                None if data.get("preset") is None else str(data["preset"])
            ),
            final_accuracy=(
                None
                if data.get("final_accuracy") is None
                else float(data["final_accuracy"])
            ),
            reached_target_at=(
                None
                if data.get("reached_target_at") is None
                else int(data["reached_target_at"])
            ),
            error=None if data.get("error") is None else str(data["error"]),
            resumed_from_step=(
                None
                if data.get("resumed_from_step") is None
                else int(data["resumed_from_step"])
            ),
        )


@dataclass(frozen=True)
class RunResultSummary:
    """JSON-safe summary of a finished run's :class:`TrainingResult`.

    The flat model vector itself never crosses the wire — remote
    callers get its SHA-256 so bit-identity can still be asserted
    end-to-end; in-process callers reach the full
    :class:`~repro.hfl.trainer.TrainingResult` through the coordinator.
    """

    run_id: str
    sampler: str
    steps_run: int
    final_accuracy: Optional[float]
    best_accuracy: Optional[float]
    reached_target_at: Optional[int]
    mean_participants_per_step: float
    late_admits: int = 0
    late_drops: int = 0
    devices_joined: int = 0
    devices_left: int = 0
    cloud_model_sha256: Optional[str] = None
    history: Dict[str, List[float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "sampler": self.sampler,
            "steps_run": self.steps_run,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "reached_target_at": self.reached_target_at,
            "mean_participants_per_step": self.mean_participants_per_step,
            "late_admits": self.late_admits,
            "late_drops": self.late_drops,
            "devices_joined": self.devices_joined,
            "devices_left": self.devices_left,
            "cloud_model_sha256": self.cloud_model_sha256,
            "history": dict(self.history),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResultSummary":
        return cls(
            run_id=str(data["run_id"]),
            sampler=str(data["sampler"]),
            steps_run=int(data["steps_run"]),
            final_accuracy=(
                None
                if data.get("final_accuracy") is None
                else float(data["final_accuracy"])
            ),
            best_accuracy=(
                None
                if data.get("best_accuracy") is None
                else float(data["best_accuracy"])
            ),
            reached_target_at=(
                None
                if data.get("reached_target_at") is None
                else int(data["reached_target_at"])
            ),
            mean_participants_per_step=float(
                data["mean_participants_per_step"]
            ),
            late_admits=int(data.get("late_admits", 0)),
            late_drops=int(data.get("late_drops", 0)),
            devices_joined=int(data.get("devices_joined", 0)),
            devices_left=int(data.get("devices_left", 0)),
            cloud_model_sha256=(
                None
                if data.get("cloud_model_sha256") is None
                else str(data["cloud_model_sha256"])
            ),
            history={
                key: [float(v) for v in values]
                for key, values in dict(data.get("history", {})).items()
            },
        )

"""repro.api — the stable public surface of the repro engine.

Everything user code should need is re-exported or defined here, under
a versioned contract (:data:`API_VERSION`): the CLI, the examples and
the coordinator service all route through this module, so the engine's
internals can keep churning without breaking callers.

Three entry points, by increasing ambition:

- :func:`run_scenario` — synchronous: build a scenario, run one
  sampler, return the :class:`TrainingResult`.  The programmatic twin
  of ``python -m repro.experiments.runner run``.
- :func:`submit` — asynchronous, in-process: hand a scenario to a
  :class:`Coordinator` and get a :class:`RunHandle` to stream, pause
  or wait on.
- :func:`attach` — remote: connect to a served coordinator by URL and
  drive it through the same :class:`RunHandle` surface.

Example::

    import repro.api as api

    result = api.run_scenario(preset="blobs-bench", sampler="mach")

    handle = api.submit(api.PRESETS["blobs-bench"], sampler="mach")
    for round_status in handle.stream(follow=True):
        print(round_status.step, round_status.accuracy)
    result = handle.result()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.experiments.config import (
    PRESETS,
    SAMPLER_NAMES,
    ScenarioConfig,
    make_sampler,
)
from repro.hfl.trainer import StepOutcome, TrainingResult
from repro.service.client import ServiceClient, ServiceError
from repro.service.coordinator import Coordinator
from repro.service.http import API_VERSION
from repro.service.types import RoundStatus, RunResultSummary, RunStatus

__all__ = [
    "API_VERSION",
    "Coordinator",
    "PRESETS",
    "RoundStatus",
    "RunHandle",
    "RunResultSummary",
    "RunStatus",
    "SAMPLER_NAMES",
    "ScenarioConfig",
    "ServiceClient",
    "ServiceError",
    "StepOutcome",
    "TrainingResult",
    "attach",
    "make_sampler",
    "run_scenario",
    "submit",
]


def run_scenario(
    scenario: Optional[ScenarioConfig] = None,
    *,
    preset: Optional[str] = None,
    sampler: str = "mach",
    seed: Optional[int] = None,
    stop_at_target: bool = False,
    telemetry=None,
    obs=None,
    resume_from=None,
    **overrides,
) -> TrainingResult:
    """Run one sampler on one scenario, synchronously.

    Pass either a :class:`ScenarioConfig` or a ``preset`` name; keyword
    ``overrides`` apply on top of either (``num_steps=20``,
    ``fault_profile="moderate"``, ...).  ``resume_from`` continues a
    checkpointed run; ``telemetry``/``obs`` attach the usual recorders.
    """
    config = _resolve_scenario(scenario, preset, overrides)
    from repro.experiments.runner import run_single

    return run_single(
        config,
        sampler,
        seed=seed,
        stop_at_target=stop_at_target,
        telemetry=telemetry,
        resume_from=resume_from,
        obs=obs,
    )


def submit(
    scenario: Optional[ScenarioConfig] = None,
    *,
    preset: Optional[str] = None,
    sampler: str = "mach",
    seed: Optional[int] = None,
    stop_at_target: bool = False,
    coordinator: Optional[Coordinator] = None,
    **overrides,
) -> "RunHandle":
    """Submit a scenario to a coordinator; returns a :class:`RunHandle`.

    Without an explicit ``coordinator`` the process-wide default (an
    in-memory :class:`Coordinator`, created on first use) runs it —
    the zero-setup path for notebooks and tests.  Pass your own
    coordinator for durable state dirs, checkpoints and recovery.
    """
    config = _resolve_scenario(scenario, preset, overrides)
    backend = coordinator if coordinator is not None else _default_coordinator()
    run_id = backend.submit(
        config,
        sampler=sampler,
        seed=seed,
        stop_at_target=stop_at_target,
        preset=preset,
    )
    return RunHandle(run_id=run_id, _backend=backend)


def attach(url: str, timeout: float = 30.0) -> ServiceClient:
    """Connect to a served coordinator (``runner serve``) by base URL.

    Verifies the API version handshake up front so incompatibilities
    fail loudly at attach time, not mid-run.
    """
    client = ServiceClient(url, timeout=timeout)
    remote = client.api_version()
    if remote.split(".")[0] != API_VERSION.split(".")[0]:
        raise ServiceError(
            426,
            f"server speaks API {remote}, this client speaks {API_VERSION}",
        )
    return client


@dataclass
class RunHandle:
    """A submitted run, addressable wherever it executes.

    Wraps a ``run_id`` plus its backend — an in-process
    :class:`Coordinator` or a remote :class:`ServiceClient` — behind
    one lifecycle surface.  ``result()`` returns the full
    :class:`TrainingResult` in-process and raises for remote backends
    (flat model vectors never cross the wire; use :meth:`summary`,
    which carries the vector's SHA-256, on both).
    """

    run_id: str
    _backend: Union[Coordinator, ServiceClient]

    def status(self) -> RunStatus:
        return self._backend.status(self.run_id)

    def stream(
        self, follow: bool = False
    ) -> Iterator[RoundStatus]:
        return self._backend.stream(self.run_id, follow=follow)

    def pause(self) -> RunStatus:
        return self._backend.pause(self.run_id)

    def resume(self) -> RunStatus:
        return self._backend.resume_run(self.run_id)

    def stop(self) -> RunStatus:
        return self._backend.stop(self.run_id)

    def wait(self, timeout: float = 600.0) -> RunStatus:
        if isinstance(self._backend, Coordinator):
            self._backend.result(self.run_id, timeout=timeout)
            return self._backend.status(self.run_id)
        return self._backend.wait(self.run_id, timeout=timeout)

    def result(self, timeout: float = 600.0) -> TrainingResult:
        if not isinstance(self._backend, Coordinator):
            raise ServiceError(
                400,
                "full TrainingResult is only available in-process; "
                "use summary() against a remote coordinator",
            )
        return self._backend.result(self.run_id, timeout=timeout)

    def summary(self, timeout: float = 600.0) -> RunResultSummary:
        self.wait(timeout=timeout)
        return self._backend.summary(self.run_id)


# -- module internals --------------------------------------------------------

_DEFAULT_COORDINATOR: Optional[Coordinator] = None


def _default_coordinator() -> Coordinator:
    global _DEFAULT_COORDINATOR
    if _DEFAULT_COORDINATOR is None:
        _DEFAULT_COORDINATOR = Coordinator()
    return _DEFAULT_COORDINATOR


def _resolve_scenario(
    scenario: Optional[ScenarioConfig],
    preset: Optional[str],
    overrides: dict,
) -> ScenarioConfig:
    if (scenario is None) == (preset is None):
        raise ValueError("provide exactly one of 'scenario' or 'preset'")
    if preset is not None:
        if preset not in PRESETS:
            raise ValueError(
                f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
            )
        config = PRESETS[preset]
    else:
        config = scenario
    if overrides:
        config = config.with_overrides(**overrides)
    return config

"""HFL training configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import check_fraction, check_membership, check_positive

#: Aggregation variants for Eq. (5) — see :mod:`repro.hfl.edge`.
AGGREGATION_MODES = ("delta", "model", "normalized", "fedavg")


@dataclass
class HFLConfig:
    """Parameters of one HFL run (defaults follow §IV-A.2).

    Attributes
    ----------
    learning_rate:
        Device learning rate γ (0.002 for MNIST/FMNIST, 0.02 for
        CIFAR10 in the paper).
    local_epochs:
        Local updating steps I per sampled device per time step (10).
    batch_size:
        Minibatch size of each local SGD step (ξ in Eq. (4)).
    sync_interval:
        Edge-to-cloud communication interval T_g (5 for MNIST/FMNIST,
        10 for CIFAR10).
    participation_fraction:
        Expected fraction of all devices training per step; each edge's
        channel capacity is ``K_n = fraction * |M| / |N|`` (the paper's
        "50% of the devices participating ⇒ average K_n = 5 with 10
        edges and 100 devices").  Ignored when ``capacity_per_edge`` is
        given explicitly.
    capacity_per_edge:
        Optional explicit K_n vector of length num_edges.
    aggregation:
        How Eq. (5) is realized (see :meth:`repro.hfl.edge.Edge.aggregate`):

        - ``"delta"`` (default): edges aggregate inverse-probability-
          weighted model *updates* on top of the previous edge model.
          This is the unbiased *gradient* update of Lemma 1 and is the
          form the Theorem-1 proof actually manipulates (Eq. (19));
          aggregating raw models would rescale the whole parameter
          vector by the realized weight sum each step, the
          "explosive increase / gradient vanishing" failure §III-B.2
          warns about.
        - ``"model"``: the literal Eq. (5) (raw-model IPW sum), kept for
          the faithfulness ablation.
        - ``"normalized"``: IPW model sum divided by the realized weight
          sum (the common practical fix; biased but low variance).
        - ``"fedavg"``: participants' updates averaged with equal
          weights (no inverse-probability correction).  This is how
          deployed FL systems aggregate and it makes the sampling
          strategy *bias* the edge optimization direction toward the
          sampled devices — the regime in which biased-selection
          baselines like [14]/[39] (and the paper's reported gains)
          operate.  The evaluation presets default to it; the IPW modes
          remain for the theory-faithful pipeline and ablations.
    eval_interval:
        Evaluate the global model every this many steps (``None`` ⇒
        every sync_interval, i.e. at each cloud aggregation).
    seed:
        Master seed for all engine randomness.
    executor:
        Which :mod:`repro.runtime` backend runs the device local
        updates — ``"serial"`` (default, in-process reference path),
        ``"thread"`` or ``"process"``.  All backends are bit-identical
        for a fixed seed; the pooled ones trade setup/serialization
        overhead for multi-core wall-clock.
    num_workers:
        Worker count for the pooled executors (``None`` ⇒ CPU count);
        ignored by the serial backend.
    fault_profile:
        Fault injection for the run — a
        :class:`repro.faults.FaultProfile`, a spec string accepted by
        :func:`repro.faults.resolve_fault_profile` (e.g. ``"severe"`` or
        ``"dropout=0.2,corruption=0.05"``), or ``None`` / an all-zero
        profile for the perfect world.  Faults are drawn from named
        ``(step, edge, device)`` seed streams, so runs stay
        bit-identical across executor backends under any profile.
    churn_profile:
        Open-population dynamics for the run — a
        :class:`repro.churn.ChurnProfile`, a spec string accepted by
        :func:`repro.churn.resolve_churn_profile` (e.g. ``"moderate"``
        or ``"arrival=0.1,departure=0.05"``), or ``None`` / an inactive
        profile for the paper's closed world.  Arrivals and departures
        are drawn from named seed streams of a ``"churn"`` child
        factory, so runs stay bit-identical across executor backends
        under any profile.
    max_staleness:
        Bounded-staleness window for late uploads: a sampled upload
        that misses the straggler deadline is parked and admitted into
        a later aggregate up to this many steps after its round, with
        an age-discounted weight (``staleness_discount ** age``).  The
        default 0 keeps today's behavior — stragglers are dropped — and
        is required for bit-identity with the pre-churn trainer.
        Nonzero values only matter under a fault profile with a
        straggler deadline (otherwise no upload is ever late).
    staleness_discount:
        Per-step age discount applied to an admitted late upload's
        aggregation weight, in (0, 1].
    checkpoint_every:
        Write a resumable :class:`repro.faults.TrainerCheckpoint` every
        this many completed steps (``None`` disables checkpointing).
    checkpoint_path:
        Where the checkpoint file is written (required when
        ``checkpoint_every`` is set; overwritten in place, atomically).
    topology:
        Who talks to whom at each sync step (see :mod:`repro.topology`):
        ``"hierarchical"`` (default — the paper's cloud→edge tree),
        ``"clustered"`` (edge clusters with inter-cluster model
        mixing), or ``"gossip"`` (cloudless seeded neighbor exchange).
    aggregation_strategy:
        How the exchanged models combine at a sync step — ``"ipw"``
        (cloud member-count weighting + broadcast, hierarchical only),
        ``"cluster_mix"`` (per-cluster weighted aggregation then
        λ-damped neighbor mixing), or ``"gossip_avg"`` (uniform
        neighborhood averaging).  ``None`` (default) selects the
        topology's canonical strategy.  Distinct from ``aggregation``,
        which picks the *within-edge* Eq. (5) device-weighting mode.
    num_clusters:
        Cluster count for the clustered topology (``None`` ⇒ ⌈√E⌉,
        capped at the edge count); ignored by the other topologies.
    cluster_mixing_weight:
        λ ∈ [0, 1] of ``cluster_mix``: 0 keeps clusters independent,
        1 replaces every cluster model with its neighbors' average.
    gossip_degree:
        Peers each edge draws per gossip sync step (clipped to E − 1).
    """

    learning_rate: float = 0.01
    local_epochs: int = 10
    batch_size: int = 16
    sync_interval: int = 5
    participation_fraction: float = 0.5
    capacity_per_edge: Optional[np.ndarray] = None
    aggregation: str = "delta"
    eval_interval: Optional[int] = None
    # Evaluation cadence: "fixed" evaluates every effective_eval_interval
    # steps; "adaptive" starts there and doubles the gap whenever the
    # accuracy moved less than eval_accuracy_delta since the previous
    # evaluation (capped at effective_eval_max_interval), resetting to
    # the base interval as soon as accuracy moves again.  Evaluation is
    # a pure observer, so the cadence never perturbs the training
    # trajectory — only which steps appear in the history.
    eval_cadence: str = "fixed"
    eval_max_interval: Optional[int] = None
    eval_accuracy_delta: float = 0.005
    seed: int = 0
    executor: str = "serial"
    num_workers: Optional[int] = None
    fault_profile: Optional[object] = None
    churn_profile: Optional[object] = None
    max_staleness: int = 0
    staleness_discount: float = 0.5
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    topology: str = "hierarchical"
    aggregation_strategy: Optional[str] = None
    num_clusters: Optional[int] = None
    cluster_mixing_weight: float = 0.25
    gossip_degree: int = 2

    def __post_init__(self) -> None:
        check_positive("learning_rate", self.learning_rate)
        check_positive("local_epochs", self.local_epochs)
        check_positive("batch_size", self.batch_size)
        check_positive("sync_interval", self.sync_interval)
        check_fraction("participation_fraction", self.participation_fraction)
        check_membership("aggregation", self.aggregation, AGGREGATION_MODES)
        # Deferred import: repro.runtime sits above the device layer in
        # the dependency order, so the kinds tuple is pulled at
        # construction time rather than module-import time.
        from repro.runtime.base import EXECUTOR_KINDS

        check_membership("executor", self.executor, EXECUTOR_KINDS)
        if self.num_workers is not None:
            check_positive("num_workers", self.num_workers)
        # Same deferred-import rationale: repro.faults sits above this
        # module (it imports repro.hfl.latency).
        from repro.faults.profile import resolve_fault_profile

        self.fault_profile = resolve_fault_profile(self.fault_profile)
        # Churn rides the same deferred-import pattern for consistency.
        from repro.churn.profile import resolve_churn_profile

        self.churn_profile = resolve_churn_profile(self.churn_profile)
        if self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError(
                f"staleness_discount must be in (0, 1], got "
                f"{self.staleness_discount}"
            )
        # Same deferred-import rationale once more: repro.topology is
        # imported by the trainer, which sits above this module.
        from repro.topology import validate_pair

        validate_pair(self.topology, self.aggregation_strategy)
        if self.num_clusters is not None:
            check_positive("num_clusters", self.num_clusters)
        check_fraction("cluster_mixing_weight", self.cluster_mixing_weight)
        check_positive("gossip_degree", self.gossip_degree)
        if self.checkpoint_every is not None:
            check_positive("checkpoint_every", self.checkpoint_every)
            if self.checkpoint_path is None:
                raise ValueError(
                    "checkpoint_every requires checkpoint_path to be set"
                )
        if self.eval_interval is not None:
            check_positive("eval_interval", self.eval_interval)
        check_membership("eval_cadence", self.eval_cadence, ("fixed", "adaptive"))
        if self.eval_max_interval is not None:
            check_positive("eval_max_interval", self.eval_max_interval)
            if self.eval_max_interval < self.effective_eval_interval:
                raise ValueError(
                    f"eval_max_interval={self.eval_max_interval} is below the "
                    f"base interval {self.effective_eval_interval}"
                )
        check_positive("eval_accuracy_delta", self.eval_accuracy_delta)
        if self.capacity_per_edge is not None:
            self.capacity_per_edge = np.asarray(self.capacity_per_edge, dtype=float)
            if np.any(self.capacity_per_edge <= 0):
                raise ValueError("capacity_per_edge entries must be positive")

    def capacities(self, num_edges: int, num_devices: int) -> np.ndarray:
        """Resolve the per-edge channel capacities K_n (Eq. (3))."""
        check_positive("num_edges", num_edges)
        check_positive("num_devices", num_devices)
        if self.capacity_per_edge is not None:
            if self.capacity_per_edge.shape != (num_edges,):
                raise ValueError(
                    f"capacity_per_edge must have shape ({num_edges},), got "
                    f"{self.capacity_per_edge.shape}"
                )
            return self.capacity_per_edge
        per_edge = self.participation_fraction * num_devices / num_edges
        return np.full(num_edges, per_edge)

    @property
    def effective_eval_interval(self) -> int:
        return self.eval_interval if self.eval_interval is not None else self.sync_interval

    @property
    def effective_eval_max_interval(self) -> int:
        """Adaptive-cadence ceiling (default: 8 × the base interval)."""
        if self.eval_max_interval is not None:
            return self.eval_max_interval
        return 8 * self.effective_eval_interval

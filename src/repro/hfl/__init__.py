"""Hierarchical federated learning engine (Algorithm 1 of the paper).

The engine executes the §II-B protocol over a mobility trace: per time
step, every edge samples devices from its current member set (Eq. (3)),
sampled devices run I local SGD steps (Eq. (4)), edges aggregate with
inverse-probability weights (Eq. (5)) and the cloud aggregates edge
models every T_g steps (Eq. (6)).
"""

from repro.hfl.cloud import Cloud
from repro.hfl.config import HFLConfig
from repro.hfl.device import Device, LocalUpdateResult
from repro.hfl.edge import Edge
from repro.hfl.metrics import (
    TrainingHistory,
    evaluate,
    evaluate_accuracy,
    evaluate_loss,
)
from repro.hfl.latency import LatencyConfig, LatencySimulator
from repro.hfl.telemetry import EdgeRoundRecord, TelemetryRecorder
from repro.hfl.trainer import HFLTrainer, TrainingResult

__all__ = [
    "Cloud",
    "HFLConfig",
    "Device",
    "LocalUpdateResult",
    "Edge",
    "TrainingHistory",
    "TelemetryRecorder",
    "LatencyConfig",
    "LatencySimulator",
    "EdgeRoundRecord",
    "evaluate",
    "evaluate_accuracy",
    "evaluate_loss",
    "HFLTrainer",
    "TrainingResult",
]

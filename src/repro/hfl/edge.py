"""Edges: device sampling execution and the Eq. (5) aggregation."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.hfl.device import LocalUpdateResult
from repro.prof import profile_site
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_finite, check_positive


class Edge:
    """One edge server: holds the edge model ``w^t_n`` between syncs."""

    def __init__(self, edge_id: int, capacity: float, model_dim: int) -> None:
        check_positive("capacity", capacity)
        check_positive("model_dim", model_dim)
        self.edge_id = edge_id
        self.capacity = float(capacity)
        self.model = np.zeros(model_dim)

    def set_model(self, flat: np.ndarray) -> None:
        """Load the edge model (e.g. the broadcast global model)."""
        flat = np.asarray(flat, dtype=float)
        if flat.shape != self.model.shape:
            raise ValueError(
                f"model must have shape {self.model.shape}, got {flat.shape}"
            )
        self.model = flat.copy()

    @staticmethod
    def draw_participation(
        probabilities: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Independent Bernoulli draws of the indicators ``1^t_{m,n}``."""
        probabilities = np.asarray(probabilities, dtype=float)
        if np.any(probabilities < 0) or np.any(probabilities > 1):
            raise ValueError("probabilities must be in [0, 1]")
        rng = as_generator(rng)
        return rng.random(probabilities.shape) < probabilities

    def aggregate(
        self,
        member_devices: Sequence[int],
        probabilities: np.ndarray,
        results: Dict[int, LocalUpdateResult],
        mode: str = "delta",
        renormalize: bool = False,
    ) -> np.ndarray:
        """Aggregate the sampled devices' models (Eq. (5)) into ``w^{t+1}_n``.

        Parameters
        ----------
        member_devices:
            The full member set ``M^t_n`` (participants and not).
        probabilities:
            The strategy ``Q^t_n`` aligned with ``member_devices``.
        results:
            Local-update results keyed by device id, for exactly the
            devices whose indicator was 1.
        mode:
            ``"delta"`` aggregates inverse-probability-weighted model
            *updates* around the previous edge model — the unbiased
            gradient updating of Lemma 1, and numerically stable.
            ``"model"`` is the literal Eq. (5) raw-model sum (its
            realized weights only sum to 1 in expectation, the variance
            source §III-B.2 discusses).  ``"normalized"`` divides the
            raw-model sum by the realized weight total (biased, low
            variance).  When no member participated, the edge keeps its
            previous model.
        renormalize:
            Divide the inverse-probability weights by their realized sum
            so they sum to 1 over the devices actually present in
            ``results``.  The trainer sets this when a fault dropped at
            least one sampled upload: the realized participation
            probability is then no longer the strategy's ``q``, so the
            raw Eq. (5) weights would over- or under-shoot and a
            survivor-weighted average is the graceful degradation.
            No-op for the already-normalized modes (``"normalized"``,
            ``"fedavg"``).
        """
        if mode not in ("delta", "model", "normalized", "fedavg"):
            raise ValueError(f"unknown aggregation mode {mode!r}")
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (len(member_devices),):
            raise ValueError(
                f"probabilities must align with member_devices: "
                f"{probabilities.shape} vs {len(member_devices)}"
            )
        if not results:
            return self.model

        # The full-member walk is a documented city-scale hotspot
        # (O(|M^t_n|) per round); the profiling site is a no-op unless a
        # profiler is installed (see repro.prof).
        with profile_site("hfl", "edge_aggregate", edge=self.edge_id):
            member_count = len(member_devices)
            total_weight = 0.0
            accumulator = np.zeros_like(self.model)
            for device_id, q in zip(member_devices, probabilities):
                result = results.get(device_id)
                if result is None:
                    continue
                if q <= 0:
                    raise ValueError(
                        f"device {device_id} participated with probability {q}"
                    )
                if mode == "fedavg":
                    weight = 1.0 / len(results)
                else:
                    weight = 1.0 / (member_count * q)
                total_weight += weight
                if mode in ("delta", "fedavg"):
                    accumulator += weight * (result.final_model - self.model)
                else:
                    accumulator += weight * result.final_model

            if renormalize and mode in ("delta", "model"):
                accumulator = accumulator / total_weight
            if mode in ("delta", "fedavg"):
                self.model = self.model + accumulator
            elif mode == "model":
                self.model = accumulator
            else:  # normalized
                self.model = accumulator / total_weight
        check_finite("aggregated edge model", self.model)
        return self.model

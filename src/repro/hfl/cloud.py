"""Cloud server: Eq. (6) global aggregation and broadcast."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hfl.edge import Edge
from repro.utils.validation import check_finite, check_positive


class Cloud:
    """Aggregates edge models into the global model ``w^{t+1}`` (Eq. (6)).

    Each edge is weighted by the number of devices it currently
    coordinates, ``|M^t_n| / |M|``; an edge with no devices this step
    contributes nothing (its weight is zero).
    """

    def __init__(self, model_dim: int) -> None:
        check_positive("model_dim", model_dim)
        self.model = np.zeros(model_dim)

    def aggregate(self, edges: Sequence[Edge], member_counts: np.ndarray) -> np.ndarray:
        """Compute ``w^{t+1} = Σ_n (|M^t_n| / |M|) w^{t+1}_n``."""
        return self.aggregate_models([edge.model for edge in edges], member_counts)

    def aggregate_models(
        self, models: Sequence[np.ndarray], member_counts: np.ndarray
    ) -> np.ndarray:
        """Eq. (6) over explicit flat models.

        The trainer passes the uploads that actually arrived — under
        sync faults an edge's slot may hold its *stale* last-synced
        model rather than ``edge.model``.

        An empty model list and an all-zero count vector are rejected
        explicitly: both would otherwise produce a silent ``0/0`` NaN
        divide (every weight undefined) and poison the global model.
        """
        if len(models) == 0:
            raise ValueError("cannot aggregate an empty edge-model list")
        member_counts = np.asarray(member_counts, dtype=float)
        if member_counts.shape != (len(models),):
            raise ValueError(
                f"member_counts must align with models: "
                f"{member_counts.shape} vs {len(models)}"
            )
        if np.any(member_counts < 0):
            raise ValueError("member counts must be non-negative")
        total = member_counts.sum()
        if total == 0:
            raise ValueError(
                "no devices in the system at this step "
                "(all member counts are zero)"
            )
        aggregate = np.zeros_like(self.model)
        for model, count in zip(models, member_counts):
            if count > 0:
                aggregate += (count / total) * model
        check_finite("aggregated cloud model", aggregate)
        self.model = aggregate
        return self.model

    def broadcast(self, edges: Sequence[Edge]) -> None:
        """Distribute the global model to every edge (start of a sync round)."""
        for edge in edges:
            edge.set_model(self.model)

"""Wall-clock latency simulation for HFL rounds.

The paper reports convergence in *time steps*, noting (§IV-B.2) that it
also "measure[s] the training time cost of achieving the target
accuracy".  This module converts a run's participation pattern into
simulated wall-clock time under a standard MEC latency model:

- **compute**: each device ``m`` trains at a heterogeneous speed; one
  time step costs ``I · batch · flops_per_sample / speed_m`` seconds;
- **uplink**: a participant uploads the model over its edge's shared
  channel, ``model_bits / (bandwidth_n / participants)`` — the channel
  capacity ``K_n`` of Eq. (3) exists exactly because this term grows
  with the number of concurrent participants;
- **synchronous rounds**: a step completes when its *slowest*
  participant finishes (the straggler effect Oort's system utility
  targets), plus the edge-to-cloud latency every ``T_g`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LatencyConfig:
    """Parameters of the round-latency model.

    Speeds are log-normal across devices (σ = ``speed_sigma``), the
    usual model for device heterogeneity in FL system papers.
    """

    compute_seconds_per_step: float = 1.0
    speed_sigma: float = 0.5
    model_megabytes: float = 1.0
    edge_bandwidth_mbps: float = 100.0
    cloud_round_trip_seconds: float = 2.0

    def __post_init__(self) -> None:
        check_positive("compute_seconds_per_step", self.compute_seconds_per_step)
        if self.speed_sigma < 0:
            raise ValueError(f"speed_sigma must be >= 0, got {self.speed_sigma}")
        check_positive("model_megabytes", self.model_megabytes)
        check_positive("edge_bandwidth_mbps", self.edge_bandwidth_mbps)
        if self.cloud_round_trip_seconds < 0:
            raise ValueError("cloud_round_trip_seconds must be >= 0")


class LatencySimulator:
    """Simulates per-step wall-clock latency from participation patterns."""

    def __init__(
        self,
        num_devices: int,
        config: Optional[LatencyConfig] = None,
        rng: RngLike = None,
    ) -> None:
        check_positive("num_devices", num_devices)
        self.config = config if config is not None else LatencyConfig()
        rng = as_generator(rng)
        #: Per-device speed multiplier (1.0 = reference device).
        self.speeds = rng.lognormal(
            mean=0.0, sigma=self.config.speed_sigma, size=num_devices
        )

    def compute_seconds(self, device: int) -> float:
        """Local-training time of one step on ``device``."""
        return self.config.compute_seconds_per_step / self.speeds[device]

    def upload_seconds(self, num_concurrent: int) -> float:
        """Model upload time when ``num_concurrent`` devices share the edge
        channel equally."""
        check_positive("num_concurrent", num_concurrent)
        per_device_mbps = self.config.edge_bandwidth_mbps / num_concurrent
        return self.config.model_megabytes * 8.0 / per_device_mbps

    def step_seconds(self, participants_per_edge: Dict[int, Sequence[int]]) -> float:
        """Wall-clock duration of one synchronous time step.

        Edges run in parallel (Algorithm 1 line 2); within an edge the
        step waits for its slowest participant's compute plus the shared
        upload.  An idle step (no participants anywhere) costs 0.
        """
        edge_times = []
        for _edge, participants in participants_per_edge.items():
            if not len(participants):
                continue
            slowest = max(self.compute_seconds(m) for m in participants)
            edge_times.append(slowest + self.upload_seconds(len(participants)))
        return max(edge_times) if edge_times else 0.0

    def run_seconds(
        self,
        participants_per_step: List[Dict[int, Sequence[int]]],
        sync_interval: int,
    ) -> np.ndarray:
        """Cumulative wall-clock time after each step of a run."""
        check_positive("sync_interval", sync_interval)
        elapsed = 0.0
        cumulative = np.zeros(len(participants_per_step))
        for t, per_edge in enumerate(participants_per_step):
            elapsed += self.step_seconds(per_edge)
            if t % sync_interval == 0:
                elapsed += self.config.cloud_round_trip_seconds
            cumulative[t] = elapsed
        return cumulative

    def time_to_step(
        self,
        participants_per_step: List[Dict[int, Sequence[int]]],
        sync_interval: int,
        step: int,
    ) -> float:
        """Simulated seconds until time step ``step`` (1-indexed) completes."""
        if not 1 <= step <= len(participants_per_step):
            raise ValueError(
                f"step must be in [1, {len(participants_per_step)}], got {step}"
            )
        return float(
            self.run_seconds(participants_per_step, sync_interval)[step - 1]
        )

"""Mobile devices: local datasets and the Eq. (4) local-updating loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.dataset import Dataset
from repro.hotpath import hotpath_enabled
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LocalUpdateResult:
    """Outcome of one device's participation in one time step.

    ``grad_sq_norms`` holds ``‖g_m(w^{t,τ}, ξ^{t,τ})‖²`` for each of the
    I local steps — the training experience MACH buffers via Eq. (14).
    """

    device_id: int
    final_model: np.ndarray
    grad_sq_norms: List[float]
    mean_loss: float

    @property
    def mean_grad_sq_norm(self) -> float:
        return float(np.mean(self.grad_sq_norms))


class Device:
    """One mobile device holding a private local dataset."""

    def __init__(self, device_id: int, dataset: Dataset) -> None:
        if len(dataset) == 0:
            raise ValueError(f"device {device_id} has an empty dataset")
        self.device_id = device_id
        self.dataset = dataset

    def local_update(
        self,
        start_model: np.ndarray,
        model: Model,
        local_epochs: int,
        learning_rate: float,
        batch_size: int,
        rng: RngLike = None,
    ) -> LocalUpdateResult:
        """Run Eq. (4): I plain-SGD steps from the downloaded edge model.

        ``model`` is a shared scratch network — the trainer keeps a
        single instance per run and the device loads/saves flat
        parameter vectors around it, so a 100-device population does not
        hold 100 model copies.
        """
        check_positive("local_epochs", local_epochs)
        check_positive("learning_rate", learning_rate)
        check_positive("batch_size", batch_size)
        rng = as_generator(rng)
        loss_fn = SoftmaxCrossEntropy()

        grad_sq_norms: List[float] = []
        losses: List[float] = []
        if hotpath_enabled():
            # Aliased + batched path: the model's parameters are views
            # into its canonical flat buffer, so one load_flat installs
            # w^t_n and the fused sgd_lr mode applies every
            # w^{t,τ+1} = w^{t,τ} − γ g step as a single vector op — no
            # per-τ load_flat walk.  All I minibatches are
            # pre-drawn in one gather; the index draws make the same
            # rng.integers calls in the same order as the reference
            # loop, keeping the random stream bit-identical.
            model.load_flat(start_model)
            xs, ys = self.dataset.sample_batches(
                local_epochs, batch_size, rng=rng
            )
            for tau in range(local_epochs):
                loss, grad = model.loss_and_grad(
                    xs[tau], ys[tau], loss_fn, sgd_lr=learning_rate
                )
                grad_sq_norms.append(float(grad @ grad))
                losses.append(loss)
            final_model = model.flat_copy()
        else:
            model.load_flat(start_model)
            flat = model.flat_copy()
            for _tau in range(local_epochs):
                x, y = self.dataset.sample_batch(batch_size, rng=rng)
                loss, grad = model.loss_and_grad(x, y, loss_fn)
                grad_sq_norms.append(float(grad @ grad))
                losses.append(loss)
                # w^{t,τ+1} = w^{t,τ} − γ g_m(w^{t,τ}, ξ^{t,τ})
                flat -= learning_rate * grad
                model.load_flat(flat)
            final_model = flat
        return LocalUpdateResult(
            device_id=self.device_id,
            final_model=final_model,
            grad_sq_norms=grad_sq_norms,
            mean_loss=float(np.mean(losses)),
        )

    def probe_grad_sq_norm(
        self,
        at_model: np.ndarray,
        model: Model,
        batch_size: int,
        rng: RngLike = None,
    ) -> float:
        """Squared gradient norm at ``at_model`` on one fresh minibatch.

        Used by the trainer to feed oracle samplers (MACH-P) the true
        per-step training experience of *every* device, including those
        not sampled.
        """
        rng = as_generator(rng)
        model.load_flat(at_model)
        x, y = self.dataset.sample_batch(batch_size, rng=rng)
        _loss, grad = model.loss_and_grad(x, y)
        return float(grad @ grad)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Device(id={self.device_id}, samples={len(self.dataset)})"

"""Evaluation metrics and training-history bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.hotpath import hotpath_enabled
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.model import Model


def evaluate_accuracy(model: Model, dataset: Dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``dataset``."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    predictions = model.predict(dataset.x, batch_size=batch_size)
    return float(np.mean(predictions == dataset.y))


def evaluate_loss(model: Model, dataset: Dataset, batch_size: int = 256) -> float:
    """Mean cross-entropy of ``model`` on ``dataset``."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    loss_fn = SoftmaxCrossEntropy()
    total, count = 0.0, 0
    for start in range(0, len(dataset), batch_size):
        x = dataset.x[start : start + batch_size]
        y = dataset.y[start : start + batch_size]
        logits = model.forward(x, training=False)
        total += loss_fn.forward(logits, y) * len(y)
        count += len(y)
    return total / count


def evaluate(
    model: Model, dataset: Dataset, batch_size: int = 256
) -> Tuple[float, float]:
    """Single-pass ``(accuracy, loss)`` of ``model`` on ``dataset``.

    :func:`evaluate_accuracy` and :func:`evaluate_loss` each run a full
    forward pass over the test set; the trainer needs both at every
    evaluation point, so this fuses them — one forward per batch, the
    logits feeding both the argmax and the cross-entropy.  Inference
    forwards are deterministic (dropout off), so the result is
    bit-identical to the two separate passes; with the hot path
    disabled this falls back to exactly those.
    """
    if not hotpath_enabled():
        return (
            evaluate_accuracy(model, dataset, batch_size=batch_size),
            evaluate_loss(model, dataset, batch_size=batch_size),
        )
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    loss_fn = SoftmaxCrossEntropy()
    predictions = []
    total, count = 0.0, 0
    for start in range(0, len(dataset), batch_size):
        x = dataset.x[start : start + batch_size]
        y = dataset.y[start : start + batch_size]
        logits = model.forward(x, training=False)
        predictions.append(np.argmax(logits, axis=1))
        total += loss_fn.forward(logits, y) * len(y)
        count += len(y)
    accuracy = float(np.mean(np.concatenate(predictions) == dataset.y))
    return accuracy, total / count


@dataclass
class TrainingHistory:
    """Per-evaluation-point record of one HFL run."""

    steps: List[int] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)
    loss: List[float] = field(default_factory=list)

    def record(self, step: int, accuracy: float, loss: float) -> None:
        if self.steps and step <= self.steps[-1]:
            raise ValueError(
                f"evaluation steps must be increasing, got {step} after "
                f"{self.steps[-1]}"
            )
        self.steps.append(step)
        self.accuracy.append(accuracy)
        self.loss.append(loss)

    def time_to_accuracy(self, target: float) -> Optional[int]:
        """First recorded step whose accuracy reaches ``target`` (None if never).

        This is the paper's headline metric: "the time steps of reaching
        the target accuracy" (§IV-A.2).
        """
        for step, acc in zip(self.steps, self.accuracy):
            if acc >= target:
                return step
        return None

    def best_accuracy(self) -> float:
        if not self.accuracy:
            raise ValueError("history is empty")
        return max(self.accuracy)

    def final_accuracy(self) -> float:
        if not self.accuracy:
            raise ValueError("history is empty")
        return self.accuracy[-1]

    def smoothed_accuracy(self, window: int = 3) -> List[float]:
        """Trailing moving average — the paper smooths over 3 repetitions."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        smoothed = []
        for i in range(len(self.accuracy)):
            lo = max(0, i - window + 1)
            smoothed.append(float(np.mean(self.accuracy[lo : i + 1])))
        return smoothed

"""Per-step telemetry for HFL runs.

A :class:`TelemetryRecorder` can be attached to
:class:`~repro.hfl.trainer.HFLTrainer` to capture, for every (step,
edge) round: the member set size, the sampling strategy's spread, the
realized participant count and the participants' gradient statistics.
The derived metrics — participation fairness, probability concentration
and per-edge load — power the ablation analyses and let downstream
users debug sampling strategies without touching the engine.

Under an active fault profile the recorder additionally tracks fault
counters per kind, the degraded rounds (rounds that lost at least one
sampled upload and aggregated over the survivors), and the edge→cloud
sync attempts with their simulated backoff.  The whole recorder state
round-trips through :meth:`TelemetryRecorder.state_dict` so checkpoint
resume reproduces the telemetry stream exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np


@dataclass(frozen=True)
class EdgeRoundRecord:
    """Telemetry for a single (time step, edge) training round."""

    t: int
    edge: int
    num_members: int
    num_participants: int
    prob_sum: float
    prob_max: float
    prob_min: float
    mean_grad_sq_norm: Optional[float]
    mean_loss: Optional[float]

    @property
    def prob_spread(self) -> float:
        """max/min probability ratio (1.0 for uniform strategies).

        Contract for degenerate rounds:

        - no members, or every probability is zero (nobody samplable):
          ``1.0`` — the neutral "no spread" value, so empty rounds do
          not poison averaged diagnostics;
        - some member has zero probability while another is positive:
          ``inf`` — the strategy hard-excludes a member, which is an
          infinite concentration ratio by definition.  Aggregations
          over rounds must treat ``inf`` explicitly;
          :meth:`TelemetryRecorder.mean_prob_spread` skips such rounds
          and reports how many were skipped via
          :meth:`TelemetryRecorder.hard_exclusion_rounds`.
        """
        if self.num_members == 0 or self.prob_max <= 0:
            return 1.0
        if self.prob_min <= 0:
            return float("inf")
        return self.prob_max / self.prob_min


@dataclass(frozen=True)
class DegradedRoundRecord:
    """A round that lost at least one sampled upload to a fault."""

    t: int
    edge: int
    #: Devices whose participation indicator was 1 (pre-fault).
    num_sampled: int
    #: Sampled uploads lost, by fault kind.
    failures: Dict[str, int]

    @property
    def num_failed(self) -> int:
        return sum(self.failures.values())

    @property
    def lost_everyone(self) -> bool:
        """The round lost every sampled upload (edge kept its model)."""
        return self.num_failed == self.num_sampled


@dataclass(frozen=True)
class ChurnRecord:
    """One step's population change (open-population churn)."""

    t: int
    #: Devices that enrolled this step.
    joined: List[int]
    #: Devices that de-enrolled this step.
    left: List[int]
    #: Active-set size after the transition.
    num_active: int


@dataclass(frozen=True)
class LateAdmitRecord:
    """A parked straggler upload admitted into a later aggregate."""

    t: int
    edge: int
    device: int
    #: The round the upload was computed in.
    born_step: int
    #: ``t - born_step``, bounded by the configured ``max_staleness``.
    age: int
    #: Age-discount factor applied to the upload's IPW weight.
    scale: float


@dataclass(frozen=True)
class LateDropRecord:
    """A parked upload discarded at admission time.

    The only drop reason today is churn: the device de-enrolled while
    its upload sat in the staleness buffer (the mid-round-departure ×
    late-admit interaction).
    """

    t: int
    edge: int
    device: int
    born_step: int
    age: int


@dataclass(frozen=True)
class SyncAttemptRecord:
    """One edge's edge→cloud attempt sequence at a sync step."""

    t: int
    edge: int
    failed_attempts: int
    #: All retries failed; the cloud used the edge's stale model.
    used_stale: bool
    #: Simulated exponential-backoff seconds spent on the failures.
    backoff_seconds: float


class TelemetryRecorder:
    """Collects per-round records and computes summary diagnostics."""

    def __init__(self) -> None:
        self.records: List[EdgeRoundRecord] = []
        self._participation: Dict[int, int] = {}
        self.fault_counts: Dict[str, int] = {}
        self.degraded_rounds: List[DegradedRoundRecord] = []
        self.sync_attempts: List[SyncAttemptRecord] = []
        #: Open-population churn and bounded-staleness streams — kept
        #: outside ``fault_counts`` on purpose: churn and late admits
        #: are population dynamics, not injected faults, and mixing the
        #: keys would change every existing fault summary.
        self.churn_records: List[ChurnRecord] = []
        self.late_admits: List[LateAdmitRecord] = []
        self.late_drops: List[LateDropRecord] = []
        #: Accumulated wall-clock seconds per engine phase (plan /
        #: execute / finish / sync / eval) — see :meth:`record_phase`.
        self.phase_seconds: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}

    # -- hooks called by the trainer ---------------------------------------

    def record_round(
        self,
        t: int,
        edge: int,
        members: np.ndarray,
        probabilities: np.ndarray,
        participant_ids: List[int],
        grad_sq_norms: List[float],
        losses: List[float],
    ) -> None:
        if len(members) != len(probabilities):
            raise ValueError("members and probabilities must align")
        self.records.append(
            EdgeRoundRecord(
                t=t,
                edge=edge,
                num_members=len(members),
                num_participants=len(participant_ids),
                prob_sum=float(np.sum(probabilities)) if len(probabilities) else 0.0,
                prob_max=float(np.max(probabilities)) if len(probabilities) else 0.0,
                prob_min=float(np.min(probabilities)) if len(probabilities) else 0.0,
                mean_grad_sq_norm=(
                    float(np.mean(grad_sq_norms)) if grad_sq_norms else None
                ),
                mean_loss=float(np.mean(losses)) if losses else None,
            )
        )
        for device in participant_ids:
            self._participation[device] = self._participation.get(device, 0) + 1

    def record_faults(
        self, t: int, edge: int, failures: Mapping[int, str], num_sampled: int
    ) -> None:
        """Record one degraded round: ``failures`` maps device → fault kind."""
        if not failures:
            return
        by_kind: Dict[str, int] = {}
        for kind in failures.values():
            by_kind[kind] = by_kind.get(kind, 0) + 1
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        self.degraded_rounds.append(
            DegradedRoundRecord(
                t=t, edge=edge, num_sampled=num_sampled, failures=by_kind
            )
        )

    def record_sync_attempt(
        self,
        t: int,
        edge: int,
        failed_attempts: int,
        used_stale: bool,
        backoff_seconds: float,
    ) -> None:
        """Record one edge's edge→cloud attempt sequence (failures only)."""
        self.sync_attempts.append(
            SyncAttemptRecord(
                t=t,
                edge=edge,
                failed_attempts=failed_attempts,
                used_stale=used_stale,
                backoff_seconds=backoff_seconds,
            )
        )
        if failed_attempts > 0:
            self.fault_counts["sync_failure"] = (
                self.fault_counts.get("sync_failure", 0) + failed_attempts
            )
        if used_stale:
            self.fault_counts["stale_sync"] = (
                self.fault_counts.get("stale_sync", 0) + 1
            )

    def record_churn(
        self, t: int, joined: List[int], left: List[int], num_active: int
    ) -> None:
        """Record one step's population change (no-op when nothing moved)."""
        if not joined and not left:
            return
        self.churn_records.append(
            ChurnRecord(
                t=t,
                joined=[int(m) for m in joined],
                left=[int(m) for m in left],
                num_active=int(num_active),
            )
        )

    def record_late_admit(
        self, t: int, edge: int, device: int, born_step: int, age: int,
        scale: float,
    ) -> None:
        """Record a parked upload admitted with an age-discounted weight."""
        self.late_admits.append(
            LateAdmitRecord(
                t=t, edge=edge, device=device, born_step=born_step,
                age=age, scale=scale,
            )
        )

    def record_late_drop(
        self, t: int, edge: int, device: int, born_step: int, age: int
    ) -> None:
        """Record a parked upload discarded at admission (device gone)."""
        self.late_drops.append(
            LateDropRecord(
                t=t, edge=edge, device=device, born_step=born_step, age=age
            )
        )

    def record_phase(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock time spent in one engine phase.

        The trainer calls this once per phase per time step (and per
        evaluation point for ``eval``).  Phase timings are host-specific
        observability, *not* part of the deterministic run record: they
        are deliberately excluded from :meth:`state_dict`, so a resumed
        run's telemetry stream still compares equal to an uninterrupted
        one bit for bit.
        """
        if seconds < 0:
            raise ValueError(f"phase seconds must be >= 0, got {seconds}")
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1

    # -- summaries ----------------------------------------------------------

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: seconds, call count and share of the total.

        The shares answer the first profiling question — *where does a
        time step go?* — without an external profiler;
        ``benchmarks/bench_hotpath.py`` renders this table before and
        after the hot-path optimizations.
        """
        total = sum(self.phase_seconds.values())
        return {
            phase: {
                "seconds": seconds,
                "calls": float(self.phase_calls.get(phase, 0)),
                "share": (seconds / total) if total > 0 else 0.0,
            }
            for phase, seconds in sorted(self.phase_seconds.items())
        }

    def participation_counts(self) -> Dict[int, int]:
        return dict(self._participation)

    def jain_fairness(self) -> float:
        """Jain's fairness index of per-device participation counts.

        1.0 means perfectly even participation; 1/n means one device
        absorbed everything.  Uniform sampling should score high; a
        sharply biased strategy lower.
        """
        counts = np.array(list(self._participation.values()), dtype=float)
        if counts.size == 0 or counts.sum() == 0:
            return 1.0
        return float(counts.sum() ** 2 / (counts.size * np.sum(counts**2)))

    def mean_prob_spread(self) -> float:
        """Average max/min probability ratio across recorded rounds.

        Rounds whose spread is ``inf`` (a member hard-excluded with
        zero probability — see :attr:`EdgeRoundRecord.prob_spread`) are
        skipped here; count them via :meth:`hard_exclusion_rounds`.
        """
        spreads = [
            r.prob_spread
            for r in self.records
            if r.num_members > 0 and np.isfinite(r.prob_spread)
        ]
        if not spreads:
            return 1.0
        return float(np.mean(spreads))

    def hard_exclusion_rounds(self) -> int:
        """Rounds where the strategy gave some member zero probability
        while sampling others (``prob_spread == inf``)."""
        return sum(1 for r in self.records if np.isinf(r.prob_spread))

    def edge_load(self) -> Dict[int, float]:
        """Mean participants per round for each edge."""
        totals: Dict[int, List[int]] = {}
        for record in self.records:
            totals.setdefault(record.edge, []).append(record.num_participants)
        return {edge: float(np.mean(v)) for edge, v in totals.items()}

    def capacity_violations(self, tolerance: float = 1e-9) -> int:
        """Rounds whose probability mass exceeded the recorded budget.

        The trainer clips probabilities into [0, 1], so ``prob_sum``
        bounded by the member count is structural; this counts rounds
        where Σq exceeded the number of members (impossible) as a
        self-check and is expected to return 0.
        """
        return sum(
            1
            for r in self.records
            if r.prob_sum > r.num_members + tolerance
        )

    def loss_series(self) -> List[float]:
        """Mean participant loss per recorded round (None rounds skipped)."""
        return [r.mean_loss for r in self.records if r.mean_loss is not None]

    def fault_summary(self) -> Dict[str, int]:
        """Total fault events by kind (empty for a fault-free run)."""
        return dict(self.fault_counts)

    def lost_round_count(self) -> int:
        """Rounds where every sampled upload failed (edge kept its model)."""
        return sum(1 for r in self.degraded_rounds if r.lost_everyone)

    def stale_sync_count(self) -> int:
        """Sync steps where an edge exhausted its retries and the cloud
        fell back to that edge's last successfully synced model."""
        return sum(1 for r in self.sync_attempts if r.used_stale)

    def simulated_backoff_seconds(self) -> float:
        """Total simulated edge→cloud retry backoff across the run."""
        return float(sum(r.backoff_seconds for r in self.sync_attempts))

    def devices_joined(self) -> int:
        """Total churn arrivals across the run."""
        return sum(len(r.joined) for r in self.churn_records)

    def devices_left(self) -> int:
        """Total churn departures across the run."""
        return sum(len(r.left) for r in self.churn_records)

    def late_admit_count(self) -> int:
        """Parked straggler uploads that made it into an aggregate."""
        return len(self.late_admits)

    def late_drop_count(self) -> int:
        """Parked uploads discarded because the device de-enrolled."""
        return len(self.late_drops)

    def mean_admitted_age(self) -> Optional[float]:
        """Mean staleness age of the admitted late uploads (None if none)."""
        if not self.late_admits:
            return None
        return float(np.mean([r.age for r in self.late_admits]))

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the full telemetry stream.

        Phase wall-times (:meth:`record_phase`) are intentionally *not*
        part of the snapshot: they measure the host, not the run, and
        including them would break the exact-equality contract between
        a resumed and an uninterrupted run's telemetry state.
        """
        return {
            "records": [asdict(r) for r in self.records],
            "participation": {str(k): v for k, v in self._participation.items()},
            "fault_counts": dict(self.fault_counts),
            "degraded_rounds": [asdict(r) for r in self.degraded_rounds],
            "sync_attempts": [asdict(r) for r in self.sync_attempts],
            "churn_records": [asdict(r) for r in self.churn_records],
            "late_admits": [asdict(r) for r in self.late_admits],
            "late_drops": [asdict(r) for r in self.late_drops],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output, replacing current contents.

        Phase timings are cleared too: they are excluded from
        :meth:`state_dict` (host observability, not run state), so a
        recorder reused across a resume must not report the pre-restore
        accumulations as if they belonged to the restored run.
        """
        self.phase_seconds = {}
        self.phase_calls = {}
        self.records = [EdgeRoundRecord(**r) for r in state.get("records", [])]
        self._participation = {
            int(k): int(v) for k, v in state.get("participation", {}).items()
        }
        self.fault_counts = {
            str(k): int(v) for k, v in state.get("fault_counts", {}).items()
        }
        self.degraded_rounds = [
            DegradedRoundRecord(
                t=r["t"],
                edge=r["edge"],
                num_sampled=r["num_sampled"],
                failures={str(k): int(v) for k, v in r["failures"].items()},
            )
            for r in state.get("degraded_rounds", [])
        ]
        self.sync_attempts = [
            SyncAttemptRecord(**r) for r in state.get("sync_attempts", [])
        ]
        # .get defaults keep pre-churn telemetry snapshots loadable.
        self.churn_records = [
            ChurnRecord(
                t=int(r["t"]),
                joined=[int(m) for m in r["joined"]],
                left=[int(m) for m in r["left"]],
                num_active=int(r["num_active"]),
            )
            for r in state.get("churn_records", [])
        ]
        self.late_admits = [
            LateAdmitRecord(**r) for r in state.get("late_admits", [])
        ]
        self.late_drops = [
            LateDropRecord(**r) for r in state.get("late_drops", [])
        ]

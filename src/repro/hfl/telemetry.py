"""Per-step telemetry for HFL runs.

A :class:`TelemetryRecorder` can be attached to
:class:`~repro.hfl.trainer.HFLTrainer` to capture, for every (step,
edge) round: the member set size, the sampling strategy's spread, the
realized participant count and the participants' gradient statistics.
The derived metrics — participation fairness, probability concentration
and per-edge load — power the ablation analyses and let downstream
users debug sampling strategies without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class EdgeRoundRecord:
    """Telemetry for a single (time step, edge) training round."""

    t: int
    edge: int
    num_members: int
    num_participants: int
    prob_sum: float
    prob_max: float
    prob_min: float
    mean_grad_sq_norm: Optional[float]
    mean_loss: Optional[float]

    @property
    def prob_spread(self) -> float:
        """max/min probability ratio (1.0 for uniform strategies).

        Contract for degenerate rounds:

        - no members, or every probability is zero (nobody samplable):
          ``1.0`` — the neutral "no spread" value, so empty rounds do
          not poison averaged diagnostics;
        - some member has zero probability while another is positive:
          ``inf`` — the strategy hard-excludes a member, which is an
          infinite concentration ratio by definition.  Aggregations
          over rounds must treat ``inf`` explicitly;
          :meth:`TelemetryRecorder.mean_prob_spread` skips such rounds
          and reports how many were skipped via
          :meth:`TelemetryRecorder.hard_exclusion_rounds`.
        """
        if self.num_members == 0 or self.prob_max <= 0:
            return 1.0
        if self.prob_min <= 0:
            return float("inf")
        return self.prob_max / self.prob_min


class TelemetryRecorder:
    """Collects per-round records and computes summary diagnostics."""

    def __init__(self) -> None:
        self.records: List[EdgeRoundRecord] = []
        self._participation: Dict[int, int] = {}

    # -- hooks called by the trainer ---------------------------------------

    def record_round(
        self,
        t: int,
        edge: int,
        members: np.ndarray,
        probabilities: np.ndarray,
        participant_ids: List[int],
        grad_sq_norms: List[float],
        losses: List[float],
    ) -> None:
        if len(members) != len(probabilities):
            raise ValueError("members and probabilities must align")
        self.records.append(
            EdgeRoundRecord(
                t=t,
                edge=edge,
                num_members=len(members),
                num_participants=len(participant_ids),
                prob_sum=float(np.sum(probabilities)) if len(probabilities) else 0.0,
                prob_max=float(np.max(probabilities)) if len(probabilities) else 0.0,
                prob_min=float(np.min(probabilities)) if len(probabilities) else 0.0,
                mean_grad_sq_norm=(
                    float(np.mean(grad_sq_norms)) if grad_sq_norms else None
                ),
                mean_loss=float(np.mean(losses)) if losses else None,
            )
        )
        for device in participant_ids:
            self._participation[device] = self._participation.get(device, 0) + 1

    # -- summaries ----------------------------------------------------------

    def participation_counts(self) -> Dict[int, int]:
        return dict(self._participation)

    def jain_fairness(self) -> float:
        """Jain's fairness index of per-device participation counts.

        1.0 means perfectly even participation; 1/n means one device
        absorbed everything.  Uniform sampling should score high; a
        sharply biased strategy lower.
        """
        counts = np.array(list(self._participation.values()), dtype=float)
        if counts.size == 0 or counts.sum() == 0:
            return 1.0
        return float(counts.sum() ** 2 / (counts.size * np.sum(counts**2)))

    def mean_prob_spread(self) -> float:
        """Average max/min probability ratio across recorded rounds.

        Rounds whose spread is ``inf`` (a member hard-excluded with
        zero probability — see :attr:`EdgeRoundRecord.prob_spread`) are
        skipped here; count them via :meth:`hard_exclusion_rounds`.
        """
        spreads = [
            r.prob_spread
            for r in self.records
            if r.num_members > 0 and np.isfinite(r.prob_spread)
        ]
        if not spreads:
            return 1.0
        return float(np.mean(spreads))

    def hard_exclusion_rounds(self) -> int:
        """Rounds where the strategy gave some member zero probability
        while sampling others (``prob_spread == inf``)."""
        return sum(1 for r in self.records if np.isinf(r.prob_spread))

    def edge_load(self) -> Dict[int, float]:
        """Mean participants per round for each edge."""
        totals: Dict[int, List[int]] = {}
        for record in self.records:
            totals.setdefault(record.edge, []).append(record.num_participants)
        return {edge: float(np.mean(v)) for edge, v in totals.items()}

    def capacity_violations(self, tolerance: float = 1e-9) -> int:
        """Rounds whose probability mass exceeded the recorded budget.

        The trainer clips probabilities into [0, 1], so ``prob_sum``
        bounded by the member count is structural; this counts rounds
        where Σq exceeded the number of members (impossible) as a
        self-check and is expected to return 0.
        """
        return sum(
            1
            for r in self.records
            if r.prob_sum > r.num_members + tolerance
        )

    def loss_series(self) -> List[float]:
        """Mean participant loss per recorded round (None rounds skipped)."""
        return [r.mean_loss for r in self.records if r.mean_loss is not None]

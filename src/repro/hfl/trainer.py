"""The HFL training loop — Algorithm 1 of the paper.

Per time step ``t``:

1. every edge ``n`` asks the sampler for its strategy ``Q^t_n`` over the
   devices currently inside it (line 3) and draws the participation
   indicators — the *plan* phase, sequential in the engine;
2. sampled devices run their I local SGD steps from the downloaded edge
   model (lines 5–9) — the *execute* phase, fanned out through the
   pluggable :mod:`repro.runtime` executor (edges are independent within
   a step and devices within an edge, so both levels parallelize);
3. devices feed their gradient experiences back to the sampler (line
   10) and the edge aggregates with inverse-probability weights (line
   11) — the *finish* phase, again sequential in member order;
4. every ``T_g`` steps the cloud aggregates edge models into the global
   model and broadcasts it back (lines 12–13), and the sampler is
   notified (MACH refreshes its UCB estimates on this clock).

Step-synchronous semantics: all strategies of step ``t`` are computed
from the sampler state at the *beginning* of the step, and participation
feedback is applied at the end of the step in (edge, member) order.
Edges in a real deployment act concurrently and cannot observe each
other's same-step feedback, so this is both the faithful reading of
Algorithm 1 and what makes edge-level parallelism deterministic: for a
fixed seed every executor backend produces bit-identical histories.

Robustness (see :mod:`repro.faults` and DESIGN.md §8): when the config
carries an active fault profile, the finish phase screens every sampled
upload through the fault model — departures, stragglers and corrupted
payloads are dropped, the Eq. (5) weights are renormalized over the
survivors, a round that loses everyone keeps the edge's previous model,
and failed devices feed :meth:`~repro.sampling.base.Sampler
.observe_failure` so MACH's UCB learns reliability.  Edge→cloud sync
failures are retried with bounded exponential backoff, falling back to
the edge's last successfully synced model.  All fault draws come from
named ``(step, edge, device)`` seed streams, so the executor-backend
bit-identity contract holds under any profile, and
checkpoint/resume (:class:`repro.faults.TrainerCheckpoint`) replays a
killed run exactly.

Open population (see :mod:`repro.churn` and DESIGN.md §13): an active
churn profile turns the fixed device population into a seeded
arrival/departure stream — departed devices vanish from the samplable
member sets, arrivals are warm-started in the sampler.  With
``max_staleness > 0`` a straggler upload is *parked* instead of
dropped and admitted into a later aggregate with an age-discounted
weight (``staleness_discount ** age``), bounded by the staleness
window.  Both features default off, and when off the trainer follows
exactly the pre-churn code paths and consumes exactly the same seed
streams — bit-identical histories, on every executor backend.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.churn import ChurnProcess, make_churn_process
from repro.data.dataset import Dataset
from repro.faults import FaultModel, TrainerCheckpoint, make_fault_model
from repro.hfl.cloud import Cloud
from repro.hfl.config import HFLConfig
from repro.hfl.device import Device, LocalUpdateResult
from repro.hfl.edge import Edge
from repro.hfl.metrics import TrainingHistory, evaluate
from repro.hfl.telemetry import TelemetryRecorder
from repro.mobility.trace import MobilityTrace
from repro.nn.model import Model
from repro.runtime import (
    EdgeRoundPlan,
    Executor,
    LocalUpdateItem,
    WorkerContext,
    make_executor,
)
from repro.sampling.base import DeviceProfile, Sampler
from repro.topology import make_aggregation, make_topology
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import check_finite


@dataclass
class TrainingResult:
    """Everything a benchmark needs from one finished HFL run."""

    sampler_name: str
    history: TrainingHistory
    steps_run: int
    participation_counts: np.ndarray
    mean_participants_per_step: float
    reached_target_at: Optional[int] = None
    #: Per-evaluation probability spread diagnostics (max/min q per edge).
    diagnostics: Dict[str, float] = field(default_factory=dict)
    #: Total simulated edge→cloud retry backoff accumulated by the run's
    #: latency accounting (0.0 for a fault-free run).
    simulated_backoff_seconds: float = 0.0
    #: Parked straggler uploads admitted into a later aggregate.
    late_admits: int = 0
    #: Parked uploads discarded because the device de-enrolled.
    late_drops: int = 0
    #: Churn arrivals / departures over the run (0 for a closed world).
    devices_joined: int = 0
    devices_left: int = 0
    #: Flat copy of the final cloud model — the bit-identity witness the
    #: service tests compare against the synchronous trainer.
    final_cloud_model: Optional[np.ndarray] = None

    def time_to_accuracy(self, target: float) -> Optional[int]:
        return self.history.time_to_accuracy(target)


@dataclass
class StepOutcome:
    """One completed time step, as yielded by :meth:`HFLTrainer.steps`.

    ``accuracy`` / ``loss`` are ``None`` unless this step hit an
    evaluation point; ``participants`` counts this step's admitted
    uploads (including late stale admits); ``stop`` marks the step that
    ended an early-stopping run.
    """

    step: int
    steps_run: int
    participants: int
    synced: bool
    evaluated: bool
    accuracy: Optional[float] = None
    loss: Optional[float] = None
    reached_target: bool = False
    stop: bool = False
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "steps_run": self.steps_run,
            "participants": self.participants,
            "synced": self.synced,
            "evaluated": self.evaluated,
            "accuracy": self.accuracy,
            "loss": self.loss,
            "reached_target": self.reached_target,
            "stop": self.stop,
            "seconds": self.seconds,
        }


@dataclass
class _PendingRound:
    """One edge's planned round, awaiting its local-update results."""

    edge: Edge
    members: np.ndarray
    probabilities: np.ndarray
    plan: EdgeRoundPlan


@dataclass
class _StaleUpload:
    """A straggler upload parked in the bounded-staleness buffer.

    The upload is frozen as the *delta* against its round's start model
    with its round's IPW weight, so admission is a single discounted
    axpy onto whatever the edge model has become by then (the same
    shape as the delta-mode aggregation it missed).
    """

    device: int
    edge: int
    #: The round the upload was computed in.
    born_step: int
    #: The step whose finish phase admits (or drops) the upload.
    admit_step: int
    #: The Eq. (5) weight the upload would have carried in its round.
    weight: float
    #: ``final_model - round_start_model`` of the local update.
    delta: np.ndarray
    #: Deferred sampler feedback, applied only on admission.
    grad_sq_norms: List[float]
    mean_loss: float


class HFLTrainer:
    """Drives Algorithm 1 over a mobility trace with a pluggable sampler.

    ``executor`` selects the :mod:`repro.runtime` backend the local
    updates run on: ``None`` falls back to ``config.executor`` (default
    ``"serial"``, the in-process reference path), a string is resolved
    via :func:`repro.runtime.make_executor` with ``config.num_workers``,
    and a ready :class:`~repro.runtime.Executor` instance is used as-is
    (the caller keeps ownership and must close it).  Executors the
    trainer builds itself are released by :meth:`close`.

    ``fault_model`` injects failures: ``None`` derives a
    :class:`~repro.faults.SeededFaultModel` from ``config.fault_profile``
    (no model when the profile is absent or inactive); a ready
    :class:`~repro.faults.FaultModel` instance is used as-is (tests
    inject deterministic stubs this way).

    ``churn`` opens the population: ``None`` derives a
    :class:`~repro.churn.ChurnProcess` from ``config.churn_profile``
    (no process when the profile is absent or inactive, which keeps
    the closed-world fast path bit-identical to the pre-churn
    trainer); a ready process instance is used as-is (tests inject
    scripted populations this way).  See DESIGN.md §13.

    ``obs`` attaches a :class:`repro.obs.Observability` handle (event
    log, span tracer, metrics registry, MACH audit trail — any subset).
    Every sink is a pure observer: nothing it records feeds an RNG
    stream, model/sampler state or a ``state_dict``, so an obs-enabled
    run is bit-identical to an obs-disabled one on every executor
    backend and under kill/resume.
    """

    def __init__(
        self,
        model_factory: Callable[[np.random.Generator], Model],
        device_datasets: Sequence[Dataset],
        trace: MobilityTrace,
        sampler: Sampler,
        config: HFLConfig,
        test_dataset: Dataset,
        telemetry: Optional["TelemetryRecorder"] = None,
        executor: Optional[Union[str, Executor]] = None,
        fault_model: Optional[FaultModel] = None,
        churn: Optional[ChurnProcess] = None,
        obs=None,
    ) -> None:
        if len(device_datasets) != trace.num_devices:
            raise ValueError(
                f"trace covers {trace.num_devices} devices but "
                f"{len(device_datasets)} datasets were given"
            )
        if len(test_dataset) == 0:
            raise ValueError("test dataset is empty")
        self.config = config
        self.trace = trace
        self.sampler = sampler
        self.test_dataset = test_dataset
        self.telemetry = telemetry

        self._seeds = SeedSequenceFactory(config.seed)
        # One shared scratch network; all model state moves as flat vectors.
        self.model: Model = model_factory(self._seeds.generator("model-init"))
        dim = self.model.num_parameters

        self.devices: List[Device] = [
            Device(m, ds) for m, ds in enumerate(device_datasets)
        ]
        capacities = config.capacities(trace.num_edges, trace.num_devices)
        self.edges: List[Edge] = [
            Edge(n, capacities[n], dim) for n in range(trace.num_edges)
        ]
        self.cloud = Cloud(dim)

        # Broadcast the common initial model w^0 to cloud and edges.
        initial = self.model.flat_copy()
        self.cloud.model = initial.copy()
        for edge in self.edges:
            edge.set_model(initial)
        #: Per-edge fallback for sync-step upload failures: the last
        #: model each edge successfully contributed to a sync.
        self._last_synced: List[np.ndarray] = [
            initial.copy() for _ in self.edges
        ]

        # Who talks to whom at sync steps, and how the exchanged models
        # combine (see repro.topology).  The default pair (hierarchical
        # + ipw) reproduces the pre-topology trainer bit for bit.
        self.topology = make_topology(
            config.topology,
            num_clusters=config.num_clusters,
            gossip_degree=config.gossip_degree,
        )
        self.topology.bind(trace.num_edges, self._seeds)
        self.aggregation_strategy = make_aggregation(
            config.aggregation_strategy,
            self.topology,
            mixing_weight=config.cluster_mixing_weight,
        )

        profiles = [
            DeviceProfile(
                device_id=m,
                num_samples=len(ds),
                class_distribution=ds.class_distribution(),
            )
            for m, ds in enumerate(device_datasets)
        ]
        self.sampler.setup(profiles, trace.num_edges)

        if fault_model is None:
            fault_model = make_fault_model(config.fault_profile)
        self.fault_model: Optional[FaultModel] = fault_model
        if self.fault_model is not None:
            self.fault_model.bind(trace.num_devices, self._seeds)

        # Open-population churn and the bounded-staleness buffer.  Both
        # default off: with no churn process and max_staleness == 0 the
        # engine follows exactly the pre-churn code paths (the
        # reference-twin bit-identity contract, tested in tests/churn).
        if churn is None:
            churn = make_churn_process(config.churn_profile)
        self.churn: Optional[ChurnProcess] = churn
        if self.churn is not None:
            self.churn.bind(trace.num_devices, self._seeds)
            self.churn.reset()
        self._max_staleness = config.max_staleness
        self._staleness_discount = config.staleness_discount
        self._stale_buffer: List[_StaleUpload] = []

        if executor is None:
            executor = config.executor
        if isinstance(executor, str):
            executor = make_executor(executor, num_workers=config.num_workers)
            self._owns_executor = True
        else:
            self._owns_executor = False
        self.executor: Executor = executor
        self.executor.bind(
            WorkerContext(self.model, self.devices, config.seed)
        )
        #: Incremental round pipeline (the coordinator service sets this):
        #: edge rounds are admitted as they complete via
        #: :meth:`Executor.submit_step` instead of the run_step barrier.
        #: Finishing stays in plan order, so a drained queue is
        #: bit-identical to the synchronous barrier path.
        self.incremental = False

        # Observability sinks.  Imported lazily: repro.obs sits above
        # repro.hfl in the dependency order (its bridge subclasses the
        # telemetry recorder), so a module-level import would cycle.
        from repro.obs.tracing import NULL_TRACER

        self._obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._events = obs.events if obs is not None else None
        self._audit = obs.audit if obs is not None else None
        self._metrics = obs.metrics if obs is not None else None
        self._profiler = getattr(obs, "profiler", None) if obs is not None else None
        self._resources = getattr(obs, "resources", None) if obs is not None else None
        self._health = getattr(obs, "health", None) if obs is not None else None
        self._last_health_verdict: Optional[str] = None
        if self._tracer.enabled:
            # Span tracing needs per-device spans: full item-granular
            # timings (this switches the executors off their fused
            # round paths — tracing is the expensive opt-in).
            self.executor.enable_worker_timings()
        elif self._profiler is not None:
            # The continuous profiler only needs per-edge execute
            # attribution: round-granular timings ride the unchanged
            # fast path at one clock pair per round.
            self.executor.enable_worker_timings(granularity="round")
        if self._profiler is not None:
            # Install the process-global site hook (repro.prof) so the
            # mobility/aggregation hot paths self-report.
            self._profiler.activate()
        if self._resources is not None:
            # Payload accounting is labeled by the run's actual
            # topology/aggregation pair, whatever the accountant's
            # construction defaults were.
            self._resources.topology = self.topology.name
            self._resources.aggregation = self.aggregation_strategy.name
        # One model transfer's wire size: the flat parameter vector.
        self._model_payload_bytes = int(self.cloud.model.nbytes)
        if self._metrics is not None:
            self._steps_counter = self._metrics.counter(
                "repro_steps_total", "Completed HFL time steps"
            )
            self._checkpoint_counter = self._metrics.counter(
                "repro_checkpoints_total", "Resumable checkpoints written"
            )
            self._sync_counter = self._metrics.counter(
                "repro_syncs_total",
                "Sync steps completed, by topology and aggregation strategy",
            )
            self._accuracy_gauge = self._metrics.gauge(
                "repro_eval_accuracy", "Latest global-model test accuracy"
            )
            self._loss_gauge = self._metrics.gauge(
                "repro_eval_loss", "Latest global-model test loss"
            )
            self._stale_buffer_gauge = self._metrics.gauge(
                "repro_stale_buffer_size",
                "Late uploads currently parked in the staleness buffer",
            )
            self._step_latency_gauge = self._metrics.gauge(
                "repro_step_latency_seconds",
                "Wall-clock of the most recent full engine step",
            )

        # Run-progress state, mutated by run() and snapshot by checkpoints.
        self._history = TrainingHistory()
        self._participation_counts = np.zeros(trace.num_devices, dtype=int)
        self._total_participants = 0
        self._steps_run = 0
        self._reached_at: Optional[int] = None
        # Robustness accounting (checkpointed so resume replays it):
        # simulated sync backoff, staleness-buffer outcomes and churn.
        self._sim_backoff_seconds = 0.0
        self._late_admits = 0
        self._late_drops = 0
        self._devices_joined = 0
        self._devices_left = 0
        # Adaptive-evaluation cursor (only consulted when
        # config.eval_cadence == "adaptive"; checkpointed for resume).
        self._eval_interval_now = config.effective_eval_interval
        self._next_eval = self._eval_interval_now
        self._last_eval_accuracy: Optional[float] = None

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's workers if the trainer created them.

        Also uninstalls this trainer's profiler from the process-global
        hook so instrumentation never outlives the run.
        """
        if self._profiler is not None:
            self._profiler.deactivate()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "HFLTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _plan_round(self, t: int, edge: Edge) -> Optional[_PendingRound]:
        """Plan phase for one edge: strategy, oracle probes, indicators."""
        members = self.trace.devices_at(t, edge.edge_id)
        if self.churn is not None:
            # Open population: only enrolled devices are samplable.  The
            # trace stays the closed-world ground truth of *where*
            # devices are; churn masks *who* currently exists.
            members = members[self.churn.active_mask[members]]
        if members.size == 0:
            return None
        probabilities = self.sampler.probabilities(
            t, edge.edge_id, members, edge.capacity
        )
        probabilities = np.clip(np.asarray(probabilities, dtype=float), 0.0, 1.0)

        if self.sampler.requires_oracle:
            # MACH-P assumption: the true training experience of every
            # member is observable this step, participating or not.
            for m in members:
                norm = self.devices[m].probe_grad_sq_norm(
                    edge.model,
                    self.model,
                    self.config.batch_size,
                    rng=self._seeds.round_generator(t, edge.edge_id, f"probe/{m}"),
                )
                self.sampler.observe_oracle(t, int(m), norm)

        indicators = Edge.draw_participation(
            probabilities,
            rng=self._seeds.round_generator(t, edge.edge_id, "participation"),
        )
        if self._audit is not None:
            # Decision audit: candidate scores, probabilities and the
            # drawn indicators, recorded after the draw so the trail
            # observes the round without touching its random stream.
            self._audit.record_round(
                t,
                edge.edge_id,
                members,
                probabilities,
                indicators,
                components=self.sampler.audit_components(members),
            )
        items = tuple(
            LocalUpdateItem(
                step=t,
                edge=edge.edge_id,
                device_id=int(m),
                local_epochs=self.config.local_epochs,
                learning_rate=self.config.learning_rate,
                batch_size=self.config.batch_size,
            )
            for m, sampled in zip(members, indicators)
            if sampled
        )
        plan = EdgeRoundPlan(
            step=t, edge=edge.edge_id, start_model=edge.model, items=items
        )
        return _PendingRound(edge, members, probabilities, plan)

    def _screen_uploads(
        self,
        t: int,
        edge_id: int,
        results: Dict[int, LocalUpdateResult],
    ) -> "tuple[Dict[int, LocalUpdateResult], Dict[int, str], Dict[int, LocalUpdateResult]]":
        """Pass every sampled upload through the fault model.

        Returns the surviving results, the failures (device → fault
        kind) and the *parked* uploads: with ``max_staleness > 0`` a
        straggler upload is no longer dropped but handed back for the
        bounded-staleness buffer (it missed this round's deadline, so
        it joins a later aggregate with an age-discounted weight).
        Mobility coupling: a device inside the edge at the plan phase
        (step ``t``) but outside it by the finish phase (step ``t + 1``
        of the trace) may depart mid-round and lose its upload.
        Surviving and parked payloads are additionally screened for
        non-finite values — the receiver-side integrity check that keeps
        a corrupted upload from ever reaching aggregation.
        """
        num_sampled = len(results)
        # O(1) membership probe per device against the next step's raw
        # assignment row — no per-(edge, step) Python set to rebuild.
        next_row = self.trace.assignment_row(t + 1)
        surviving: Dict[int, LocalUpdateResult] = {}
        failures: Dict[int, str] = {}
        parked: Dict[int, LocalUpdateResult] = {}
        park_late = self._max_staleness > 0
        for m in sorted(results):
            result = results[m]
            departed = int(next_row[m]) != edge_id
            kind = self.fault_model.upload_fault(
                t, edge_id, m, departed, num_sampled
            )
            if kind == "straggler" and park_late:
                # Late, not lost: the payload is intact (a straggler
                # never reaches the corruption draw), it just missed
                # the deadline.
                parked[m] = result
                continue
            if kind is not None:
                failures[m] = kind
                continue
            corrupted = self.fault_model.corrupt_payload(
                t, edge_id, m, result.final_model
            )
            if corrupted is not None:
                result = replace(result, final_model=corrupted)
            surviving[m] = result
        for m in sorted(surviving):
            if not np.all(np.isfinite(surviving[m].final_model)):
                failures[m] = "corruption"
                del surviving[m]
        for m in sorted(parked):
            if not np.all(np.isfinite(parked[m].final_model)):
                failures[m] = "corruption"
                del parked[m]
        return surviving, failures, parked

    def _finish_round(
        self,
        t: int,
        pending: _PendingRound,
        results: Dict[int, LocalUpdateResult],
    ) -> int:
        """Finish phase for one edge round; returns the survivor count."""
        failures: Dict[int, str] = {}
        parked: Dict[int, LocalUpdateResult] = {}
        num_sampled = len(results)
        if self.fault_model is not None and results:
            results, failures, parked = self._screen_uploads(
                t, pending.edge.edge_id, results
            )
        if parked:
            self._park_uploads(t, pending, parked, num_sampled)

        for m in pending.members:
            result = results.get(int(m))
            if result is not None:
                self.sampler.observe_participation(
                    t, int(m), result.grad_sq_norms, result.mean_loss
                )
                self._participation_counts[m] += 1
            elif int(m) in failures:
                # Sampled but failed: reliability feedback, no experience.
                self.sampler.observe_failure(t, int(m))
            # Parked devices get neither: their feedback is deferred to
            # the admission (or drop) of their buffered upload.

        pending.edge.aggregate(
            list(pending.members),
            pending.probabilities,
            results,
            mode=self.config.aggregation,
            # A fault (or a parked straggler) changed the realized
            # participation away from the strategy's q: average over
            # the survivors instead of trusting the now-miscalibrated
            # IPW weights.
            renormalize=bool(failures) or bool(parked),
        )
        if self.telemetry is not None:
            participants = [int(m) for m in pending.members if int(m) in results]
            self.telemetry.record_round(
                t,
                pending.edge.edge_id,
                pending.members,
                pending.probabilities,
                participants,
                [results[m].mean_grad_sq_norm for m in participants],
                [results[m].mean_loss for m in participants],
            )
            self.telemetry.record_faults(
                t, pending.edge.edge_id, failures, num_sampled
            )
        if self._resources is not None and num_sampled:
            # Comms accounting: every sampled device pulled the edge
            # model; all but the parked stragglers pushed a reply now.
            self._resources.record_device_round(
                downloads=num_sampled,
                uploads=num_sampled - len(parked),
                model_bytes=self._model_payload_bytes,
            )
        return len(results)

    def _park_uploads(
        self,
        t: int,
        pending: _PendingRound,
        parked: Dict[int, LocalUpdateResult],
        num_sampled: int,
    ) -> None:
        """Move late uploads into the bounded-staleness buffer.

        Each parked upload is frozen as its round's delta and Eq. (5)
        weight and assigned an admission step drawn from a named
        ``(step, edge, device)`` seed stream — state-independent
        streams, so the draw is bit-identical across executors and
        under kill/resume.  Admission happens in the finish phase of
        ``admit_step`` (see :meth:`_admit_stale`).
        """
        position = {int(m): i for i, m in enumerate(pending.members)}
        for m in sorted(parked):
            result = parked[m]
            delay = int(
                self._seeds.round_generator(
                    t, pending.edge.edge_id, f"staleness/{m}"
                ).integers(1, self._max_staleness + 1)
            )
            if self.config.aggregation == "fedavg":
                weight = 1.0 / max(num_sampled, 1)
            else:
                q = float(pending.probabilities[position[m]])
                weight = 1.0 / (len(pending.members) * q)
            self._stale_buffer.append(
                _StaleUpload(
                    device=m,
                    edge=pending.edge.edge_id,
                    born_step=t,
                    admit_step=t + delay,
                    weight=weight,
                    delta=result.final_model - pending.plan.start_model,
                    grad_sq_norms=list(result.grad_sq_norms),
                    mean_loss=float(result.mean_loss),
                )
            )
        if self._metrics is not None:
            self._stale_buffer_gauge.set(float(len(self._stale_buffer)))

    def _admit_stale(self, t: int) -> None:
        """Admit (or drop) the buffered uploads due at step ``t``.

        An admitted upload lands as a single age-discounted axpy on the
        *current* edge model — ``w_n += discount**age * weight * delta``
        — and only then feeds its deferred experience to the sampler
        (so MACH credits the device at admission time, not at the
        round it missed).  An upload whose device has since left the
        population is dropped with failure feedback instead.  Due
        uploads are processed in ``(born_step, edge, device)`` order so
        overlapping admissions are deterministic.
        """
        if not self._stale_buffer:
            return
        due = [u for u in self._stale_buffer if u.admit_step <= t]
        if not due:
            return
        admit_wall0 = time.perf_counter()
        admits_before = self._late_admits
        self._stale_buffer = [u for u in self._stale_buffer if u.admit_step > t]
        due.sort(key=lambda u: (u.born_step, u.edge, u.device))
        for upload in due:
            age = t - upload.born_step
            if self.churn is not None and not bool(
                self.churn.active_mask[upload.device]
            ):
                # The straggler de-enrolled before its upload landed.
                self._late_drops += 1
                self.sampler.observe_failure(t, upload.device)
                if self.telemetry is not None:
                    self.telemetry.record_late_drop(
                        t, upload.edge, upload.device, upload.born_step, age
                    )
                continue
            scale = (self._staleness_discount ** age) * upload.weight
            edge = self.edges[upload.edge]
            edge.model = edge.model + scale * upload.delta
            check_finite("stale-admitted edge model", edge.model)
            self.sampler.observe_participation(
                t, upload.device, upload.grad_sq_norms, upload.mean_loss
            )
            self._participation_counts[upload.device] += 1
            self._total_participants += 1
            self._late_admits += 1
            if self.telemetry is not None:
                self.telemetry.record_late_admit(
                    t,
                    upload.edge,
                    upload.device,
                    upload.born_step,
                    age,
                    scale,
                )
        if self._metrics is not None:
            self._stale_buffer_gauge.set(float(len(self._stale_buffer)))
        if self._resources is not None:
            self._resources.record_stale_admit(
                self._late_admits - admits_before, self._model_payload_bytes
            )
            self._resources.record_wait(
                "stale_admit", time.perf_counter() - admit_wall0
            )

    def _apply_churn(self, t: int) -> None:
        """Advance the churn process one step and notify the sampler.

        Departures are announced before arrivals (matching the draw
        order inside :meth:`repro.churn.ChurnProcess.step`), each in
        ascending device order, so sampler warm-starts see a
        deterministic population.
        """
        step = self.churn.step(t)
        for m in step.left:
            self.sampler.on_device_left(t, m)
        for m in step.joined:
            self.sampler.on_device_joined(t, m)
        self._devices_joined += len(step.joined)
        self._devices_left += len(step.left)
        if self.telemetry is not None:
            self.telemetry.record_churn(
                t, step.joined, step.left, step.num_active
            )

    def _train_step(self, t: int) -> int:
        """One full time step; returns the total participant count.

        Phase wall-times (plan / execute / finish) land in the attached
        telemetry recorder; the clock reads cost nanoseconds, so they
        are taken unconditionally to keep one code path.  The span
        tracer (a no-op unless observability is on) mirrors the phases
        and hangs the worker-attributed edge-round / device-update
        hierarchy under the execute span.
        """
        clock = time.perf_counter
        tracer = self._tracer
        profiler = self._profiler
        t0 = clock()
        with tracer.span("plan"), self._profile_phase("plan"):
            if self.churn is not None:
                # Population turnover lands before planning: this step's
                # strategies see the post-churn member sets.
                self._apply_churn(t)
            pending = [self._plan_round(t, edge) for edge in self.edges]
            active = [p for p in pending if p is not None]
        t1 = clock()
        if self.incremental:
            # Incremental round pipeline: edge rounds stream back in
            # completion order and each is finished the moment every
            # lower-indexed round has finished — the finish phase of
            # early rounds overlaps the execute phase of late ones, but
            # the (edge, member) feedback order is exactly the barrier
            # path's, so the result is bit-identical.
            with tracer.span("execute"), self._profile_phase("execute"):
                total, finish_seconds = self._run_step_incremental(t, active)
                if tracer.enabled or profiler is not None:
                    self._trace_worker_timings()
            t2 = clock()
            with tracer.span("finish"), self._profile_phase("finish"):
                if self._max_staleness > 0:
                    self._admit_stale(t)
            t3 = clock()
            execute_seconds = (t2 - t1) - finish_seconds
            finish_total = finish_seconds + (t3 - t2)
        else:
            with tracer.span("execute"), self._profile_phase("execute"):
                step_results = self.executor.run_step([p.plan for p in active])
                if tracer.enabled or profiler is not None:
                    self._trace_worker_timings()
            t2 = clock()
            with tracer.span("finish"), self._profile_phase("finish"):
                total = sum(
                    self._finish_round(t, p, results)
                    for p, results in zip(active, step_results)
                )
                if self._max_staleness > 0:
                    # Late uploads whose deadline extension expires this
                    # step join the post-round edge models.
                    self._admit_stale(t)
            t3 = clock()
            execute_seconds = t2 - t1
            finish_total = t3 - t2
        if self.telemetry is not None:
            self.telemetry.record_phase("plan", t1 - t0)
            self.telemetry.record_phase("execute", execute_seconds)
            self.telemetry.record_phase("finish", finish_total)
        if profiler is not None:
            profiler.record_phase("plan", t1 - t0)
            profiler.record_phase("execute", execute_seconds)
            profiler.record_phase("finish", finish_total)
        return total

    def _run_step_incremental(
        self, t: int, active: List[_PendingRound]
    ) -> "tuple[int, float]":
        """Admit streamed edge rounds, finishing strictly in plan order.

        Out-of-order completions are buffered until their prefix is
        finished — the admission discipline that keeps a drained queue
        bit-identical to the barrier path (sampler feedback and edge
        aggregation happen in exactly the barrier's (edge, member)
        order).  Returns the participant count and the wall-clock spent
        in finish work, so the caller can split phase attribution.
        """
        clock = time.perf_counter
        total = 0
        finish_seconds = 0.0
        buffered: Dict[int, Dict[int, LocalUpdateResult]] = {}
        next_index = 0
        for index, results in self.executor.submit_step(
            [p.plan for p in active]
        ):
            buffered[index] = results
            while next_index in buffered:
                f0 = clock()
                total += self._finish_round(
                    t, active[next_index], buffered.pop(next_index)
                )
                finish_seconds += clock() - f0
                next_index += 1
        if next_index != len(active):  # pragma: no cover - executor contract
            raise RuntimeError(
                f"executor streamed {next_index} of {len(active)} rounds"
            )
        return total, finish_seconds

    def _profile_phase(self, name: str):
        """Phase-tagging scope for the profiler (no-op when off)."""
        profiler = self._profiler
        return profiler.phase_scope(name) if profiler is not None else nullcontext()

    def _trace_worker_timings(self) -> None:
        """Synthesize edge-round → device-update spans from the executor's
        per-item worker timings (attributed to the worker that ran each
        item, durations from the worker's own monotonic clock).  The same
        drained rows feed the profiler's per-(step, edge) attribution."""
        timings = self.executor.drain_worker_timings()
        if not timings:
            return
        if self._profiler is not None:
            self._profiler.observe_worker_timings(timings)
        if not self._tracer.enabled:
            return
        by_edge: Dict[int, list] = {}
        for wt in timings:
            by_edge.setdefault(wt.edge, []).append(wt)
        tracer = self._tracer
        for edge_id in sorted(by_edge):
            edge_timings = by_edge[edge_id]
            edge_span = tracer.add_span(
                "edge_round",
                sum(wt.seconds for wt in edge_timings),
                edge=edge_id,
                devices=len(edge_timings),
            )
            for wt in edge_timings:
                tracer.add_span(
                    "device_update",
                    wt.seconds,
                    parent_id=edge_span,
                    device=wt.device,
                    worker=wt.worker,
                )

    def _gather_uploads(self, t: int) -> List[np.ndarray]:
        """The per-edge models entering this sync step's exchange.

        Without a fault model every edge contributes its live model
        (by reference — the aggregation strategies read the uploads
        before installing anything).  Under an active fault model each
        edge's upload may fail; the trainer retries with bounded
        exponential backoff (simulated — accounted in telemetry, never
        slept) and falls back to the edge's last successfully synced
        model when the retry budget is exhausted, so one flaky backhaul
        degrades the exchanged model's freshness instead of killing the
        round.  This screening is topology-agnostic: a stale upload
        enters the cloud sum, the cluster mix or the gossip averages
        the same way.
        """
        if self.fault_model is None:
            return [edge.model for edge in self.edges]
        uploads: List[np.ndarray] = []
        for n, edge in enumerate(self.edges):
            outcome = self.fault_model.sync_outcome(t, n)
            # Simulated wall-clock: every retry's exponential backoff
            # counts against the run's latency budget whether or not
            # the upload ultimately succeeded.
            self._sim_backoff_seconds += outcome.backoff_seconds
            if self._resources is not None:
                self._resources.record_wait("backoff", outcome.backoff_seconds)
            if outcome.success:
                self._last_synced[n] = edge.model.copy()
                uploads.append(edge.model)
            else:
                uploads.append(self._last_synced[n])
            if self.telemetry is not None and (
                outcome.failed_attempts > 0 or not outcome.success
            ):
                self.telemetry.record_sync_attempt(
                    t,
                    n,
                    outcome.failed_attempts,
                    used_stale=not outcome.success,
                    backoff_seconds=outcome.backoff_seconds,
                )
        return uploads

    def _sync_to_cloud(self, t: int) -> None:
        """The sync step (Algorithm 1 lines 12–13, generalized).

        The topology decides who talks to whom (:meth:`Topology
        .sync_plan`) and the aggregation strategy combines the
        exchanged uploads into the new edge models and the global
        model.  Under the default hierarchical + ipw pair this is the
        paper's edge→cloud aggregation and broadcast, bit-identical to
        the pre-topology trainer (see :mod:`repro.topology.reference`).
        """
        counts = self.trace.counts_at(t)
        uploads = self._gather_uploads(t)
        plan = self.topology.sync_plan(t, counts)
        self.aggregation_strategy.apply(
            plan, uploads, counts, self.cloud, self.edges
        )
        if self._metrics is not None:
            self._sync_counter.inc(
                topology=self.topology.name,
                aggregation=self.aggregation_strategy.name,
            )
        if self._resources is not None:
            # One model up per edge, one installed back down per edge —
            # cloud hop or peer exchange depending on the topology, which
            # the metric labels record.
            self._resources.record_sync(
                len(uploads), len(self.edges), self._model_payload_bytes
            )
        self.sampler.on_global_sync(t)

    def _virtual_global(self, t: int) -> np.ndarray:
        """The strategy's evaluation-time global model (for hierarchical
        + ipw: the member-count-weighted average of edge models, which
        equals the cloud model right after a sync step)."""
        counts = self.trace.counts_at(t)
        return self.aggregation_strategy.virtual_global(
            counts, self.edges, self.cloud
        )

    # -- checkpointing -------------------------------------------------------

    def make_checkpoint(self, steps_completed: int) -> TrainerCheckpoint:
        """Snapshot the full mutable run state after ``steps_completed``."""
        return TrainerCheckpoint(
            step=steps_completed,
            master_seed=self.config.seed,
            sampler_name=self.sampler.name,
            topology_name=self.topology.name,
            aggregation_name=self.aggregation_strategy.name,
            topology_state=self.topology.state_dict(),
            edge_models=[edge.model.copy() for edge in self.edges],
            cloud_model=self.cloud.model.copy(),
            last_synced_edge_models=[m.copy() for m in self._last_synced],
            sampler_state=self.sampler.state_dict(),
            history_steps=list(self._history.steps),
            history_accuracy=list(self._history.accuracy),
            history_loss=list(self._history.loss),
            participation_counts=self._participation_counts.copy(),
            total_participants=self._total_participants,
            reached_target_at=self._reached_at,
            telemetry_state=(
                self.telemetry.state_dict() if self.telemetry is not None else None
            ),
            churn_state=(
                self.churn.state_dict() if self.churn is not None else None
            ),
            stale_buffer=[
                {
                    "device": u.device,
                    "edge": u.edge,
                    "born_step": u.born_step,
                    "admit_step": u.admit_step,
                    "weight": u.weight,
                    "delta": u.delta.copy(),
                    "grad_sq_norms": list(u.grad_sq_norms),
                    "mean_loss": u.mean_loss,
                }
                for u in self._stale_buffer
            ],
            robustness_counters={
                "sim_backoff_seconds": self._sim_backoff_seconds,
                "late_admits": self._late_admits,
                "late_drops": self._late_drops,
                "devices_joined": self._devices_joined,
                "devices_left": self._devices_left,
            },
            eval_state=(
                {
                    "next_eval": int(self._next_eval),
                    "interval": int(self._eval_interval_now),
                    "last_accuracy": self._last_eval_accuracy,
                }
                if self.config.eval_cadence == "adaptive"
                else None
            ),
        )

    def restore_checkpoint(
        self, checkpoint: Union[TrainerCheckpoint, str, Path]
    ) -> int:
        """Load a checkpoint into the trainer; returns the resume step.

        The engine's randomness is derived per ``(step, edge, device)``
        from the master seed — there are no stateful RNG cursors — so
        restoring the snapshot and continuing at the returned step
        replays exactly what an uninterrupted run would have produced.
        """
        if not isinstance(checkpoint, TrainerCheckpoint):
            checkpoint = TrainerCheckpoint.load(checkpoint)
        if checkpoint.master_seed != self.config.seed:
            raise ValueError(
                f"checkpoint was written with seed {checkpoint.master_seed}, "
                f"trainer has seed {self.config.seed}"
            )
        if checkpoint.sampler_name != self.sampler.name:
            raise ValueError(
                f"checkpoint was written with sampler "
                f"{checkpoint.sampler_name!r}, trainer has {self.sampler.name!r}"
            )
        if checkpoint.topology_name != self.topology.name:
            raise ValueError(
                f"checkpoint was written with topology "
                f"{checkpoint.topology_name!r}, trainer has "
                f"{self.topology.name!r}"
            )
        if checkpoint.aggregation_name != self.aggregation_strategy.name:
            raise ValueError(
                f"checkpoint was written with aggregation strategy "
                f"{checkpoint.aggregation_name!r}, trainer has "
                f"{self.aggregation_strategy.name!r}"
            )
        self.topology.load_state_dict(checkpoint.topology_state)
        if len(checkpoint.edge_models) != len(self.edges):
            raise ValueError(
                f"checkpoint has {len(checkpoint.edge_models)} edges, "
                f"trainer has {len(self.edges)}"
            )
        for edge, model in zip(self.edges, checkpoint.edge_models):
            edge.set_model(model)
        self.cloud.model = checkpoint.cloud_model.copy()
        self._last_synced = [m.copy() for m in checkpoint.last_synced_edge_models]
        self.sampler.load_state_dict(checkpoint.sampler_state)
        if self.telemetry is not None and checkpoint.telemetry_state is not None:
            self.telemetry.load_state_dict(checkpoint.telemetry_state)
        self._history = TrainingHistory(
            steps=list(checkpoint.history_steps),
            accuracy=list(checkpoint.history_accuracy),
            loss=list(checkpoint.history_loss),
        )
        if checkpoint.participation_counts.size:
            if checkpoint.participation_counts.shape != (self.trace.num_devices,):
                raise ValueError(
                    "checkpoint participation counts do not match the device "
                    "population"
                )
            self._participation_counts = checkpoint.participation_counts.copy()
        else:
            self._participation_counts = np.zeros(self.trace.num_devices, dtype=int)
        self._total_participants = checkpoint.total_participants
        self._reached_at = checkpoint.reached_target_at
        if (checkpoint.churn_state is not None) != (self.churn is not None):
            raise ValueError(
                "checkpoint churn state does not match the trainer: "
                f"checkpoint {'has' if checkpoint.churn_state else 'lacks'} "
                "a churn process, the trainer "
                f"{'has' if self.churn is not None else 'lacks'} one"
            )
        if self.churn is not None:
            self.churn.load_state_dict(checkpoint.churn_state)
        self._stale_buffer = [
            _StaleUpload(
                device=int(entry["device"]),
                edge=int(entry["edge"]),
                born_step=int(entry["born_step"]),
                admit_step=int(entry["admit_step"]),
                weight=float(entry["weight"]),
                delta=np.asarray(entry["delta"], dtype=float),
                grad_sq_norms=[float(g) for g in entry["grad_sq_norms"]],
                mean_loss=float(entry["mean_loss"]),
            )
            for entry in checkpoint.stale_buffer
        ]
        counters = checkpoint.robustness_counters or {}
        self._sim_backoff_seconds = float(
            counters.get("sim_backoff_seconds", 0.0)
        )
        self._late_admits = int(counters.get("late_admits", 0))
        self._late_drops = int(counters.get("late_drops", 0))
        self._devices_joined = int(counters.get("devices_joined", 0))
        self._devices_left = int(counters.get("devices_left", 0))
        if checkpoint.eval_state is not None:
            self._next_eval = int(checkpoint.eval_state["next_eval"])
            self._eval_interval_now = int(checkpoint.eval_state["interval"])
            last = checkpoint.eval_state.get("last_accuracy")
            self._last_eval_accuracy = None if last is None else float(last)
        else:
            # Pre-cursor checkpoint (or fixed-cadence run): restart the
            # adaptive schedule at the base interval from the resume
            # step, seeded with the last recorded accuracy.
            self._eval_interval_now = self.config.effective_eval_interval
            self._next_eval = checkpoint.step + self._eval_interval_now
            self._last_eval_accuracy = (
                self._history.accuracy[-1] if self._history.accuracy else None
            )
        self._steps_run = checkpoint.step
        return checkpoint.step

    def _observe_step(self, t: int, steps_run: int, seconds: float) -> None:
        """Per-step observation hooks, all pure observers: profiler step
        record, step-latency gauge, memory sample and health evaluation
        (with a ``health`` event on every overall-verdict transition)."""
        if self._profiler is not None:
            self._profiler.end_step(t, seconds)
        if self._metrics is not None:
            self._step_latency_gauge.set(seconds)
        if self._resources is not None:
            self._resources.sample_memory()
        if self._health is not None:
            report = self._health.observe(steps_run)
            if report is not None and report.verdict != self._last_health_verdict:
                self._last_health_verdict = report.verdict
                if self._events is not None:
                    self._events.emit("health", **report.to_dict())

    def _maybe_write_checkpoint(self, steps_completed: int) -> None:
        every = self.config.checkpoint_every
        if every is None or steps_completed % every != 0:
            return
        ckpt_t0 = time.perf_counter()
        with self._tracer.span("checkpoint", step=steps_completed):
            self.make_checkpoint(steps_completed).save(self.config.checkpoint_path)
        if self._profiler is not None:
            self._profiler.record_phase(
                "checkpoint", time.perf_counter() - ckpt_t0
            )
        if self._events is not None:
            self._events.emit(
                "checkpoint",
                step=steps_completed,
                path=str(self.config.checkpoint_path),
            )
        if self._metrics is not None:
            self._checkpoint_counter.inc()

    # ------------------------------------------------------------------

    def run(
        self,
        num_steps: int,
        target_accuracy: Optional[float] = None,
        stop_at_target: bool = False,
        resume_from: Optional[Union[TrainerCheckpoint, str, Path]] = None,
    ) -> TrainingResult:
        """Execute ``num_steps`` time steps of Algorithm 1.

        When ``stop_at_target`` is set and ``target_accuracy`` is
        reached at an evaluation point, training stops early — the
        time-to-accuracy experiments use this to avoid paying for the
        full horizon on fast samplers.

        ``resume_from`` (a :class:`~repro.faults.TrainerCheckpoint` or a
        path to one) continues a killed run from its snapshot; the
        resumed run's history is bit-identical to an uninterrupted one.

        A thin driver over :meth:`steps`: it drains the generator and
        packages the final state with :meth:`result`.
        """
        for _ in self.steps(
            num_steps,
            target_accuracy=target_accuracy,
            stop_at_target=stop_at_target,
            resume_from=resume_from,
        ):
            pass
        return self.result()

    def result(self) -> TrainingResult:
        """Package the trainer's current run state as a result.

        Callers that drive :meth:`steps` themselves (the coordinator
        service) call this once the generator is exhausted — or after
        closing it early — to get the same object :meth:`run` returns.
        """
        steps_run = self._steps_run
        return TrainingResult(
            sampler_name=self.sampler.name,
            history=self._history,
            steps_run=steps_run,
            participation_counts=self._participation_counts.copy(),
            mean_participants_per_step=(
                self._total_participants / steps_run if steps_run else 0.0
            ),
            reached_target_at=self._reached_at,
            simulated_backoff_seconds=self._sim_backoff_seconds,
            late_admits=self._late_admits,
            late_drops=self._late_drops,
            devices_joined=self._devices_joined,
            devices_left=self._devices_left,
            final_cloud_model=self.cloud.model.copy(),
        )

    def steps(
        self,
        num_steps: int,
        target_accuracy: Optional[float] = None,
        stop_at_target: bool = False,
        resume_from: Optional[Union[TrainerCheckpoint, str, Path]] = None,
    ) -> "Iterator[StepOutcome]":
        """Resumable step generator: yields one :class:`StepOutcome` per
        completed time step.

        The long-running coordinator service drives this instead of
        :meth:`run` so it can checkpoint, pause, stream metrics or stop
        *between* steps while the engine state stays consistent —
        closing the generator between yields leaves the trainer exactly
        at the last completed step (snapshot it with
        :meth:`make_checkpoint`, package it with :meth:`result`).  The
        training semantics are byte-for-byte the synchronous loop's:
        the same state reset, the same per-step phase order, the same
        checkpoint cadence.
        """
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        self._history = TrainingHistory()
        self._participation_counts = np.zeros(self.trace.num_devices, dtype=int)
        self._total_participants = 0
        self._reached_at = None
        self._sim_backoff_seconds = 0.0
        self._late_admits = 0
        self._late_drops = 0
        self._devices_joined = 0
        self._devices_left = 0
        self._stale_buffer = []
        self._eval_interval_now = self.config.effective_eval_interval
        self._next_eval = self._eval_interval_now
        self._last_eval_accuracy = None
        if self.churn is not None:
            # Idempotent: same "initial-active" stream as __init__, so a
            # fresh run always starts from the same population draw.
            self.churn.reset()
        start_step = 0
        if resume_from is not None:
            start_step = self.restore_checkpoint(resume_from)
            if start_step >= num_steps:
                raise ValueError(
                    f"checkpoint is at step {start_step}, nothing left of a "
                    f"{num_steps}-step run"
                )
        history = self._history
        eval_interval = self.config.effective_eval_interval
        adaptive_eval = self.config.eval_cadence == "adaptive"
        eval_max_interval = self.config.effective_eval_max_interval
        eval_delta = self.config.eval_accuracy_delta

        if self._events is not None:
            self._events.emit(
                "run_start",
                seed=self.config.seed,
                sampler=self.sampler.name,
                executor=self.executor.name,
                topology=self.topology.name,
                aggregation=self.aggregation_strategy.name,
                num_steps=num_steps,
                start_step=start_step,
                sync_interval=self.config.sync_interval,
                eval_interval=eval_interval,
                resumed=resume_from is not None,
                churn=self.churn.describe() if self.churn is not None else None,
                max_staleness=self._max_staleness,
            )

        clock = time.perf_counter
        tracer = self._tracer
        steps_run = start_step
        self._steps_run = steps_run
        for t in range(start_step, num_steps):
            if self._profiler is not None:
                self._profiler.begin_step(t)
            step_t0 = clock()
            stop_early = False
            synced = False
            step_accuracy: Optional[float] = None
            step_loss: Optional[float] = None
            participants_before = self._total_participants
            with tracer.span("cloud_step", t=t):
                self._total_participants += self._train_step(t)

                if t % self.config.sync_interval == 0:
                    synced = True
                    t0 = clock()
                    with tracer.span(
                        "sync",
                        topology=self.topology.name,
                        aggregation=self.aggregation_strategy.name,
                    ), self._profile_phase("sync"):
                        self._sync_to_cloud(t)
                    sync_seconds = clock() - t0
                    if self.telemetry is not None:
                        self.telemetry.record_phase("sync", sync_seconds)
                    if self._profiler is not None:
                        self._profiler.record_phase("sync", sync_seconds)

                steps_run = t + 1
                self._steps_run = steps_run
                if self._metrics is not None:
                    self._steps_counter.inc()
                eval_due = (
                    steps_run >= self._next_eval
                    if adaptive_eval
                    else steps_run % eval_interval == 0
                )
                if eval_due or steps_run == num_steps:
                    t0 = clock()
                    with tracer.span("eval"), self._profile_phase("eval"):
                        self.model.load_flat(self._virtual_global(t))
                        # One fused pass over the test set yields both
                        # metrics (bit-identical to the separate
                        # accuracy/loss passes).
                        accuracy, loss = evaluate(self.model, self.test_dataset)
                    eval_seconds = clock() - t0
                    if self.telemetry is not None:
                        self.telemetry.record_phase("eval", eval_seconds)
                    if self._profiler is not None:
                        self._profiler.record_phase("eval", eval_seconds)
                    history.record(steps_run, accuracy, loss)
                    step_accuracy, step_loss = accuracy, loss
                    if adaptive_eval:
                        # Plateau (|Δacc| < δ since the last eval)
                        # doubles the gap up to the ceiling; movement
                        # snaps back to the base interval.  Evaluation
                        # is a pure observer, so this only changes
                        # which steps the history samples.
                        if (
                            self._last_eval_accuracy is not None
                            and abs(accuracy - self._last_eval_accuracy)
                            < eval_delta
                        ):
                            self._eval_interval_now = min(
                                2 * self._eval_interval_now, eval_max_interval
                            )
                        else:
                            self._eval_interval_now = eval_interval
                        self._last_eval_accuracy = accuracy
                        self._next_eval = steps_run + self._eval_interval_now
                    if self._events is not None:
                        self._events.emit(
                            "eval", step=steps_run, accuracy=accuracy, loss=loss
                        )
                    if self._metrics is not None:
                        self._accuracy_gauge.set(accuracy)
                        self._loss_gauge.set(loss)
                    if (
                        target_accuracy is not None
                        and self._reached_at is None
                        and accuracy >= target_accuracy
                    ):
                        self._reached_at = steps_run
                        if stop_at_target:
                            stop_early = True
                self._maybe_write_checkpoint(steps_run)
            self._observe_step(t, steps_run, clock() - step_t0)
            yield StepOutcome(
                step=t,
                steps_run=steps_run,
                participants=self._total_participants - participants_before,
                synced=synced,
                evaluated=step_accuracy is not None,
                accuracy=step_accuracy,
                loss=step_loss,
                reached_target=self._reached_at is not None,
                stop=stop_early,
                seconds=clock() - step_t0,
            )
            if stop_early:
                break

        if self._events is not None:
            self._events.emit(
                "run_end",
                steps_run=steps_run,
                final_accuracy=history.final_accuracy(),
                best_accuracy=history.best_accuracy(),
                reached_target_at=self._reached_at,
                mean_participants_per_step=(
                    self._total_participants / steps_run if steps_run else 0.0
                ),
            )
            self._events.flush()

"""The HFL training loop — Algorithm 1 of the paper.

Per time step ``t``:

1. every edge ``n`` asks the sampler for its strategy ``Q^t_n`` over the
   devices currently inside it (line 3) and draws the participation
   indicators — the *plan* phase, sequential in the engine;
2. sampled devices run their I local SGD steps from the downloaded edge
   model (lines 5–9) — the *execute* phase, fanned out through the
   pluggable :mod:`repro.runtime` executor (edges are independent within
   a step and devices within an edge, so both levels parallelize);
3. devices feed their gradient experiences back to the sampler (line
   10) and the edge aggregates with inverse-probability weights (line
   11) — the *finish* phase, again sequential in member order;
4. every ``T_g`` steps the cloud aggregates edge models into the global
   model and broadcasts it back (lines 12–13), and the sampler is
   notified (MACH refreshes its UCB estimates on this clock).

Step-synchronous semantics: all strategies of step ``t`` are computed
from the sampler state at the *beginning* of the step, and participation
feedback is applied at the end of the step in (edge, member) order.
Edges in a real deployment act concurrently and cannot observe each
other's same-step feedback, so this is both the faithful reading of
Algorithm 1 and what makes edge-level parallelism deterministic: for a
fixed seed every executor backend produces bit-identical histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.cloud import Cloud
from repro.hfl.config import HFLConfig
from repro.hfl.device import Device, LocalUpdateResult
from repro.hfl.edge import Edge
from repro.hfl.metrics import TrainingHistory, evaluate_accuracy, evaluate_loss
from repro.hfl.telemetry import TelemetryRecorder
from repro.mobility.trace import MobilityTrace
from repro.nn.model import Model
from repro.runtime import (
    EdgeRoundPlan,
    Executor,
    LocalUpdateItem,
    WorkerContext,
    make_executor,
)
from repro.sampling.base import DeviceProfile, Sampler
from repro.utils.rng import SeedSequenceFactory


@dataclass
class TrainingResult:
    """Everything a benchmark needs from one finished HFL run."""

    sampler_name: str
    history: TrainingHistory
    steps_run: int
    participation_counts: np.ndarray
    mean_participants_per_step: float
    reached_target_at: Optional[int] = None
    #: Per-evaluation probability spread diagnostics (max/min q per edge).
    diagnostics: Dict[str, float] = field(default_factory=dict)

    def time_to_accuracy(self, target: float) -> Optional[int]:
        return self.history.time_to_accuracy(target)


@dataclass
class _PendingRound:
    """One edge's planned round, awaiting its local-update results."""

    edge: Edge
    members: np.ndarray
    probabilities: np.ndarray
    plan: EdgeRoundPlan


class HFLTrainer:
    """Drives Algorithm 1 over a mobility trace with a pluggable sampler.

    ``executor`` selects the :mod:`repro.runtime` backend the local
    updates run on: ``None`` falls back to ``config.executor`` (default
    ``"serial"``, the in-process reference path), a string is resolved
    via :func:`repro.runtime.make_executor` with ``config.num_workers``,
    and a ready :class:`~repro.runtime.Executor` instance is used as-is
    (the caller keeps ownership and must close it).  Executors the
    trainer builds itself are released by :meth:`close`.
    """

    def __init__(
        self,
        model_factory: Callable[[np.random.Generator], Model],
        device_datasets: Sequence[Dataset],
        trace: MobilityTrace,
        sampler: Sampler,
        config: HFLConfig,
        test_dataset: Dataset,
        telemetry: Optional["TelemetryRecorder"] = None,
        executor: Optional[Union[str, Executor]] = None,
    ) -> None:
        if len(device_datasets) != trace.num_devices:
            raise ValueError(
                f"trace covers {trace.num_devices} devices but "
                f"{len(device_datasets)} datasets were given"
            )
        if len(test_dataset) == 0:
            raise ValueError("test dataset is empty")
        self.config = config
        self.trace = trace
        self.sampler = sampler
        self.test_dataset = test_dataset
        self.telemetry = telemetry

        self._seeds = SeedSequenceFactory(config.seed)
        # One shared scratch network; all model state moves as flat vectors.
        self.model: Model = model_factory(self._seeds.generator("model-init"))
        dim = self.model.num_parameters

        self.devices: List[Device] = [
            Device(m, ds) for m, ds in enumerate(device_datasets)
        ]
        capacities = config.capacities(trace.num_edges, trace.num_devices)
        self.edges: List[Edge] = [
            Edge(n, capacities[n], dim) for n in range(trace.num_edges)
        ]
        self.cloud = Cloud(dim)

        # Broadcast the common initial model w^0 to cloud and edges.
        initial = self.model.get_flat()
        self.cloud.model = initial.copy()
        for edge in self.edges:
            edge.set_model(initial)

        profiles = [
            DeviceProfile(
                device_id=m,
                num_samples=len(ds),
                class_distribution=ds.class_distribution(),
            )
            for m, ds in enumerate(device_datasets)
        ]
        self.sampler.setup(profiles, trace.num_edges)

        if executor is None:
            executor = config.executor
        if isinstance(executor, str):
            executor = make_executor(executor, num_workers=config.num_workers)
            self._owns_executor = True
        else:
            self._owns_executor = False
        self.executor: Executor = executor
        self.executor.bind(
            WorkerContext(self.model, self.devices, config.seed)
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's workers if the trainer created them."""
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "HFLTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _plan_round(self, t: int, edge: Edge) -> Optional[_PendingRound]:
        """Plan phase for one edge: strategy, oracle probes, indicators."""
        members = self.trace.devices_at(t, edge.edge_id)
        if members.size == 0:
            return None
        probabilities = self.sampler.probabilities(
            t, edge.edge_id, members, edge.capacity
        )
        probabilities = np.clip(np.asarray(probabilities, dtype=float), 0.0, 1.0)

        if self.sampler.requires_oracle:
            # MACH-P assumption: the true training experience of every
            # member is observable this step, participating or not.
            for m in members:
                norm = self.devices[m].probe_grad_sq_norm(
                    edge.model,
                    self.model,
                    self.config.batch_size,
                    rng=self._seeds.round_generator(t, edge.edge_id, f"probe/{m}"),
                )
                self.sampler.observe_oracle(t, int(m), norm)

        indicators = Edge.draw_participation(
            probabilities,
            rng=self._seeds.round_generator(t, edge.edge_id, "participation"),
        )
        items = tuple(
            LocalUpdateItem(
                step=t,
                edge=edge.edge_id,
                device_id=int(m),
                local_epochs=self.config.local_epochs,
                learning_rate=self.config.learning_rate,
                batch_size=self.config.batch_size,
            )
            for m, sampled in zip(members, indicators)
            if sampled
        )
        plan = EdgeRoundPlan(
            step=t, edge=edge.edge_id, start_model=edge.model, items=items
        )
        return _PendingRound(edge, members, probabilities, plan)

    def _finish_round(
        self,
        t: int,
        pending: _PendingRound,
        results: Dict[int, LocalUpdateResult],
    ) -> int:
        """Finish phase for one edge round; returns the participant count."""
        for m in pending.members:
            result = results.get(int(m))
            if result is None:
                continue
            self.sampler.observe_participation(
                t, int(m), result.grad_sq_norms, result.mean_loss
            )
            self._participation_counts[m] += 1

        pending.edge.aggregate(
            list(pending.members),
            pending.probabilities,
            results,
            mode=self.config.aggregation,
        )
        if self.telemetry is not None:
            participants = [int(m) for m in pending.members if int(m) in results]
            self.telemetry.record_round(
                t,
                pending.edge.edge_id,
                pending.members,
                pending.probabilities,
                participants,
                [results[m].mean_grad_sq_norm for m in participants],
                [results[m].mean_loss for m in participants],
            )
        return len(results)

    def _train_step(self, t: int) -> int:
        """One full time step; returns the total participant count."""
        pending = [self._plan_round(t, edge) for edge in self.edges]
        active = [p for p in pending if p is not None]
        step_results = self.executor.run_step([p.plan for p in active])
        return sum(
            self._finish_round(t, p, results)
            for p, results in zip(active, step_results)
        )

    def _virtual_global(self, t: int) -> np.ndarray:
        """Member-count-weighted average of edge models (equals the cloud
        model right after a sync step)."""
        counts = np.array(
            [self.trace.devices_at(t, n).size for n in range(self.trace.num_edges)],
            dtype=float,
        )
        total = counts.sum()
        aggregate = np.zeros_like(self.cloud.model)
        for edge, count in zip(self.edges, counts):
            if count > 0:
                aggregate += (count / total) * edge.model
        return aggregate

    def run(
        self,
        num_steps: int,
        target_accuracy: Optional[float] = None,
        stop_at_target: bool = False,
    ) -> TrainingResult:
        """Execute ``num_steps`` time steps of Algorithm 1.

        When ``stop_at_target`` is set and ``target_accuracy`` is
        reached at an evaluation point, training stops early — the
        time-to-accuracy experiments use this to avoid paying for the
        full horizon on fast samplers.
        """
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        history = TrainingHistory()
        self._participation_counts = np.zeros(self.trace.num_devices, dtype=int)
        total_participants = 0
        reached_at: Optional[int] = None
        eval_interval = self.config.effective_eval_interval

        steps_run = 0
        for t in range(num_steps):
            total_participants += self._train_step(t)

            if t % self.config.sync_interval == 0:
                counts = np.array(
                    [
                        self.trace.devices_at(t, n).size
                        for n in range(self.trace.num_edges)
                    ]
                )
                self.cloud.aggregate(self.edges, counts)
                self.cloud.broadcast(self.edges)
                self.sampler.on_global_sync(t)

            steps_run = t + 1
            if steps_run % eval_interval == 0 or steps_run == num_steps:
                self.model.set_flat(self._virtual_global(t))
                accuracy = evaluate_accuracy(self.model, self.test_dataset)
                loss = evaluate_loss(self.model, self.test_dataset)
                history.record(steps_run, accuracy, loss)
                if (
                    target_accuracy is not None
                    and reached_at is None
                    and accuracy >= target_accuracy
                ):
                    reached_at = steps_run
                    if stop_at_target:
                        break

        return TrainingResult(
            sampler_name=self.sampler.name,
            history=history,
            steps_run=steps_run,
            participation_counts=self._participation_counts.copy(),
            mean_participants_per_step=total_participants / steps_run,
            reached_target_at=reached_at,
        )

"""Figure 5: steps-to-target under different device participation proportions.

The paper's Fig. 5 sweeps the expected participation fraction over
{0.4, 0.5, 0.6, 0.7} (by adjusting the average edge channel capacity at
10 edges) and observes: (i) more participation generally reduces the
time to target (Remark 1); (ii) MACH consistently beats the basic
strategies but trails MACH-P slightly; (iii) MACH's relative improvement
shrinks as participation grows — with most devices training anyway,
*which* devices are sampled matters less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.experiments.config import SAMPLER_NAMES
from repro.experiments.fig3 import scenario_for
from repro.experiments.report import SweepReport, mean_or_none
from repro.experiments.runner import run_single

DEFAULT_FRACTIONS: Tuple[float, ...] = (0.4, 0.5, 0.6, 0.7)


@dataclass
class Fig5Report:
    """One SweepReport (participation → steps) per task."""

    sweeps: Dict[str, SweepReport] = field(default_factory=dict)

    def render(self) -> str:
        blocks = [
            "=== Figure 5: steps to target accuracy vs participation proportion ==="
        ]
        for task, sweep in self.sweeps.items():
            blocks.append(sweep.render())
        return "\n".join(blocks)


def run(
    preset: str = "bench",
    tasks: Sequence[str] = ("mnist",),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    sampler_names: Sequence[str] = SAMPLER_NAMES,
    repeats: int = 1,
) -> Fig5Report:
    """Regenerate Figure 5: sweep the participation fraction."""
    report = Fig5Report()
    for task in tasks:
        base = scenario_for(task, preset)
        sweep = SweepReport(
            title=f"Fig. 5 ({task}), target={base.target_accuracy}",
            sweep_name="participation",
            sweep_values=list(fractions),
            sampler_names=list(sampler_names),
        )
        for fraction in fractions:
            config = base.with_overrides(participation_fraction=fraction)
            for name in sampler_names:
                times = [
                    run_single(
                        config, name, seed=config.seed + r, stop_at_target=True
                    ).time_to_accuracy(config.target_accuracy)
                    for r in range(repeats)
                ]
                sweep.set(fraction, name, mean_or_none(times))
        report.sweeps[task] = sweep
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

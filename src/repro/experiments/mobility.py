"""EXT-MOBILITY: sensitivity of the samplers to device mobility rate.

An extension beyond the paper's evaluation, probing its core premise:
MACH exists *because* devices move across edges.  We sweep the Markov
stay-probability (1.0 − handover intensity) and measure steps-to-target
for MACH and the baselines.  Expected shape: with no mobility (stay
probability → 1) the problem reduces to classical per-edge FL and
gradient-norm sampling still helps, but MACH's *edge-customized* UCB
bookkeeping matters most at intermediate mobility, where edge member
sets churn and per-device experience must survive edge changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.experiments.config import SAMPLER_NAMES
from repro.experiments.fig3 import scenario_for
from repro.experiments.report import SweepReport, mean_or_none
from repro.experiments.runner import run_single

DEFAULT_STAY_PROBABILITIES: Tuple[float, ...] = (0.5, 0.8, 0.95)


@dataclass
class MobilityReport:
    """One SweepReport (stay probability → steps) per task."""

    sweeps: Dict[str, SweepReport] = field(default_factory=dict)

    def render(self) -> str:
        blocks = [
            "=== EXT-MOBILITY: steps to target vs mobility (stay probability) ==="
        ]
        for task, sweep in self.sweeps.items():
            blocks.append(sweep.render())
        return "\n".join(blocks)


def run(
    preset: str = "bench",
    tasks: Sequence[str] = ("blobs",),
    stay_probabilities: Sequence[float] = DEFAULT_STAY_PROBABILITIES,
    sampler_names: Sequence[str] = ("mach", "uniform", "statistical"),
    repeats: int = 1,
) -> MobilityReport:
    """Sweep the Markov stay probability on a markov-trace scenario."""
    report = MobilityReport()
    for task in tasks:
        base = scenario_for(task, preset).with_overrides(trace_kind="markov")
        sweep = SweepReport(
            title=f"EXT-MOBILITY ({task}, target={base.target_accuracy})",
            sweep_name="stay_probability",
            sweep_values=list(stay_probabilities),
            sampler_names=list(sampler_names),
        )
        for stay in stay_probabilities:
            config = base.with_overrides(stay_probability=stay)
            for name in sampler_names:
                times = [
                    run_single(
                        config, name, seed=config.seed + r, stop_at_target=True
                    ).time_to_accuracy(config.target_accuracy)
                    for r in range(repeats)
                ]
                sweep.set(stay, name, mean_or_none(times))
        report.sweeps[task] = sweep
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Scenario construction and multi-sampler comparison runs.

Also usable as a CLI, organized into subcommands::

    PYTHONPATH=src python -m repro.experiments.runner run \
        --preset blobs-bench --sampler mach --executor process --num-workers 4
    PYTHONPATH=src python -m repro.experiments.runner serve --port 8765
    PYTHONPATH=src python -m repro.experiments.runner resume checkpoint.json
    PYTHONPATH=src python -m repro.experiments.runner bench-smoke

The pre-subcommand flat invocation (flags with no leading subcommand)
still works as an alias of ``run`` but is deprecated and warns.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic import make_federated_task
from repro.experiments.config import (
    SAMPLER_ABBREVIATIONS,
    SAMPLER_NAMES,
    ScenarioConfig,
    make_sampler,
)
from repro.hfl.config import HFLConfig
from repro.hfl.trainer import HFLTrainer, TrainingResult
from repro.mobility.markov import MarkovMobilityModel
from repro.mobility.streaming import (
    DenseChunkProvider,
    MarkovChunkProvider,
    StaticChunkProvider,
    StreamingTrace,
)
from repro.mobility.telecom import TelecomTraceGenerator
from repro.mobility.trace import MobilityTrace, static_trace
from repro.nn.architectures import build_model
from repro.nn.model import Model
from repro.utils.rng import SeedSequenceFactory


def build_trace(config: ScenarioConfig, seed: int):
    """Build the scenario's mobility trace (telecom / markov / static).

    With ``trace_backend="streaming"`` the trace is served from bounded
    chunks (see :mod:`repro.mobility.streaming`): markov walks are
    *generated* chunk by chunk (so the dense grid never exists), static
    rows are tiled virtually, and telecom traces — whose generator is
    inherently dense — are wrapped behind a chunk provider so downstream
    memory still stays bounded.  Note the streaming markov walk draws
    from per-chunk seed streams, so its trajectory differs from the
    dense backend's (same dynamics, different stream layout).
    """
    seeds = SeedSequenceFactory(seed)
    streaming = config.trace_backend == "streaming"
    if config.trace_kind == "telecom":
        generator = TelecomTraceGenerator(
            num_devices=config.num_devices,
            num_stations=max(10 * config.num_edges, 3 * config.num_devices),
            rng=seeds.generator("telecom"),
        )
        trace, _edge_map = generator.generate_trace(
            num_steps=config.num_steps, num_edges=config.num_edges
        )
        if streaming:
            return StreamingTrace(
                DenseChunkProvider(trace.assignments, trace.num_edges),
                chunk_steps=config.trace_chunk_steps,
            )
        return trace
    if config.trace_kind == "markov":
        model = MarkovMobilityModel.stay_or_jump(
            config.num_edges,
            stay_probability=config.stay_probability,
            rng=seeds.generator("markov"),
        )
        if streaming:
            return StreamingTrace(
                MarkovChunkProvider(
                    model.transition,
                    config.num_steps,
                    config.num_devices,
                    seed=seeds.child("markov-stream").master_seed,
                    chunk_steps=config.trace_chunk_steps,
                )
            )
        return model.sample_trace(
            config.num_steps, config.num_devices, rng=seeds.generator("markov-trace")
        )
    if streaming:
        assignment = seeds.generator("static").integers(
            0, config.num_edges, size=config.num_devices
        )
        return StreamingTrace(
            StaticChunkProvider(
                assignment, config.num_steps, config.num_edges
            ),
            chunk_steps=config.trace_chunk_steps,
        )
    return static_trace(
        config.num_steps,
        config.num_devices,
        config.num_edges,
        rng=seeds.generator("static"),
    )


def build_scenario(
    config: ScenarioConfig, seed: Optional[int] = None
) -> Tuple[List[Dataset], Dataset, MobilityTrace, Callable[[np.random.Generator], Model]]:
    """Materialize a scenario: device data, test set, trace, model factory."""
    seed = config.seed if seed is None else seed
    seeds = SeedSequenceFactory(seed)
    devices, test = make_federated_task(
        config.task,
        num_devices=config.num_devices,
        samples_per_device=config.samples_per_device,
        test_samples=config.test_samples,
        image_size=config.image_size,
        alpha=config.dirichlet_alpha,
        imbalance=config.imbalance,
        separation=config.separation,
        noise=config.noise,
        rng=seeds.generator("data"),
    )
    trace = build_trace(config, seed)
    feature_shape = devices[0].feature_shape
    task = config.task if config.task != "blobs" else "mlp"
    scale = config.model_scale

    def model_factory(rng: np.random.Generator) -> Model:
        return build_model(task, feature_shape, scale=scale, rng=rng)

    return devices, test, trace, model_factory


def hfl_config_for(config: ScenarioConfig, seed: int) -> HFLConfig:
    """The :class:`HFLConfig` a scenario implies (shared by benchmarks)."""
    return HFLConfig(
        learning_rate=config.learning_rate,
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        sync_interval=config.sync_interval,
        participation_fraction=config.participation_fraction,
        aggregation=config.aggregation,
        topology=config.topology,
        aggregation_strategy=config.aggregation_strategy,
        num_clusters=config.num_clusters,
        cluster_mixing_weight=config.cluster_mixing_weight,
        gossip_degree=config.gossip_degree,
        executor=config.executor,
        num_workers=config.num_workers,
        fault_profile=config.fault_profile,
        churn_profile=config.churn_profile,
        max_staleness=config.max_staleness,
        staleness_discount=config.staleness_discount,
        checkpoint_every=config.checkpoint_every,
        checkpoint_path=config.checkpoint_path,
        eval_cadence=config.eval_cadence,
        eval_max_interval=config.eval_max_interval,
        eval_accuracy_delta=config.eval_accuracy_delta,
        seed=seed,
    )


def run_single(
    config: ScenarioConfig,
    sampler_name: str,
    seed: Optional[int] = None,
    stop_at_target: bool = False,
    telemetry=None,
    resume_from=None,
    obs=None,
) -> TrainingResult:
    """Run one sampler on one freshly built scenario instance.

    ``resume_from`` (a checkpoint path or
    :class:`~repro.faults.TrainerCheckpoint`) continues a killed run;
    ``obs`` attaches a :class:`repro.obs.Observability` handle.
    """
    seed = config.seed if seed is None else seed
    devices, test, trace, model_factory = build_scenario(config, seed)
    trainer = HFLTrainer(
        model_factory=model_factory,
        device_datasets=devices,
        trace=trace,
        sampler=make_sampler(sampler_name, config),
        config=hfl_config_for(config, seed),
        test_dataset=test,
        telemetry=telemetry,
        obs=obs,
    )
    with trainer:
        return trainer.run(
            config.num_steps,
            target_accuracy=config.target_accuracy,
            stop_at_target=stop_at_target,
            resume_from=resume_from,
        )


@dataclass
class ComparisonReport:
    """Aggregated multi-sampler, multi-repeat comparison on one scenario."""

    config: ScenarioConfig
    results: Dict[str, List[TrainingResult]] = field(default_factory=dict)

    def mean_accuracy_curve(self, sampler: str) -> Tuple[List[int], List[float]]:
        """Repeat-averaged accuracy series (the paper smooths over 3 runs)."""
        runs = self.results[sampler]
        steps = runs[0].history.steps
        matrix = np.array([run.history.accuracy[: len(steps)] for run in runs])
        return list(steps), list(matrix.mean(axis=0))

    def mean_time_to_accuracy(
        self, sampler: str, target: Optional[float] = None
    ) -> Optional[float]:
        """Repeat-averaged steps-to-target; None when any repeat misses it."""
        target = self.config.target_accuracy if target is None else target
        times = [run.time_to_accuracy(target) for run in self.results[sampler]]
        if any(t is None for t in times):
            return None
        return float(np.mean(times))

    def best_baseline(
        self, target: Optional[float] = None, exclude: Sequence[str] = ("mach", "mach_p")
    ) -> Tuple[Optional[str], Optional[float]]:
        """The fastest non-MACH strategy (the paper's underlined column)."""
        best_name, best_time = None, None
        for name in self.results:
            if name in exclude:
                continue
            t = self.mean_time_to_accuracy(name, target)
            if t is not None and (best_time is None or t < best_time):
                best_name, best_time = name, t
        return best_name, best_time

    def mach_savings_percent(self, target: Optional[float] = None) -> Optional[float]:
        """Paper headline: % of time steps MACH saves vs the best baseline."""
        mach_time = self.mean_time_to_accuracy("mach", target)
        _name, base_time = self.best_baseline(target)
        if mach_time is None or base_time is None or base_time == 0:
            return None
        return 100.0 * (base_time - mach_time) / base_time

    def render(self, target: Optional[float] = None) -> str:
        """Human-readable summary table."""
        target = self.config.target_accuracy if target is None else target
        lines = [
            f"scenario: task={self.config.task} edges={self.config.num_edges} "
            f"devices={self.config.num_devices} "
            f"participation={self.config.participation_fraction:.0%} "
            f"I={self.config.local_epochs} Tg={self.config.sync_interval} "
            f"target={target:.2f}",
            f"{'sampler':<16}{'steps-to-target':>16}{'final acc':>12}{'best acc':>10}",
        ]
        for name, runs in self.results.items():
            t = self.mean_time_to_accuracy(name, target)
            final = np.mean([run.history.final_accuracy() for run in runs])
            best = np.mean([run.history.best_accuracy() for run in runs])
            label = SAMPLER_ABBREVIATIONS.get(name, name)
            t_str = f"{t:.0f}" if t is not None else "not reached"
            lines.append(f"{label:<16}{t_str:>16}{final:>12.3f}{best:>10.3f}")
        savings = self.mach_savings_percent(target)
        if savings is not None:
            base_name, _ = self.best_baseline(target)
            lines.append(
                f"MACH saves {savings:.2f}% vs best baseline "
                f"({SAMPLER_ABBREVIATIONS.get(base_name, base_name)})"
            )
        return "\n".join(lines)


def run_comparison(
    config: ScenarioConfig,
    sampler_names: Sequence[str] = SAMPLER_NAMES,
    repeats: int = 1,
    stop_at_target: bool = False,
) -> ComparisonReport:
    """Run every requested sampler ``repeats`` times on the scenario.

    Each repeat uses seed ``config.seed + r`` for *all* samplers, so the
    comparison within a repeat shares data, trace and initial model —
    the paper's "each set of experiments three times and take the
    average" protocol with paired randomness.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    report = ComparisonReport(config=config)
    for name in sampler_names:
        runs = [
            run_single(config, name, seed=config.seed + r, stop_at_target=stop_at_target)
            for r in range(repeats)
        ]
        report.results[name] = runs
    return report


# ---------------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    """The flat single-run parser (the ``run`` subcommand's flag set)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Run one sampler on one scenario preset.",
    )
    _add_run_arguments(parser)
    return parser


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.experiments.config import PRESETS
    from repro.runtime import EXECUTOR_KINDS
    from repro.topology import AGGREGATION_STRATEGIES, TOPOLOGY_KINDS

    parser.add_argument(
        "--preset", default="blobs-bench", choices=sorted(PRESETS),
        help="scenario preset (default: blobs-bench)",
    )
    parser.add_argument(
        "--sampler", default="mach", choices=SAMPLER_NAMES,
        help="device-sampling strategy (default: mach)",
    )
    parser.add_argument(
        "--executor", default="serial", choices=EXECUTOR_KINDS,
        help="runtime backend for device local updates (default: serial)",
    )
    parser.add_argument(
        "--num-workers", type=int, default=None,
        help="worker count for pooled executors (default: CPU count)",
    )
    topo_group = parser.add_argument_group("topology")
    topo_group.add_argument(
        "--topology", default=None, choices=TOPOLOGY_KINDS,
        help="sync-step communication pattern: the paper's cloud/edge "
             "tree, edge clusters with inter-cluster mixing, or "
             "cloudless gossip (default: the preset's, normally "
             "hierarchical)",
    )
    topo_group.add_argument(
        "--aggregation", default=None, choices=AGGREGATION_STRATEGIES,
        help="sync-step aggregation strategy (default: the topology's "
             "canonical one: ipw / cluster_mix / gossip_avg)",
    )
    topo_group.add_argument(
        "--num-clusters", type=int, default=None, metavar="C",
        help="cluster count for --topology clustered "
             "(default: ceil(sqrt(num_edges)))",
    )
    topo_group.add_argument(
        "--mixing-weight", type=float, default=None, metavar="LAMBDA",
        help="inter-cluster mixing weight in [0, 1] for cluster_mix "
             "(default: 0.25)",
    )
    topo_group.add_argument(
        "--gossip-degree", type=int, default=None, metavar="K",
        help="peers each edge gossips with per sync step (default: 2)",
    )
    scale_group = parser.add_argument_group(
        "scale", "city-scale population engine (see DESIGN.md §14)"
    )
    scale_group.add_argument(
        "--devices", type=int, default=None, metavar="M",
        help="override the preset's device population size",
    )
    scale_group.add_argument(
        "--edges", type=int, default=None, metavar="N",
        help="override the preset's edge count",
    )
    scale_group.add_argument(
        "--samples-per-device", type=int, default=None, metavar="S",
        help="override the preset's per-device dataset size",
    )
    scale_group.add_argument(
        "--participation", type=float, default=None, metavar="F",
        help="override the preset's participation fraction (per-edge "
             "capacity is F * devices / edges)",
    )
    scale_group.add_argument(
        "--trace-kind", default=None, choices=("telecom", "markov", "static"),
        help="mobility model generating the trace (default: the "
             "preset's; markov recommended at city scale — the telecom "
             "generator sizes its station grid with the population)",
    )
    scale_group.add_argument(
        "--trace-backend", default=None, choices=("dense", "streaming"),
        help="mobility trace storage: materialized grid, or chunked "
             "streaming membership (bounded memory at any population)",
    )
    scale_group.add_argument(
        "--trace-chunk-steps", type=int, default=None, metavar="C",
        help="streaming-backend chunk length in steps (default: 64)",
    )
    scale_group.add_argument(
        "--mach-selection", default=None, choices=("full", "topk"),
        help="MACH candidate selection: score all edge members, or "
             "argpartition-prescreen top candidates so strategy cost "
             "tracks capacity instead of population",
    )
    scale_group.add_argument(
        "--eval-cadence", default=None, choices=("fixed", "adaptive"),
        help="evaluation schedule: every eval-interval steps, or "
             "accuracy-delta triggered backoff for long horizons",
    )
    parser.add_argument("--steps", type=int, default=None,
                        help="override the preset's training horizon")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the preset's master seed")
    parser.add_argument("--stop-at-target", action="store_true",
                        help="stop as soon as the target accuracy is reached")
    parser.add_argument(
        "--fault-profile", default=None, metavar="SPEC",
        help="fault injection: a preset (none/mild/moderate/severe) and/or "
             "key=value pairs, e.g. 'severe' or 'dropout=0.2,corruption=0.05'",
    )
    parser.add_argument(
        "--churn", default=None, metavar="SPEC", dest="churn",
        help="open-population churn: a preset (none/light/moderate/heavy) "
             "and/or key=value pairs, e.g. 'moderate' or "
             "'arrival=0.1,departure=0.05,initial_active=0.9'",
    )
    parser.add_argument(
        "--max-staleness", type=int, default=None, metavar="S",
        help="bounded-staleness window: park straggler uploads and admit "
             "them up to S steps late with an age-discounted weight "
             "(default: 0 = drop stragglers; needs a fault profile with "
             "a straggler deadline to matter)",
    )
    parser.add_argument(
        "--staleness-discount", type=float, default=None, metavar="D",
        help="per-step age discount in (0, 1] applied to an admitted "
             "late upload's weight (default: 0.5)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="write a resumable checkpoint every K completed steps",
    )
    parser.add_argument(
        "--checkpoint-path", default=None, metavar="PATH",
        help="checkpoint file location (default: checkpoint.json when "
             "--checkpoint-every is set)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a killed run from the checkpoint at PATH",
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--log-jsonl", default=None, metavar="PATH",
        help="write the structured JSONL event log (manifest + typed "
             "round/fault/sync/sampling/checkpoint/eval events) to PATH; "
             "also enables the MACH decision audit trail",
    )
    obs_group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the span trace (cloud_step → edge_round → "
             "device_update hierarchy) as JSONL to PATH",
    )
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as JSON to PATH and as "
             "Prometheus text to PATH with a .prom suffix",
    )
    obs_group.add_argument(
        "--profile", action="store_true",
        help="enable the continuous profiler (phase → subsystem → site "
             "wall/CPU attribution); prints the top hotspots after the "
             "run",
    )
    obs_group.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write the full profiler report (hotspot table, per-phase "
             "totals, recent steps, allocation samples) as JSON to PATH "
             "(implies --profile)",
    )
    obs_group.add_argument(
        "--flamegraph-out", default=None, metavar="PATH",
        help="write collapsed-stack lines (flamegraph.pl / speedscope "
             "compatible) to PATH (implies --profile)",
    )
    obs_group.add_argument(
        "--profile-alloc-every", default=None, type=int, metavar="K",
        help="sample tracemalloc allocation snapshots every K steps "
             "(implies --profile; allocation tracing has real overhead)",
    )
    obs_group.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="evaluate the rolling-window health/SLO rules each step and "
             "write the final HealthReport (verdict, rules, transitions) "
             "as JSON to PATH",
    )
    obs_group.add_argument(
        "--obs-off", action="store_true",
        help="one switch to force ALL observability off — event log, "
             "trace, metrics, profiler and health hooks — even when "
             "their flags are given (for A/B bit-identity checks)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--log-level", default="info", choices=("quiet", "info", "debug"),
        help="console verbosity: quiet silences the summary prints, "
             "debug adds the phase-timing table (default: info)",
    )
    verbosity.add_argument(
        "--quiet", action="store_true",
        help="shorthand for --log-level quiet (for CI and sweep scripts)",
    )


def _scenario_manifest(config: ScenarioConfig) -> Dict[str, object]:
    """A JSON-safe dump of the scenario config for the run manifest."""
    from dataclasses import asdict

    return {
        k: v
        for k, v in asdict(config).items()
        if isinstance(v, (bool, int, float, str)) or v is None
    }


def _profile_requested(args) -> bool:
    return bool(
        args.profile
        or args.profile_out
        or args.flamegraph_out
        or args.profile_alloc_every
    )


def _obs_requested(args) -> bool:
    """Whether any observability flag would construct a sink."""
    return bool(
        args.log_jsonl
        or args.trace_out
        or args.metrics_out
        or args.health_out
        or _profile_requested(args)
    )


def _build_observability(args, config: ScenarioConfig):
    """Construct the CLI run's :class:`repro.obs.Observability`, or None.

    Each sink is enabled only by its own flag, so ``--trace-out`` alone
    pays no event-log or metrics cost; ``--log-jsonl`` also turns on the
    MACH audit trail, which mirrors its decisions into the log as
    ``sampling`` events; ``--health-out`` (and ``--metrics-out``) bring
    up the metrics registry with the resource accountant attached, so
    payload/RSS metrics reach the exporters.  ``--obs-off`` is the
    single kill switch: it returns None before ANY sink — including the
    profiler and health hooks — is constructed, so there is no partial
    instrumentation to reason about.
    """
    if args.obs_off:
        return None
    if not _obs_requested(args):
        return None
    from repro.faults import make_fault_model, resolve_fault_profile
    from repro.obs import (
        EventLog,
        HealthMonitor,
        MACHAuditTrail,
        MetricsRegistry,
        Observability,
        Profiler,
        ResourceAccountant,
        SpanTracer,
        build_manifest,
        default_rules,
    )

    events = None
    if args.log_jsonl:
        events = EventLog(args.log_jsonl)
        fault_model = make_fault_model(resolve_fault_profile(config.fault_profile))
        events.write_manifest(
            build_manifest(
                seed=config.seed,
                sampler=args.sampler,
                num_steps=config.num_steps,
                config=_scenario_manifest(config),
                fault_profile=(
                    fault_model.describe() if fault_model is not None else None
                ),
                extra={"preset": args.preset, "executor": config.executor},
            )
        )
    metrics = (
        MetricsRegistry()
        if (args.metrics_out or args.health_out)
        else None
    )
    profiler = None
    if _profile_requested(args):
        profiler = Profiler(alloc_every=args.profile_alloc_every)
    health = None
    if args.health_out:
        health = HealthMonitor(
            metrics,
            rules=default_rules(checkpoint_every=config.checkpoint_every),
        )
    return Observability(
        events=events,
        tracer=SpanTracer() if args.trace_out else None,
        metrics=metrics,
        audit=MACHAuditTrail(event_log=events) if events is not None else None,
        profiler=profiler,
        resources=(
            ResourceAccountant(metrics) if metrics is not None else None
        ),
        health=health,
    )


def _write_obs_outputs(args, obs, echo) -> None:
    """Flush file-backed sinks and write the trace/metrics snapshots."""
    if obs is None:
        return
    from pathlib import Path

    if obs.events is not None:
        echo(f"event log: {args.log_jsonl} ({obs.events.num_events} events)")
    if args.trace_out and obs.tracer.enabled:
        obs.tracer.write_jsonl(args.trace_out)
        echo(f"trace: {args.trace_out} ({len(obs.tracer.to_list())} spans)")
    if args.metrics_out and obs.metrics is not None:
        obs.metrics.write_json(args.metrics_out)
        prom_path = Path(args.metrics_out).with_suffix(".prom")
        obs.metrics.write_prometheus(prom_path)
        echo(f"metrics: {args.metrics_out} + {prom_path}")
    if obs.profiler is not None:
        if args.profile_out:
            obs.profiler.write_json(args.profile_out)
            echo(f"profile: {args.profile_out}")
        if args.flamegraph_out:
            obs.profiler.write_collapsed(args.flamegraph_out)
            echo(f"flamegraph: {args.flamegraph_out}")
    if args.health_out and obs.health is not None:
        obs.health.write_json(args.health_out)
        echo(f"health: {args.health_out}")
    obs.close()


def _run_command(args) -> int:
    """Execute one configured run (the ``run``/``resume`` subcommands)."""
    from repro.experiments.config import PRESETS

    level = "quiet" if args.quiet else args.log_level
    verbosity = {"quiet": 0, "info": 1, "debug": 2}[level]

    def echo(message: str, min_level: int = 1) -> None:
        if verbosity >= min_level:
            print(message)

    config = PRESETS[args.preset]
    overrides = {"executor": args.executor, "num_workers": args.num_workers}
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.aggregation is not None:
        overrides["aggregation_strategy"] = args.aggregation
    if args.num_clusters is not None:
        overrides["num_clusters"] = args.num_clusters
    if args.mixing_weight is not None:
        overrides["cluster_mixing_weight"] = args.mixing_weight
    if args.gossip_degree is not None:
        overrides["gossip_degree"] = args.gossip_degree
    if args.devices is not None:
        overrides["num_devices"] = args.devices
    if args.edges is not None:
        overrides["num_edges"] = args.edges
    if args.samples_per_device is not None:
        overrides["samples_per_device"] = args.samples_per_device
    if args.participation is not None:
        overrides["participation_fraction"] = args.participation
    if args.trace_kind is not None:
        overrides["trace_kind"] = args.trace_kind
    if args.trace_backend is not None:
        overrides["trace_backend"] = args.trace_backend
    if args.trace_chunk_steps is not None:
        overrides["trace_chunk_steps"] = args.trace_chunk_steps
    if args.mach_selection is not None:
        overrides["mach_selection"] = args.mach_selection
    if args.eval_cadence is not None:
        overrides["eval_cadence"] = args.eval_cadence
    if args.steps is not None:
        overrides["num_steps"] = args.steps
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.fault_profile is not None:
        overrides["fault_profile"] = args.fault_profile
    if args.churn is not None:
        overrides["churn_profile"] = args.churn
    if args.max_staleness is not None:
        overrides["max_staleness"] = args.max_staleness
    if args.staleness_discount is not None:
        overrides["staleness_discount"] = args.staleness_discount
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
        overrides["checkpoint_path"] = args.checkpoint_path or "checkpoint.json"
    config = config.with_overrides(**overrides)

    if args.obs_off and _obs_requested(args):
        echo(
            "warning: --obs-off overrides the given observability flags; "
            "no event log, trace, metrics, profile or health output "
            "will be written"
        )
    obs = _build_observability(args, config)

    telemetry = None
    if obs is not None:
        telemetry = obs.telemetry_recorder()
    elif args.fault_profile is not None or args.churn is not None:
        from repro.hfl.telemetry import TelemetryRecorder

        telemetry = TelemetryRecorder()

    resume_from = None
    if args.resume is not None:
        # Crash-safe resume: a truncated or checksum-corrupted primary
        # checkpoint falls back to the rotated .prev copy that save()
        # kept from the previous write.
        from repro.faults import TrainerCheckpoint

        resume_from, used = TrainerCheckpoint.load_with_fallback(args.resume)
        if str(used) != str(args.resume):
            echo(
                f"warning: checkpoint at {args.resume} is unusable; "
                f"resuming from the rotated copy {used} "
                f"(step {resume_from.step})"
            )

    # Route through the public facade (lazy: repro.api sits above this
    # module in the import order).
    from repro.api import run_scenario

    start = time.perf_counter()
    result = run_scenario(
        config,
        sampler=args.sampler,
        stop_at_target=args.stop_at_target,
        telemetry=telemetry,
        resume_from=resume_from,
        obs=obs,
    )
    elapsed = time.perf_counter() - start

    reached = (
        f"reached target {config.target_accuracy:.2f} at step {result.reached_target_at}"
        if result.reached_target_at is not None
        else f"target {config.target_accuracy:.2f} not reached"
    )
    from repro.topology import validate_pair

    effective_aggregation = validate_pair(
        config.topology, config.aggregation_strategy
    )
    echo(
        f"preset={args.preset} sampler={result.sampler_name} "
        f"topology={config.topology} aggregation={effective_aggregation} "
        f"executor={args.executor} workers={args.num_workers or 'auto'}"
    )
    echo(
        f"steps={result.steps_run} final_acc={result.history.final_accuracy():.3f} "
        f"best_acc={result.history.best_accuracy():.3f} "
        f"mean_participants={result.mean_participants_per_step:.2f}"
    )
    echo(f"{reached}; wall-clock {elapsed:.2f}s")
    if telemetry is not None and args.fault_profile is not None:
        summary = telemetry.fault_summary()
        faults = (
            " ".join(f"{k}={v}" for k, v in sorted(summary.items()))
            if summary
            else "none"
        )
        echo(
            f"faults: {faults}; degraded_rounds={len(telemetry.degraded_rounds)} "
            f"lost_rounds={telemetry.lost_round_count()} "
            f"stale_syncs={telemetry.stale_sync_count()} "
            f"sim_backoff={telemetry.simulated_backoff_seconds():.1f}s"
        )
    if telemetry is not None and (
        config.churn_profile is not None or config.max_staleness > 0
    ):
        age = telemetry.mean_admitted_age()
        age_str = f" mean_admitted_age={age:.2f}" if age is not None else ""
        echo(
            f"churn: joined={telemetry.devices_joined()} "
            f"left={telemetry.devices_left()}; "
            f"late_admits={telemetry.late_admit_count()} "
            f"late_drops={telemetry.late_drop_count()}{age_str}"
        )
    if telemetry is not None and verbosity >= 2:
        for phase, row in telemetry.phase_summary().items():
            echo(
                f"phase {phase:<12} {row['seconds']:.3f}s "
                f"({row['share']:.0%}, {row['calls']:.0f} calls)",
                min_level=2,
            )
    if obs is not None and obs.profiler is not None:
        for row in obs.profiler.hotspot_table()[:5]:
            echo(
                f"hotspot {row['phase']}/{row['subsystem']}/{row['site']} "
                f"{row['wall_seconds']:.3f}s ({row['share']:.0%}, "
                f"{row['calls']} calls)"
            )
    if obs is not None and obs.health is not None:
        report = obs.health.last_report
        if report is not None:
            failing = [
                f"{row['name']}={row['verdict']}"
                for row in report.rules
                if row["verdict"] != "ok"
            ]
            detail = f" ({', '.join(failing)})" if failing else ""
            echo(f"health: {report.verdict}{detail}")
    if obs is not None and obs.resources is not None:
        summary = obs.resources.summary()
        echo(
            f"resources: payload={summary['payload_mb_total']:.1f}MB "
            f"rss={summary['rss_current_mb'] or 0:.0f}MB "
            f"peak={summary['rss_peak_mb'] or 0:.0f}MB",
            min_level=2,
        )
    _write_obs_outputs(args, obs, lambda m: echo(m, min_level=2))
    return 0


# ---------------------------------------------------------------------------
# Subcommand dispatch


SUBCOMMANDS = ("run", "serve", "resume", "bench-smoke")

_PROG = "repro.experiments.runner"


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} serve",
        description="Start the always-on coordinator service over HTTP.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8765,
        help="listen port, 0 picks a free one (default: 8765)",
    )
    parser.add_argument(
        "--state-dir", default="service-state", metavar="DIR",
        help="durable run state: manifests, checkpoints, round logs "
             "(default: service-state)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="K",
        help="checkpoint live runs every K steps (default: 5)",
    )
    parser.add_argument(
        "--no-recover", action="store_true",
        help="do not resume interrupted runs found in --state-dir",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log one line per HTTP request",
    )
    return parser


def _serve_command(args) -> int:
    from repro.service import Coordinator, serve

    coordinator = Coordinator(
        state_dir=args.state_dir, checkpoint_every=args.checkpoint_every
    )
    if not args.no_recover:
        resumed = coordinator.recover()
        for run_id in resumed:
            print(f"recovered interrupted run {run_id}")
    serve(coordinator, host=args.host, port=args.port, verbose=args.verbose)
    return 0


def _bench_smoke_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} bench-smoke",
        description="Smoke-check the coordinator service against the "
                    "synchronous trainer: same scenario, same seed, the "
                    "drained-queue service run must be bit-identical.",
    )
    parser.add_argument(
        "--preset", default="blobs-bench",
        help="scenario preset (default: blobs-bench)",
    )
    parser.add_argument(
        "--sampler", default="mach",
        help="device-sampling strategy (default: mach)",
    )
    parser.add_argument(
        "--steps", type=int, default=6, metavar="T",
        help="override num_steps for the smoke run (default: 6)",
    )
    return parser


def _bench_smoke_command(args) -> int:
    import tempfile

    from repro.api import run_scenario
    from repro.service import Coordinator

    reference = run_scenario(
        preset=args.preset, sampler=args.sampler, num_steps=args.steps
    )
    from repro.experiments.config import PRESETS

    config = PRESETS[args.preset].with_overrides(num_steps=args.steps)
    with tempfile.TemporaryDirectory(prefix="repro-bench-smoke-") as state:
        with Coordinator(state_dir=state) as coordinator:
            run_id = coordinator.submit(
                config, sampler=args.sampler, preset=args.preset
            )
            result = coordinator.result(run_id)
    identical = (
        reference.final_cloud_model is not None
        and result.final_cloud_model is not None
        and np.array_equal(
            reference.final_cloud_model, result.final_cloud_model
        )
    )
    verdict = "PASS" if identical else "FAIL"
    print(
        f"bench-smoke {verdict}: preset={args.preset} "
        f"sampler={args.sampler} steps={result.steps_run} "
        f"service run bit-identical to synchronous trainer: {identical}"
    )
    return 0 if identical else 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
        if command == "serve":
            return _serve_command(_serve_parser().parse_args(rest))
        if command == "bench-smoke":
            return _bench_smoke_command(_bench_smoke_parser().parse_args(rest))
        if command == "resume":
            parser = argparse.ArgumentParser(
                prog=f"{_PROG} resume",
                description="Resume a single run from a saved checkpoint.",
            )
            parser.add_argument(
                "checkpoint", help="checkpoint file written by a prior run"
            )
            _add_run_arguments(parser)
            args = parser.parse_args(rest)
            args.resume = args.checkpoint
            return _run_command(args)
        parser = argparse.ArgumentParser(
            prog=f"{_PROG} run",
            description="Run one sampler on one scenario preset.",
        )
        _add_run_arguments(parser)
        return _run_command(parser.parse_args(rest))
    # Legacy flat invocation: flags with no leading subcommand.  Kept as
    # an alias of `run` so existing scripts keep working, but deprecated.
    warnings.warn(
        "invoking repro.experiments.runner without a subcommand is "
        "deprecated; use `python -m repro.experiments.runner run ...`",
        FutureWarning,
        stacklevel=2,
    )
    return _run_command(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Figure 3: time-to-accuracy curves over all learning tasks.

The paper's Fig. 3 plots test accuracy against training time steps for
MNIST / FMNIST / CIFAR10 under the five strategies, with MACH reaching
the target accuracy 25.00%–56.86% faster than the best basic sampler.
``run()`` regenerates the same series (repeat-averaged accuracy per
evaluation step) and the savings headline per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import PRESETS, SAMPLER_NAMES, ScenarioConfig
from repro.experiments.runner import ComparisonReport, run_comparison

DEFAULT_TASKS: Tuple[str, ...] = ("mnist", "fmnist", "cifar10")


@dataclass
class Fig3Report:
    """One ComparisonReport per task, plus rendering helpers."""

    reports: Dict[str, ComparisonReport] = field(default_factory=dict)

    def savings(self) -> Dict[str, float]:
        """Per-task MACH savings vs the best basic sampler (the headline)."""
        out = {}
        for task, report in self.reports.items():
            value = report.mach_savings_percent()
            if value is not None:
                out[task] = value
        return out

    def render(self) -> str:
        blocks = ["=== Figure 3: time-to-accuracy over all learning tasks ==="]
        for task, report in self.reports.items():
            blocks.append(f"--- Fig. 3 ({task}) ---")
            blocks.append(report.render())
            for name in report.results:
                steps, acc = report.mean_accuracy_curve(name)
                series = " ".join(f"{a:.3f}" for a in acc)
                blocks.append(f"  curve[{name}] steps={steps[0]}..{steps[-1]}: {series}")
        return "\n".join(blocks)


def scenario_for(task: str, preset: str = "bench") -> ScenarioConfig:
    """Resolve the ScenarioConfig for a task/preset pair."""
    key = f"{task}-{preset}"
    if key not in PRESETS:
        raise ValueError(f"no preset named {key!r}; available: {sorted(PRESETS)}")
    return PRESETS[key]


def run(
    preset: str = "bench",
    tasks: Sequence[str] = DEFAULT_TASKS,
    sampler_names: Sequence[str] = SAMPLER_NAMES,
    repeats: int = 1,
) -> Fig3Report:
    """Regenerate Figure 3 for the requested tasks."""
    report = Fig3Report()
    for task in tasks:
        config = scenario_for(task, preset)
        report.reports[task] = run_comparison(
            config, sampler_names=sampler_names, repeats=repeats
        )
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 4: steps-to-target-accuracy under different edge counts.

The paper's Fig. 4 reruns the Fig.-3 workloads with 2, 5 and 10 edges
(channel capacity rescaled so ≈50% of devices still participate) and
finds MACH's improvement over the best basic sampler *shrinks
monotonically as the edge count decreases* — with few edges, HFL
degenerates toward a flat server-client topology where edge-specific
strategies matter less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import SAMPLER_NAMES, ScenarioConfig
from repro.experiments.fig3 import scenario_for
from repro.experiments.report import SweepReport, mean_or_none
from repro.experiments.runner import run_single

DEFAULT_EDGE_COUNTS: Tuple[int, ...] = (2, 5, 10)


@dataclass
class Fig4Report:
    """One SweepReport (edges → steps) per task."""

    sweeps: Dict[str, SweepReport] = field(default_factory=dict)

    def render(self) -> str:
        blocks = ["=== Figure 4: steps to target accuracy vs number of edges ==="]
        for task, sweep in self.sweeps.items():
            blocks.append(sweep.render())
        return "\n".join(blocks)


def run(
    preset: str = "bench",
    tasks: Sequence[str] = ("mnist",),
    edge_counts: Sequence[int] = DEFAULT_EDGE_COUNTS,
    sampler_names: Sequence[str] = SAMPLER_NAMES,
    repeats: int = 1,
) -> Fig4Report:
    """Regenerate Figure 4: sweep the edge count at fixed participation."""
    report = Fig4Report()
    for task in tasks:
        base = scenario_for(task, preset)
        sweep = SweepReport(
            title=f"Fig. 4 ({task}), target={base.target_accuracy}",
            sweep_name="num_edges",
            sweep_values=list(edge_counts),
            sampler_names=list(sampler_names),
        )
        for num_edges in edge_counts:
            config = base.with_overrides(num_edges=num_edges)
            for name in sampler_names:
                times = [
                    run_single(
                        config, name, seed=config.seed + r, stop_at_target=True
                    ).time_to_accuracy(config.target_accuracy)
                    for r in range(repeats)
                ]
                sweep.set(num_edges, name, mean_or_none(times))
        report.sweeps[task] = sweep
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Experiment harness: one driver per paper figure/table.

Every driver exposes ``run(preset=...) -> report`` returning a
structured report object whose ``render()`` prints the same rows/series
the paper reports, plus a module-level ``main()`` for CLI use.  The
``"bench"`` preset is CPU-sized (reduced resolution / population /
horizon); ``"paper"`` matches the paper's §IV-A.2 settings and is
correspondingly slow on a pure-numpy substrate.
"""

from repro.experiments.config import (
    PRESETS,
    SAMPLER_NAMES,
    ScenarioConfig,
    make_sampler,
)
from repro.experiments.runner import (
    ComparisonReport,
    build_scenario,
    run_comparison,
    run_single,
)

__all__ = [
    "PRESETS",
    "SAMPLER_NAMES",
    "ScenarioConfig",
    "make_sampler",
    "ComparisonReport",
    "build_scenario",
    "run_comparison",
    "run_single",
]

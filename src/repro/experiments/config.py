"""Scenario configuration and presets for the evaluation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.edge_sampling import EdgeSamplingConfig
from repro.core.mach import MACHConfig, MACHSampler
from repro.sampling import (
    ClassBalanceSampler,
    MACHOracleSampler,
    Sampler,
    StatisticalSampler,
    UniformSampler,
)
from repro.utils.validation import check_fraction, check_membership, check_positive

#: The five strategies compared throughout §IV.
SAMPLER_NAMES: Tuple[str, ...] = (
    "mach",
    "mach_p",
    "uniform",
    "class_balance",
    "statistical",
)

#: Abbreviations used in the paper's Table I.
SAMPLER_ABBREVIATIONS: Dict[str, str] = {
    "mach": "MACH",
    "mach_p": "MACH-P",
    "uniform": "US",
    "class_balance": "CS",
    "statistical": "SS",
}


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully specified HFL scenario (workload + system + training).

    The defaults mirror the paper's §IV-A.2 base configuration; presets
    below derive the per-task / per-scale variants.
    """

    task: str = "mnist"
    num_devices: int = 100
    num_edges: int = 10
    samples_per_device: int = 100
    test_samples: int = 1000
    image_size: Optional[int] = None  # None = paper shape
    model_scale: str = "small"
    dirichlet_alpha: float = 0.3
    imbalance: float = 4.0
    separation: Optional[float] = None  # None = task-spec default
    noise: Optional[float] = None

    participation_fraction: float = 0.5
    local_epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 0.002
    sync_interval: int = 5
    num_steps: int = 400
    target_accuracy: float = 0.75
    trace_kind: str = "telecom"  # telecom | markov | static
    # Trace storage backend: "dense" materializes the (steps, devices)
    # assignment grid; "streaming" serves the same query surface from
    # bounded-size chunks (see repro.mobility.streaming) so city-scale
    # populations never hold the full grid.
    trace_backend: str = "dense"  # dense | streaming
    trace_chunk_steps: int = 64  # streaming backend chunk length
    aggregation: str = "fedavg"  # see repro.hfl.config.AGGREGATION_MODES
    # Sync-step communication pattern and model-combination strategy
    # (see repro.topology): hierarchical | clustered | gossip, and
    # ipw | cluster_mix | gossip_avg (None = topology default).
    topology: str = "hierarchical"
    aggregation_strategy: Optional[str] = None
    num_clusters: Optional[int] = None  # clustered: None = ceil(sqrt(E))
    cluster_mixing_weight: float = 0.25  # cluster_mix lambda in [0, 1]
    gossip_degree: int = 2  # gossip peers per edge per sync step
    stay_probability: float = 0.8  # markov trace parameter
    executor: str = "serial"  # see repro.runtime.EXECUTOR_KINDS
    num_workers: Optional[int] = None  # None = CPU count (pooled executors)
    # Fault-injection spec (preset name and/or key=value pairs) resolved
    # by repro.faults.resolve_fault_profile; None = perfect world.
    fault_profile: Optional[str] = None
    # Open-population spec (preset name and/or key=value pairs) resolved
    # by repro.churn.resolve_churn_profile; None = closed world.
    churn_profile: Optional[str] = None
    # Bounded-staleness window for late uploads (0 = drop stragglers)
    # and the per-step age discount of an admitted upload's weight.
    max_staleness: int = 0
    staleness_discount: float = 0.5
    checkpoint_every: Optional[int] = None  # steps between checkpoints
    checkpoint_path: Optional[str] = None  # where the checkpoint lands
    seed: int = 0
    mach_alpha: float = 8.0
    mach_beta: float = 2.0
    mach_warmup: int = 0
    mach_ucb_window: str = "recent"
    # MACH candidate selection: "full" scores every edge member (exact
    # paper behavior); "topk" argpartition-prescreens candidates so the
    # per-edge strategy cost tracks capacity, not population.
    mach_selection: str = "full"  # full | topk
    mach_candidate_factor: float = 4.0  # topk pool = factor * capacity
    # Evaluation cadence: "fixed" evaluates every eval-interval steps;
    # "adaptive" doubles the interval while accuracy plateaus (|Δacc| <
    # eval_accuracy_delta) up to eval_max_interval and resets on
    # movement — long-horizon runs stop paying O(test set) per sync.
    eval_cadence: str = "fixed"  # fixed | adaptive
    eval_max_interval: Optional[int] = None  # None = 8 * base interval
    eval_accuracy_delta: float = 0.005

    def __post_init__(self) -> None:
        check_positive("num_devices", self.num_devices)
        check_positive("num_edges", self.num_edges)
        check_positive("samples_per_device", self.samples_per_device)
        check_positive("num_steps", self.num_steps)
        check_fraction("participation_fraction", self.participation_fraction)
        check_fraction("target_accuracy", self.target_accuracy)
        check_membership("trace_kind", self.trace_kind, ("telecom", "markov", "static"))
        check_membership("trace_backend", self.trace_backend, ("dense", "streaming"))
        check_positive("trace_chunk_steps", self.trace_chunk_steps)
        check_membership("mach_selection", self.mach_selection, ("full", "topk"))
        check_positive("mach_candidate_factor", self.mach_candidate_factor)
        check_membership("eval_cadence", self.eval_cadence, ("fixed", "adaptive"))
        if self.eval_max_interval is not None:
            check_positive("eval_max_interval", self.eval_max_interval)
        check_positive("eval_accuracy_delta", self.eval_accuracy_delta)
        if self.num_edges > self.num_devices:
            raise ValueError("need at least as many devices as edges")
        if self.fault_profile is not None:
            # Fail fast on typos: the spec string must parse.
            from repro.faults import resolve_fault_profile

            resolve_fault_profile(self.fault_profile)
        if self.churn_profile is not None:
            from repro.churn import resolve_churn_profile

            resolve_churn_profile(self.churn_profile)
        if self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError(
                f"staleness_discount must be in (0, 1], got "
                f"{self.staleness_discount}"
            )
        if self.checkpoint_every is not None:
            check_positive("checkpoint_every", self.checkpoint_every)
        # Validate the topology pair exactly like HFLConfig will.
        from repro.topology import validate_pair

        validate_pair(self.topology, self.aggregation_strategy)
        if self.num_clusters is not None:
            check_positive("num_clusters", self.num_clusters)
            if self.num_clusters > self.num_edges:
                raise ValueError(
                    f"num_clusters={self.num_clusters} exceeds the "
                    f"{self.num_edges} edges"
                )
        check_fraction("cluster_mixing_weight", self.cluster_mixing_weight)
        check_positive("gossip_degree", self.gossip_degree)

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dump of every field (all scalars or ``None``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioConfig":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are rejected explicitly — a typoed or stale field
        in a persisted scenario must fail loudly, not be dropped.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ScenarioConfig fields: {unknown}")
        return cls(**payload)

    @property
    def capacity_per_edge(self) -> float:
        """Average channel capacity K_n implied by the participation target."""
        return self.participation_fraction * self.num_devices / self.num_edges


def make_sampler(name: str, config: ScenarioConfig) -> Sampler:
    """Instantiate the named strategy with the scenario's MACH coefficients."""
    edge_cfg = EdgeSamplingConfig(
        alpha=config.mach_alpha,
        beta=config.mach_beta,
        warmup_steps=config.mach_warmup,
    )
    if name == "mach":
        return MACHSampler(
            MACHConfig(
                edge_sampling=edge_cfg,
                sync_interval=config.sync_interval,
                ucb_window=config.mach_ucb_window,
                selection=config.mach_selection,
                candidate_factor=config.mach_candidate_factor,
            )
        )
    if name == "mach_p":
        return MACHOracleSampler(edge_cfg)
    if name == "uniform":
        return UniformSampler()
    if name == "class_balance":
        return ClassBalanceSampler()
    if name == "statistical":
        return StatisticalSampler()
    raise ValueError(f"unknown sampler {name!r}; choose from {SAMPLER_NAMES}")


def _paper_presets() -> Dict[str, ScenarioConfig]:
    """The paper's own configurations (§IV-A.2): 100 devices, 10 edges,
    50% participation, I=10; per-task γ / T_g / target accuracy."""
    base = ScenarioConfig(
        num_devices=100,
        num_edges=10,
        samples_per_device=500,
        model_scale="paper",
    )
    return {
        "mnist-paper": base.with_overrides(
            task="mnist",
            learning_rate=0.002,
            sync_interval=5,
            target_accuracy=0.75,
            num_steps=400,
        ),
        "fmnist-paper": base.with_overrides(
            task="fmnist",
            learning_rate=0.002,
            sync_interval=5,
            target_accuracy=0.65,
            num_steps=500,
        ),
        "cifar10-paper": base.with_overrides(
            task="cifar10",
            learning_rate=0.02,
            sync_interval=10,
            target_accuracy=0.75,
            num_steps=5000,
        ),
    }


def _bench_presets() -> Dict[str, ScenarioConfig]:
    """CPU-sized configurations preserving the paper's comparative shape:
    same topology ratios (devices : edges : capacity), same Non-IID
    split, reduced resolution / population / horizon."""
    base = ScenarioConfig(
        num_devices=50,
        num_edges=5,
        samples_per_device=60,
        test_samples=400,
        image_size=12,
        model_scale="tiny",
        batch_size=8,
        local_epochs=5,
        num_steps=260,
        dirichlet_alpha=0.1,
        imbalance=8.0,
        mach_alpha=50.0,
        mach_beta=0.5,
    )
    return {
        "mnist-bench": base.with_overrides(
            task="mnist",
            separation=0.7,
            noise=1.1,
            learning_rate=0.01,
            sync_interval=5,
            target_accuracy=0.93,
        ),
        "fmnist-bench": base.with_overrides(
            task="fmnist",
            separation=0.6,
            noise=1.2,
            learning_rate=0.01,
            sync_interval=5,
            target_accuracy=0.87,
        ),
        "cifar10-bench": base.with_overrides(
            task="cifar10",
            separation=0.42,
            noise=1.35,
            learning_rate=0.02,
            sync_interval=10,
            target_accuracy=0.80,
            num_steps=400,
        ),
        # Flat-feature scenario for the fastest sweeps and unit benches.
        "blobs-bench": base.with_overrides(
            task="blobs",
            image_size=None,
            separation=0.8,
            noise=1.3,
            learning_rate=0.08,
            local_epochs=10,
            sync_interval=5,
            target_accuracy=0.73,
            num_steps=160,
        ),
    }


#: All named presets; benchmark targets default to the ``*-bench`` family.
PRESETS: Dict[str, ScenarioConfig] = {**_paper_presets(), **_bench_presets()}

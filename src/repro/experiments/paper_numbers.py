"""The paper's reported numbers, as structured data.

Everything the evaluation section states quantitatively is transcribed
here so reproduction checks and EXPERIMENTS.md generation can reference
the source of truth programmatically.  All values are *time steps to
reach the stated accuracy milestone* from Table I; the headline range
(25.00%–56.86% savings) is from the abstract/§IV-B.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Headline: MACH reduces time-to-target-accuracy vs the best basic
#: sampler by this range across all experiments (abstract, §IV-B.1).
HEADLINE_SAVINGS_RANGE = (25.00, 56.86)

#: §IV-A.2 experiment setup.
PAPER_SETUP = {
    "num_devices": 100,
    "num_edges": 10,
    "participation_fraction": 0.5,
    "average_capacity": 5,
    "local_epochs": 10,
    "targets": {"mnist": 0.75, "fmnist": 0.65, "cifar10": 0.75},
    "sync_interval": {"mnist": 5, "fmnist": 5, "cifar10": 10},
    "learning_rate": {"mnist": 0.002, "fmnist": 0.002, "cifar10": 0.02},
}


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    dataset: str
    milestone: str  # "70%" or "target"
    epoch_multiplier: float  # 0.8, 1.0, 1.2
    mach: int
    uniform: int
    class_balance: int
    statistical: int
    savings_percent: float

    def best_baseline(self) -> int:
        return min(self.uniform, self.class_balance, self.statistical)

    def check_consistent(self, tolerance: float = 0.01) -> bool:
        """The printed savings % matches (best − MACH) / best."""
        expected = 100.0 * (self.best_baseline() - self.mach) / self.best_baseline()
        return abs(expected - self.savings_percent) <= tolerance + 1e-9


#: Table I, transcribed in full.
TABLE1: Tuple[Table1Row, ...] = (
    Table1Row("mnist", "70%", 0.8, 35, 60, 80, 65, 41.67),
    Table1Row("mnist", "70%", 1.0, 30, 55, 60, 50, 40.00),
    Table1Row("mnist", "70%", 1.2, 30, 45, 55, 50, 33.33),
    Table1Row("mnist", "target", 0.8, 110, 160, 245, 185, 31.25),
    Table1Row("mnist", "target", 1.0, 110, 155, 255, 180, 29.03),
    Table1Row("mnist", "target", 1.2, 110, 140, 245, 170, 21.43),
    Table1Row("fmnist", "70%", 0.8, 35, 80, 90, 100, 56.25),
    Table1Row("fmnist", "70%", 1.0, 30, 50, 60, 65, 40.00),
    Table1Row("fmnist", "70%", 1.2, 25, 40, 55, 50, 37.50),
    Table1Row("fmnist", "target", 0.8, 140, 320, 285, 190, 26.32),
    Table1Row("fmnist", "target", 1.0, 135, 280, 285, 180, 25.00),
    Table1Row("fmnist", "target", 1.2, 125, 245, 250, 165, 24.24),
    Table1Row("cifar10", "70%", 0.8, 710, 1460, 1280, 1060, 33.02),
    Table1Row("cifar10", "70%", 1.0, 670, 1200, 1040, 880, 23.86),
    Table1Row("cifar10", "70%", 1.2, 600, 1000, 870, 720, 16.67),
    Table1Row("cifar10", "target", 0.8, 2420, 4220, 3870, 3250, 25.54),
    Table1Row("cifar10", "target", 1.0, 2100, 3600, 3310, 2810, 25.27),
    Table1Row("cifar10", "target", 1.2, 1800, 3080, 2830, 2350, 23.40),
)


def table1_rows(
    dataset: Optional[str] = None, milestone: Optional[str] = None
) -> Tuple[Table1Row, ...]:
    """Filter Table I rows by dataset and/or milestone."""
    rows = TABLE1
    if dataset is not None:
        rows = tuple(r for r in rows if r.dataset == dataset)
    if milestone is not None:
        rows = tuple(r for r in rows if r.milestone == milestone)
    return rows


def paper_shape_claims() -> Dict[str, str]:
    """The qualitative claims our benchmarks check for (see EXPERIMENTS.md)."""
    return {
        "fig3": "MACH reaches the target fastest on every task; MACH-P "
                "leads early but the gap closes as experience accrues",
        "fig4": "MACH's savings shrink monotonically as the edge count "
                "decreases (e.g. 29.03% at 10 edges → 21.43% at 2 on MNIST)",
        "fig5": "more participation reduces time-to-target; MACH's "
                "relative improvement narrows as participation grows",
        "table1_epochs": "all samplers speed up as I grows; MACH's "
                         "savings shrink with larger I",
        "table1_milestones": "savings at the 70% milestone exceed those "
                             "at the full target (MNIST/FMNIST)",
    }

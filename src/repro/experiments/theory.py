"""THEORY experiment: executable checks of the §III-A analysis.

Three artifacts:

1. **Bound ordering** — on synthetic gradient-norm populations, the
   Theorem-1 bound under (a) the exact constrained minimizer
   (``q ∝ G``), (b) the paper's Eq. (13) closed form (``q ∝ G²``), and
   (c) uniform sampling must order (a) ≤ (b) ≤ (c); the gap between (a)
   and (b) quantifies the Remark-2 approximation.
2. **Lemma-1 check** — Monte-Carlo unbiasedness of the Eq. (7) virtual
   global model under random sampling strategies.
3. **Empirical objective tracking** — during a short HFL run, MACH's
   realized per-step sampling objective ``Σ G²/q`` must not exceed
   uniform sampling's (it optimizes exactly that term).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.convergence import (
    bound_minimizing_probabilities,
    paper_optimal_probabilities,
    sampling_objective,
    virtual_global_model,
)
from repro.utils.rng import RngLike, as_generator


@dataclass
class TheoryReport:
    """Aggregated outcomes of the theory checks."""

    #: mean Σ G²/q per strategy over the sampled populations.
    objective_by_strategy: Dict[str, float] = field(default_factory=dict)
    #: max |E[w̄] − mean(w)| over Monte-Carlo unbiasedness trials.
    lemma1_max_bias: float = float("nan")

    def render(self) -> str:
        lines = ["=== THEORY: convergence-bound and Lemma-1 checks ==="]
        lines.append(f"{'strategy':<28}{'mean sampling objective':>26}")
        for name, value in self.objective_by_strategy.items():
            lines.append(f"{name:<28}{value:>26.2f}")
        lines.append(f"Lemma-1 Monte-Carlo max bias: {self.lemma1_max_bias:.4f}")
        return "\n".join(lines)


def compare_sampling_strategies(
    num_populations: int = 200,
    population_size: int = 10,
    capacity: float = 5.0,
    norm_spread: float = 2.0,
    rng: RngLike = 0,
) -> Dict[str, float]:
    """Mean Σ G²/q for exact / Eq. (13) / uniform over random populations.

    Gradient norms are log-normal with σ=``norm_spread``, matching the
    heavy-tailed per-device norms observed in Non-IID training.
    """
    rng = as_generator(rng)
    totals = {"bound_minimizing (q ∝ G)": 0.0, "paper_eq13 (q ∝ G²)": 0.0,
              "uniform": 0.0}
    for _ in range(num_populations):
        g_sq = rng.lognormal(mean=0.0, sigma=norm_spread, size=population_size)
        exact = bound_minimizing_probabilities(g_sq, capacity)
        paper = np.clip(paper_optimal_probabilities(g_sq, capacity), 1e-9, 1.0)
        uniform = np.full(population_size, min(1.0, capacity / population_size))
        totals["bound_minimizing (q ∝ G)"] += sampling_objective(g_sq, exact)
        totals["paper_eq13 (q ∝ G²)"] += sampling_objective(g_sq, paper)
        totals["uniform"] += sampling_objective(g_sq, uniform)
    return {k: v / num_populations for k, v in totals.items()}


def lemma1_monte_carlo(
    trials: int = 20000,
    num_devices: int = 8,
    num_edges: int = 3,
    dim: int = 4,
    rng: RngLike = 0,
) -> float:
    """Max-coordinate bias of the Eq. (7) estimator over ``trials`` draws."""
    rng = as_generator(rng)
    models = rng.normal(size=(num_devices, dim))
    edges = rng.integers(0, num_edges, size=num_devices)
    q = rng.uniform(0.2, 1.0, size=num_devices)
    total = np.zeros(dim)
    for _ in range(trials):
        participation = (rng.random(num_devices) < q).astype(float)
        total += virtual_global_model(models, edges, participation, q, num_edges)
    return float(np.max(np.abs(total / trials - models.mean(axis=0))))


def run(rng: RngLike = 0) -> TheoryReport:
    """Execute the full THEORY experiment."""
    report = TheoryReport()
    report.objective_by_strategy = compare_sampling_strategies(rng=rng)
    report.lemma1_max_bias = lemma1_monte_carlo(rng=rng)
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""CLI driver: regenerate any (or every) paper artifact from the shell.

Usage::

    python -m repro.experiments.run_all --artifact fig3 --preset bench
    python -m repro.experiments.run_all --artifact all --tasks mnist \
        --repeats 3 --out results/

Artifacts: fig3, fig4, fig5, table1, ablations, theory, all.
Rendered reports are printed and, with ``--out``, written to text files.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments import ablations, fig3, fig4, fig5, table1, theory

ARTIFACTS = ("fig3", "fig4", "fig5", "table1", "ablations", "theory", "all")


def _run_fig3(args) -> str:
    return fig3.run(
        preset=args.preset, tasks=tuple(args.tasks), repeats=args.repeats
    ).render()


def _run_fig4(args) -> str:
    return fig4.run(
        preset=args.preset, tasks=tuple(args.tasks), repeats=args.repeats
    ).render()


def _run_fig5(args) -> str:
    return fig5.run(
        preset=args.preset, tasks=tuple(args.tasks), repeats=args.repeats
    ).render()


def _run_table1(args) -> str:
    return table1.run(
        preset=args.preset, tasks=tuple(args.tasks), repeats=args.repeats
    ).render()


def _run_ablations(args) -> str:
    task = args.tasks[0]
    blocks = [
        ablations.run_ucb_ablation(args.preset, task, args.repeats).render(),
        ablations.run_smoothing_ablation(args.preset, task, repeats=args.repeats).render(),
        ablations.run_aggregation_ablation(args.preset, "blobs", args.repeats).render(),
    ]
    return "\n\n".join(blocks)


def _run_theory(args) -> str:
    return theory.run().render()


RUNNERS: Dict[str, Callable] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "table1": _run_table1,
    "ablations": _run_ablations,
    "theory": _run_theory,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run_all",
        description="Regenerate the MACH paper's evaluation artifacts.",
    )
    parser.add_argument("--artifact", choices=ARTIFACTS, default="all")
    parser.add_argument(
        "--preset", default="bench",
        help="scenario preset family: bench (CPU-sized, default) or paper",
    )
    parser.add_argument(
        "--tasks", nargs="+", default=["mnist"],
        help="tasks to run (mnist fmnist cifar10 blobs)",
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="directory to write rendered reports into",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.repeats <= 0:
        raise SystemExit("--repeats must be positive")
    names = list(RUNNERS) if args.artifact == "all" else [args.artifact]
    for name in names:
        text = RUNNERS[name](args)
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

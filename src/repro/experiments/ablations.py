"""Ablation studies on MACH's design choices (DESIGN.md ABL-* experiments).

Three ablations beyond the paper's own evaluation:

- **ABL-UCB** — the UCB exploitation window: ``recent`` (our default,
  adapts to the current inter-sync window) versus ``lifetime`` (the
  literal Eq. (15) all-history max, which freezes the strategy at
  early-training gradient ratios), and the effect of removing the
  exploration bonus entirely (pure exploitation via MACH-P's oracle).
- **ABL-SMOOTH** — the Eq. (17) transfer function: smoothing enabled at
  several (α, β) settings versus disabled (raw Remark-2 proportional
  allocation).
- **ABL-AGG** — the Eq. (5) aggregation realization: ``fedavg`` (equal
  participant weights) / ``delta`` (unbiased IPW updates) /
  ``normalized`` / ``model`` (literal raw-model IPW), run under uniform
  sampling to isolate the aggregation effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.fig3 import scenario_for
from repro.experiments.report import format_steps, mean_or_none
from repro.experiments.runner import run_single


@dataclass
class AblationReport:
    """Rows of (variant label → steps-to-target, final accuracy)."""

    title: str
    rows: List[Tuple[str, Optional[float], float]] = field(default_factory=list)

    def add(self, label: str, steps: Optional[float], final_accuracy: float) -> None:
        self.rows.append((label, steps, final_accuracy))

    def steps_of(self, label: str) -> Optional[float]:
        for row_label, steps, _acc in self.rows:
            if row_label == label:
                return steps
        raise KeyError(f"no ablation row labelled {label!r}")

    def render(self) -> str:
        lines = [f"== {self.title}", f"{'variant':<34}{'steps':>10}{'final acc':>12}"]
        for label, steps, acc in self.rows:
            lines.append(f"{label:<34}{format_steps(steps):>10}{acc:>12.3f}")
        return "\n".join(lines)


def _measure(config, sampler_name: str, repeats: int) -> Tuple[Optional[float], float]:
    times, finals = [], []
    for r in range(repeats):
        result = run_single(config, sampler_name, seed=config.seed + r)
        times.append(result.time_to_accuracy(config.target_accuracy))
        finals.append(result.history.final_accuracy())
    return mean_or_none(times), float(np.mean(finals))


def run_ucb_ablation(
    preset: str = "bench", task: str = "mnist", repeats: int = 1
) -> AblationReport:
    """ABL-UCB: exploitation-window mode and oracle upper bound."""
    base = scenario_for(task, preset)
    report = AblationReport(
        title=f"ABL-UCB ({task}, target={base.target_accuracy})"
    )
    for window in ("recent", "lifetime"):
        steps, acc = _measure(
            base.with_overrides(mach_ucb_window=window), "mach", repeats
        )
        report.add(f"mach ucb_window={window}", steps, acc)
    steps, acc = _measure(base, "mach_p", repeats)
    report.add("mach_p (oracle, no estimation)", steps, acc)
    steps, acc = _measure(base, "uniform", repeats)
    report.add("uniform (no experience at all)", steps, acc)
    return report


def run_smoothing_ablation(
    preset: str = "bench",
    task: str = "mnist",
    settings: Sequence[Tuple[float, float]] = ((2.0, 2.0), (8.0, 2.0), (50.0, 0.5)),
    repeats: int = 1,
) -> AblationReport:
    """ABL-SMOOTH: Eq. (17) on at several (α, β) vs off."""
    base = scenario_for(task, preset)
    report = AblationReport(
        title=f"ABL-SMOOTH ({task}, target={base.target_accuracy})"
    )
    for alpha, beta in settings:
        steps, acc = _measure(
            base.with_overrides(mach_alpha=alpha, mach_beta=beta), "mach", repeats
        )
        report.add(f"smoothing alpha={alpha} beta={beta}", steps, acc)
    # Disabled: raw proportional allocation (alpha/beta ignored).
    from repro.core.edge_sampling import EdgeSamplingConfig
    from repro.core.mach import MACHConfig, MACHSampler
    from repro.hfl.config import HFLConfig
    from repro.hfl.trainer import HFLTrainer
    from repro.experiments.runner import build_scenario

    times, finals = [], []
    for r in range(repeats):
        devices, test, trace, model_factory = build_scenario(base, base.seed + r)
        sampler = MACHSampler(
            MACHConfig(
                edge_sampling=EdgeSamplingConfig(smoothing_enabled=False),
                sync_interval=base.sync_interval,
            )
        )
        trainer = HFLTrainer(
            model_factory, devices, trace, sampler,
            HFLConfig(
                learning_rate=base.learning_rate,
                local_epochs=base.local_epochs,
                batch_size=base.batch_size,
                sync_interval=base.sync_interval,
                participation_fraction=base.participation_fraction,
                aggregation=base.aggregation,
                seed=base.seed + r,
            ),
            test,
        )
        result = trainer.run(base.num_steps, target_accuracy=base.target_accuracy)
        times.append(result.time_to_accuracy(base.target_accuracy))
        finals.append(result.history.final_accuracy())
    report.add("smoothing disabled", mean_or_none(times), float(np.mean(finals)))
    return report


def run_aggregation_ablation(
    preset: str = "bench", task: str = "blobs", repeats: int = 1
) -> AblationReport:
    """ABL-AGG: Eq. (5) realizations under uniform sampling."""
    base = scenario_for(task, preset)
    report = AblationReport(
        title=f"ABL-AGG ({task}, target={base.target_accuracy})"
    )
    for mode in ("fedavg", "delta", "normalized", "model"):
        steps, acc = _measure(
            base.with_overrides(aggregation=mode), "uniform", repeats
        )
        report.add(f"aggregation={mode}", steps, acc)
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run_ucb_ablation().render())
    print(run_smoothing_ablation().render())
    print(run_aggregation_ablation().render())


if __name__ == "__main__":  # pragma: no cover
    main()

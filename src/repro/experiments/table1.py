"""Table I: time steps consumed under different local updating epochs I.

The paper's Table I reports, for each task and for local-epoch settings
{0.8·I, I, 1.2·I}, the time steps MACH / US / CS / SS need to reach (a)
70% of the target accuracy and (b) the full target, plus the percentage
of steps MACH saves versus the best (underlined) basic sampler.  Its
two findings: savings shrink as I grows (longer local training biases
local updates, degrading the online experience signal), and savings at
the 70% milestone exceed those at the full target (edge-specific
sampling helps most early).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import SAMPLER_ABBREVIATIONS, ScenarioConfig
from repro.experiments.fig3 import scenario_for
from repro.experiments.report import SweepReport, format_steps, mean_or_none
from repro.experiments.runner import run_single

#: The paper's Table-I sampler set (MACH-P is excluded there).
TABLE1_SAMPLERS: Tuple[str, ...] = ("mach", "uniform", "class_balance", "statistical")

#: Local-epoch multipliers of the paper's rows.
EPOCH_MULTIPLIERS: Tuple[float, ...] = (0.8, 1.0, 1.2)


@dataclass
class Table1Report:
    """sweeps[(task, milestone)] -> SweepReport over local-epoch settings.

    ``milestone`` is ``"70%"`` or ``"target"``, matching the paper's two
    row groups per dataset.
    """

    sweeps: Dict[Tuple[str, str], SweepReport] = field(default_factory=dict)

    def render(self) -> str:
        blocks = [
            "=== Table I: time steps under different local updating epochs ==="
        ]
        for (task, milestone), sweep in self.sweeps.items():
            blocks.append(sweep.render())
        return "\n".join(blocks)


def milestone_targets(config: ScenarioConfig) -> Dict[str, float]:
    """The paper's two accuracy milestones for a scenario."""
    return {
        "70%": 0.7 * config.target_accuracy,
        "target": config.target_accuracy,
    }


def run(
    preset: str = "bench",
    tasks: Sequence[str] = ("mnist",),
    multipliers: Sequence[float] = EPOCH_MULTIPLIERS,
    sampler_names: Sequence[str] = TABLE1_SAMPLERS,
    repeats: int = 1,
) -> Table1Report:
    """Regenerate Table I for the requested tasks."""
    report = Table1Report()
    for task in tasks:
        base = scenario_for(task, preset)
        targets = milestone_targets(base)
        sweeps = {
            milestone: SweepReport(
                title=(
                    f"Table I ({task}, {milestone} milestone = "
                    f"{target:.2f} accuracy)"
                ),
                sweep_name="local_epochs",
                sweep_values=[],
                sampler_names=list(sampler_names),
            )
            for milestone, target in targets.items()
        }
        for multiplier in multipliers:
            local_epochs = max(1, int(round(base.local_epochs * multiplier)))
            label = f"{multiplier:.1f}I = {local_epochs}"
            config = base.with_overrides(local_epochs=local_epochs)
            for milestone, target in targets.items():
                sweeps[milestone].sweep_values.append(label)
            for name in sampler_names:
                results = [
                    run_single(config, name, seed=config.seed + r)
                    for r in range(repeats)
                ]
                for milestone, target in targets.items():
                    times = [r.time_to_accuracy(target) for r in results]
                    sweeps[milestone].set(label, name, mean_or_none(times))
        for milestone in targets:
            report.sweeps[(task, milestone)] = sweeps[milestone]
    return report


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

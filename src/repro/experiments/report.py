"""Shared report rendering for sweep-style experiments (Figs. 4–5, Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import SAMPLER_ABBREVIATIONS


def format_steps(value: Optional[float]) -> str:
    """Render a mean steps-to-target figure (``-`` when never reached)."""
    return f"{value:.0f}" if value is not None else "-"


@dataclass
class SweepReport:
    """Steps-to-target across a swept parameter, per sampler.

    ``cells[(sweep_value, sampler)]`` holds the mean steps-to-target (or
    None when the target was not reached).  This is the data behind the
    paper's Fig. 4 (edges sweep), Fig. 5 (participation sweep) and each
    Table-I block (local-epochs sweep).
    """

    title: str
    sweep_name: str
    sweep_values: List
    sampler_names: List[str]
    cells: Dict[Tuple[object, str], Optional[float]] = field(default_factory=dict)

    def set(self, sweep_value, sampler: str, steps: Optional[float]) -> None:
        self.cells[(sweep_value, sampler)] = steps

    def get(self, sweep_value, sampler: str) -> Optional[float]:
        return self.cells.get((sweep_value, sampler))

    def best_baseline(
        self, sweep_value, exclude: Sequence[str] = ("mach", "mach_p")
    ) -> Tuple[Optional[str], Optional[float]]:
        """Fastest non-MACH sampler at this sweep point."""
        best_name, best_steps = None, None
        for name in self.sampler_names:
            if name in exclude:
                continue
            steps = self.get(sweep_value, name)
            if steps is not None and (best_steps is None or steps < best_steps):
                best_name, best_steps = name, steps
        return best_name, best_steps

    def mach_savings_percent(self, sweep_value) -> Optional[float]:
        """The paper's "- Time Steps %" column: MACH vs best baseline."""
        mach = self.get(sweep_value, "mach")
        _name, base = self.best_baseline(sweep_value)
        if mach is None or base is None or base == 0:
            return None
        return 100.0 * (base - mach) / base

    def savings_series(self) -> List[Optional[float]]:
        """Savings per sweep value, in sweep order (monotonicity checks)."""
        return [self.mach_savings_percent(v) for v in self.sweep_values]

    def render(self) -> str:
        header = [f"== {self.title}"]
        labels = [SAMPLER_ABBREVIATIONS.get(n, n) for n in self.sampler_names]
        width = max(10, *(len(lbl) + 2 for lbl in labels))
        row = f"{self.sweep_name:<22}" + "".join(f"{lbl:>{width}}" for lbl in labels)
        header.append(row + f"{'saved %':>10}")
        for value in self.sweep_values:
            cells = [
                format_steps(self.get(value, name)) for name in self.sampler_names
            ]
            savings = self.mach_savings_percent(value)
            savings_str = f"{savings:.2f}%" if savings is not None else "-"
            header.append(
                f"{str(value):<22}"
                + "".join(f"{c:>{width}}" for c in cells)
                + f"{savings_str:>10}"
            )
        return "\n".join(header)


def mean_or_none(values: Sequence[Optional[float]]) -> Optional[float]:
    """Average that propagates a missed target as None."""
    if any(v is None for v in values):
        return None
    return float(np.mean(list(values)))

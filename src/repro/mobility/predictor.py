"""Per-device trajectory prediction (the ``P^t_{n,m}`` of §II-A).

The paper treats the device→edge indicator ``B^t_{n,m}`` as known,
noting that when future mobility is uncertain one instead works with
occupancy probabilities ``P^t_{n,m}`` from a classical predictor such
as an order-k Markov model [23], [24].  This module provides that
predictor: it fits per-device transition statistics on a trace prefix
and emits calibrated next-edge distributions, so MACH can be driven by
predicted membership when ground-truth traces are unavailable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.mobility.trace import MobilityTrace
from repro.utils.validation import check_positive


class OrderKMarkovPredictor:
    """Order-k per-device Markov predictor over edge sequences.

    For each device, counts transitions from each length-k edge-history
    context to the next edge; prediction returns the Laplace-smoothed
    empirical distribution for the device's current context, falling
    back to shorter contexts (k−1, …, 0) when the full context was never
    observed — the standard back-off scheme.
    """

    def __init__(self, num_edges: int, order: int = 1, smoothing: float = 1.0) -> None:
        check_positive("num_edges", num_edges)
        check_positive("order", order)
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        self.num_edges = int(num_edges)
        self.order = int(order)
        self.smoothing = float(smoothing)
        # counts[device][k][context_tuple] -> np.ndarray(num_edges)
        self._counts: Dict[int, Dict[int, Dict[Tuple[int, ...], np.ndarray]]] = {}
        self._fitted = False

    def fit(self, trace: MobilityTrace) -> "OrderKMarkovPredictor":
        """Count transitions from every context length 1..order."""
        if trace.num_edges != self.num_edges:
            raise ValueError(
                f"trace has {trace.num_edges} edges, predictor expects "
                f"{self.num_edges}"
            )
        for m in range(trace.num_devices):
            sequence = trace.assignments[:, m]
            per_device: Dict[int, Dict[Tuple[int, ...], np.ndarray]] = {
                k: defaultdict(lambda: np.zeros(self.num_edges))
                for k in range(1, self.order + 1)
            }
            for t in range(1, trace.num_steps):
                nxt = sequence[t]
                for k in range(1, self.order + 1):
                    if t - k < 0:
                        break
                    context = tuple(sequence[t - k : t])
                    per_device[k][context][nxt] += 1
            self._counts[m] = {k: dict(v) for k, v in per_device.items()}
        self._fitted = True
        return self

    def predict(self, device: int, history: Tuple[int, ...]) -> np.ndarray:
        """Next-edge distribution given the device's recent edge history.

        ``history`` is ordered oldest→newest; only its last ``order``
        entries are used, with back-off to shorter contexts and finally
        to the uniform distribution.
        """
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        history = tuple(int(h) for h in history)
        if any(not 0 <= h < self.num_edges for h in history):
            raise ValueError(f"history contains invalid edge ids: {history}")
        device_counts = self._counts.get(device, {})
        for k in range(min(self.order, len(history)), 0, -1):
            context = history[-k:]
            counts = device_counts.get(k, {}).get(context)
            if counts is not None and counts.sum() > 0:
                smoothed = counts + self.smoothing
                return smoothed / smoothed.sum()
        return np.full(self.num_edges, 1.0 / self.num_edges)

    def predict_trace_step(
        self, trace: MobilityTrace, t: int
    ) -> np.ndarray:
        """Matrix ``P^{t+1}`` of shape (num_devices, num_edges) given the
        trace up to and including step ``t``."""
        if not 0 <= t < trace.num_steps:
            raise ValueError(f"t must be in [0, {trace.num_steps}), got {t}")
        start = max(0, t - self.order + 1)
        out = np.zeros((trace.num_devices, self.num_edges))
        for m in range(trace.num_devices):
            history = tuple(trace.assignments[start : t + 1, m])
            out[m] = self.predict(m, history)
        return out

    def evaluate(
        self, trace: MobilityTrace, start: Optional[int] = None
    ) -> Dict[str, float]:
        """Top-1 accuracy and mean log-likelihood on a trace suffix."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before evaluate()")
        start = start if start is not None else trace.num_steps // 2
        if not 0 < start < trace.num_steps:
            raise ValueError(f"invalid evaluation start {start}")
        hits, total, loglik = 0, 0, 0.0
        for t in range(start, trace.num_steps):
            probs = self.predict_trace_step(trace, t - 1)
            actual = trace.assignments[t]
            predictions = probs.argmax(axis=1)
            hits += int((predictions == actual).sum())
            total += trace.num_devices
            picked = probs[np.arange(trace.num_devices), actual]
            loglik += float(np.log(np.clip(picked, 1e-12, None)).sum())
        return {
            "top1_accuracy": hits / total,
            "mean_log_likelihood": loglik / total,
        }

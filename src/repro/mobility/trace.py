"""Device→edge assignment traces (the indicator ``B^t_{n,m}`` of §II-A).

A :class:`MobilityTrace` stores, for every discrete time step ``t`` and
device ``m``, the index of the edge the device is associated with.
Because every device is always associated with exactly one (nearest)
edge, the partition property Eq. (1) — edges' device sets are disjoint
and cover all of M — holds by construction and is checked by
:meth:`MobilityTrace.validate`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.hotpath import hotpath_enabled
from repro.prof import profile_site
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class MobilityTrace:
    """Discrete-time device→edge association trace.

    Parameters
    ----------
    assignments:
        Integer array of shape (num_steps, num_devices); entry (t, m) is
        the edge index device ``m`` accesses at time step ``t``.
    num_edges:
        Total number of edges N (edge indices are in [0, num_edges)).

    A trace is immutable after construction: membership queries are
    served from a lazily built per-step index (devices grouped by edge
    plus a ``bincount`` of per-edge counts), so mutating
    ``assignments`` in place would silently desynchronize the cache.
    """

    #: Wrapped steps whose membership index is kept resident.  The
    #: trainer only ever looks at a narrow window of steps (the current
    #: round plus the ``t + 1`` departure probe), so a small LRU bounds
    #: index memory to O(cache × devices) instead of O(steps × devices)
    #: on city-scale traces.
    MEMBERSHIP_CACHE_STEPS = 64

    def __init__(self, assignments: np.ndarray, num_edges: int) -> None:
        # int32 keeps edge indices exact up to ~2.1e9 edges while
        # halving the grid's footprint at 100k+ devices; out-of-range
        # input wraps into the bounds check below and fails loudly.
        assignments = np.asarray(assignments, dtype=np.int32)
        if assignments.ndim != 2:
            raise ValueError(
                f"assignments must be (num_steps, num_devices), got {assignments.shape}"
            )
        check_positive("num_edges", num_edges)
        if assignments.size and (
            assignments.min() < 0 or assignments.max() >= num_edges
        ):
            raise ValueError(
                f"edge indices must be in [0, {num_edges}), got range "
                f"[{assignments.min()}, {assignments.max()}]"
            )
        self.assignments = assignments
        self.num_edges = int(num_edges)
        # Per-wrapped-step membership index, built lazily by
        # :meth:`_step_index` and evicted least-recently-used once more
        # than ``MEMBERSHIP_CACHE_STEPS`` wrapped steps are resident.
        self._membership: "OrderedDict[int, Tuple[List[np.ndarray], np.ndarray]]" = (
            OrderedDict()
        )

    @property
    def num_steps(self) -> int:
        return self.assignments.shape[0]

    @property
    def num_devices(self) -> int:
        return self.assignments.shape[1]

    def edge_of(self, t: int, device: int) -> int:
        """Edge index device ``device`` accesses at step ``t``."""
        return int(self.assignments[self._wrap(t), device])

    def _step_index(self, wrapped: int) -> Tuple[List[np.ndarray], np.ndarray]:
        """Membership index of one wrapped step: (members by edge, counts).

        One stable argsort groups the step's devices by edge; within a
        group the original (ascending device-id) order survives, so each
        member array is exactly what ``np.flatnonzero(row == edge)``
        returns — without re-scanning the row once per edge.  The member
        arrays are frozen (non-writeable) because they are shared with
        every caller; take a copy before mutating.
        """
        index = self._membership.get(wrapped)
        if index is None:
            # The per-step O(population) trace row scan — a documented
            # city-scale hotspot, self-reported to the continuous
            # profiler when one is installed (no-op otherwise).
            with profile_site("mobility", "membership_index"):
                row = self.assignments[wrapped]
                counts = np.bincount(row, minlength=self.num_edges)
                order = np.argsort(row, kind="stable")
                bounds = np.concatenate(([0], np.cumsum(counts)))
                members = [
                    order[bounds[n] : bounds[n + 1]]
                    for n in range(self.num_edges)
                ]
                for arr in members:
                    arr.flags.writeable = False
                counts.flags.writeable = False
                index = (members, counts)
            self._membership[wrapped] = index
            while len(self._membership) > self.MEMBERSHIP_CACHE_STEPS:
                self._membership.popitem(last=False)
        else:
            self._membership.move_to_end(wrapped)
        return index

    def devices_at(self, t: int, edge: int) -> np.ndarray:
        """The device set ``M^t_n`` (sorted device indices).

        On the optimized hot path this is a lookup into the per-step
        membership index (the returned array is shared and frozen); the
        reference path re-derives it with a fresh ``flatnonzero`` scan.
        """
        if not 0 <= edge < self.num_edges:
            raise ValueError(f"edge must be in [0, {self.num_edges}), got {edge}")
        if not hotpath_enabled():
            with profile_site("mobility", "row_scan", edge=edge):
                return np.flatnonzero(self.assignments[self._wrap(t)] == edge)
        return self._step_index(self._wrap(t))[0][edge]

    def counts_at(self, t: int) -> np.ndarray:
        """Member counts ``|M^t_n|`` for every edge, shape (num_edges,).

        Vectorized via one ``bincount`` (cached per wrapped step); the
        reference path sizes each ``devices_at`` result individually.
        """
        if not hotpath_enabled():
            return np.array(
                [self.devices_at(t, n).size for n in range(self.num_edges)]
            )
        return self._step_index(self._wrap(t))[1]

    def assignment_row(self, t: int) -> np.ndarray:
        """The raw edge-index row at (wrapped) step ``t``.

        ``row[m] == edge`` is the O(1) membership test the trainer's
        fault screening uses instead of materializing ``devices_at`` as
        a Python set.
        """
        return self.assignments[self._wrap(t)]

    def indicator_matrix(self, t: int) -> np.ndarray:
        """The binary matrix ``B^t`` of shape (num_edges, num_devices)."""
        row = self.assignments[self._wrap(t)]
        matrix = np.zeros((self.num_edges, self.num_devices), dtype=int)
        matrix[row, np.arange(self.num_devices)] = 1
        return matrix

    def _wrap(self, t: int) -> int:
        """Map an arbitrary step onto the trace (cyclic extension).

        Training runs may be longer than the recorded trace; like
        trace-driven simulators generally do, we replay the trace
        cyclically past its end.
        """
        if t < 0:
            raise ValueError(f"time step must be >= 0, got {t}")
        return t % self.num_steps

    def validate(self) -> None:
        """Check the Eq. (1) partition property at every step.

        With a dense assignment array the property holds structurally;
        this method re-derives it from the representation as a defence
        against future representation changes.  A device is in exactly
        one edge iff its entry is a valid edge index, so one vectorized
        bounds check over the whole array replaces the per-step dense
        ``(num_edges, num_devices)`` indicator matrices the original
        implementation materialized.
        """
        in_one_edge = (self.assignments >= 0) & (
            self.assignments < self.num_edges
        )
        if in_one_edge.all():
            return
        t = int(np.flatnonzero(~in_one_edge.all(axis=1))[0])
        per_device = in_one_edge[t].astype(int)
        raise AssertionError(
            f"step {t}: some device is in != 1 edge (counts {per_device})"
        )

    # ---- statistics ------------------------------------------------------

    def occupancy(self) -> np.ndarray:
        """Mean number of devices per edge, shape (num_edges,).

        One ``bincount`` over the flattened grid replaces the former
        per-step Python loop; summing per-step integer counts commutes
        exactly with counting the whole grid at once, so the result is
        unchanged bit for bit.
        """
        counts = np.bincount(
            self.assignments.ravel(), minlength=self.num_edges
        ).astype(float)
        return counts / self.num_steps

    def handover_rate(self) -> float:
        """Fraction of (step, device) pairs where the device switched edges."""
        if self.num_steps < 2:
            return 0.0
        switches = self.assignments[1:] != self.assignments[:-1]
        return float(switches.mean())

    def empirical_transition_matrix(self) -> np.ndarray:
        """Edge-to-edge empirical transition probabilities (row-stochastic)."""
        counts = np.zeros((self.num_edges, self.num_edges))
        for t in range(self.num_steps - 1):
            np.add.at(counts, (self.assignments[t], self.assignments[t + 1]), 1)
        totals = counts.sum(axis=1, keepdims=True)
        uniform = np.full(self.num_edges, 1.0 / self.num_edges)
        with np.errstate(invalid="ignore", divide="ignore"):
            probs = np.where(totals > 0, counts / totals, uniform)
        return probs

    def slice(self, start: int, stop: int) -> "MobilityTrace":
        """Sub-trace covering steps [start, stop)."""
        if not 0 <= start < stop <= self.num_steps:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for trace of {self.num_steps} steps"
            )
        return MobilityTrace(self.assignments[start:stop], self.num_edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MobilityTrace(steps={self.num_steps}, devices={self.num_devices}, "
            f"edges={self.num_edges}, handover_rate={self.handover_rate():.3f})"
        )


def static_trace(
    num_steps: int,
    num_devices: int,
    num_edges: int,
    rng: RngLike = None,
    assignment: Optional[np.ndarray] = None,
) -> MobilityTrace:
    """A trace with no mobility: devices stay at one (random) edge forever.

    This is the degenerate case in which HFL with mobile devices reduces
    to classical HFL; used as a baseline and in unit tests.
    """
    check_positive("num_steps", num_steps)
    check_positive("num_devices", num_devices)
    check_positive("num_edges", num_edges)
    if assignment is None:
        rng = as_generator(rng)
        assignment = rng.integers(0, num_edges, size=num_devices)
    assignment = np.asarray(assignment, dtype=int)
    if assignment.shape != (num_devices,):
        raise ValueError(
            f"assignment must have shape ({num_devices},), got {assignment.shape}"
        )
    return MobilityTrace(np.tile(assignment, (num_steps, 1)), num_edges)

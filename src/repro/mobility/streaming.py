"""Streaming device→edge traces: membership per step without the grid.

A dense :class:`~repro.mobility.trace.MobilityTrace` materializes the
full ``(num_steps, num_devices)`` assignment grid — 400 MB of int32 at
100k devices × 1k steps, and strictly worse for the month-long Shanghai
Telecom horizon the paper simulates.  The trainer, however, only ever
reads a narrow window of steps (the current round plus the ``t + 1``
churn probe), so this module serves the same query surface —
``counts_at`` / ``assignment_row`` / ``devices_at`` / ``edge_of`` —
from bounded-size **chunks** produced on demand:

- :class:`StreamingTrace` is the trace front end: an LRU cache of a few
  resident chunks plus the same per-step membership index (grouped
  members + counts) the dense hot path builds;
- a chunk provider supplies ``(chunk_steps, num_devices)`` assignment
  blocks.  :class:`DenseChunkProvider` slices an in-memory grid (the
  equivalence reference and the adapter for chunk-loaded recorded
  traces); :class:`MarkovChunkProvider` *generates* chunks from
  per-chunk seed streams so any chunk is reproducible without replaying
  the whole history; :class:`StaticChunkProvider` tiles one assignment
  row virtually.

Determinism contract: a provider must return bit-identical chunks on
every call — eviction followed by re-access must reproduce the same
assignments, or kill/resume replay would fork the trace.  The
equivalence guarantee is :meth:`StreamingTrace.materialize`: the dense
trace it returns answers every query identically to the streaming
front end (tested in ``tests/test_streaming_trace.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.hotpath import hotpath_enabled
from repro.mobility.trace import MobilityTrace
from repro.prof import profile_site
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import check_positive


class DenseChunkProvider:
    """Serve chunks by slicing an in-memory assignment grid.

    Wraps a recorded/generated dense trace so the streaming front end
    can be validated against the dense reference, and stands in for a
    real chunk-loading source (memory-mapped file, database cursor)
    whose access pattern it shares.
    """

    def __init__(self, assignments: np.ndarray, num_edges: int) -> None:
        self.assignments = np.asarray(assignments, dtype=np.int32)
        self.num_steps = int(self.assignments.shape[0])
        self.num_devices = int(self.assignments.shape[1])
        self.num_edges = int(num_edges)

    def chunk(self, start: int, stop: int) -> np.ndarray:
        return self.assignments[start:stop]


class StaticChunkProvider:
    """No mobility: one assignment row, tiled virtually over all steps."""

    def __init__(
        self, assignment: np.ndarray, num_steps: int, num_edges: int
    ) -> None:
        check_positive("num_steps", num_steps)
        self.assignment = np.asarray(assignment, dtype=np.int32)
        self.num_steps = int(num_steps)
        self.num_devices = int(self.assignment.shape[0])
        self.num_edges = int(num_edges)

    def chunk(self, start: int, stop: int) -> np.ndarray:
        return np.tile(self.assignment, (stop - start, 1))


class MarkovChunkProvider:
    """Generate Markov-walk chunks on demand, reproducibly.

    Each chunk draws its transition uniforms from a dedicated
    ``("chunk", index)`` seed stream, so regenerating an evicted chunk
    never depends on how many draws earlier chunks consumed.  The only
    carried state is the device-edge vector at each chunk boundary,
    cached forward as chunks are first visited — O(num_devices) per
    boundary instead of O(num_devices × steps) for the grid.

    The walk dynamics are exactly
    :meth:`repro.mobility.markov.MarkovMobilityModel.sample_trace`'s
    (inverse-CDF step via the cumulative transition rows); only the
    random-stream layout differs, which changes the sampled trajectory,
    not its law.
    """

    def __init__(
        self,
        transition: np.ndarray,
        num_steps: int,
        num_devices: int,
        seed: int,
        chunk_steps: int = 64,
    ) -> None:
        check_positive("num_steps", num_steps)
        check_positive("num_devices", num_devices)
        check_positive("chunk_steps", chunk_steps)
        transition = np.asarray(transition, dtype=float)
        self.num_steps = int(num_steps)
        self.num_devices = int(num_devices)
        self.num_edges = int(transition.shape[0])
        self.chunk_steps = int(chunk_steps)
        self._cumulative = np.cumsum(transition, axis=1)
        self._seeds = SeedSequenceFactory(seed)
        initial = self._seeds.generator("initial").integers(
            0, self.num_edges, size=self.num_devices
        )
        # _boundary[c] is the assignment row at step c * chunk_steps; rows
        # are appended as chunks are first generated (always in order).
        self._boundary: List[np.ndarray] = [initial.astype(np.int32)]

    def _advance(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(self.num_devices)
        rows = self._cumulative[state]
        return ((u[:, None] > rows).sum(axis=1)).astype(np.int32)

    def _boundary_state(self, chunk_index: int) -> np.ndarray:
        while len(self._boundary) <= chunk_index:
            self._generate(len(self._boundary) - 1)
        return self._boundary[chunk_index]

    def _generate(self, chunk_index: int) -> np.ndarray:
        start = chunk_index * self.chunk_steps
        stop = min(start + self.chunk_steps, self.num_steps)
        state = self._boundary_state(chunk_index)
        rng = self._seeds.generator(f"chunk/{chunk_index}")
        block = np.empty((stop - start, self.num_devices), dtype=np.int32)
        block[0] = state
        for row in range(1, stop - start):
            block[row] = self._advance(block[row - 1], rng)
        if stop < self.num_steps and len(self._boundary) == chunk_index + 1:
            self._boundary.append(self._advance(block[-1], rng))
        return block

    def chunk(self, start: int, stop: int) -> np.ndarray:
        if start % self.chunk_steps or stop - start > self.chunk_steps:
            raise ValueError(
                f"chunk [{start}, {stop}) is not aligned to {self.chunk_steps}"
            )
        return self._generate(start // self.chunk_steps)


class StreamingTrace:
    """Bounded-memory trace front end over a chunk provider.

    Duck-types the :class:`~repro.mobility.trace.MobilityTrace` query
    surface the trainer uses (``counts_at`` / ``assignment_row`` /
    ``devices_at`` / ``edge_of``, plus the cyclic ``_wrap`` extension
    and the statistics helpers), while holding at most
    ``MAX_RESIDENT_CHUNKS`` assignment chunks and
    ``MEMBERSHIP_CACHE_STEPS`` per-step membership indexes in memory.
    """

    #: Assignment chunks kept resident (LRU).  Two suffice for the
    #: trainer's window (round step + departure probe may straddle a
    #: chunk boundary); a few more absorb observers peeking nearby.
    MAX_RESIDENT_CHUNKS = 4
    #: Per-step membership indexes kept resident (LRU), matching
    #: :attr:`MobilityTrace.MEMBERSHIP_CACHE_STEPS`'s role.
    MEMBERSHIP_CACHE_STEPS = 64

    def __init__(self, provider, chunk_steps: Optional[int] = None) -> None:
        self.provider = provider
        if chunk_steps is None:
            chunk_steps = getattr(provider, "chunk_steps", 64)
        check_positive("chunk_steps", chunk_steps)
        self.chunk_steps = int(chunk_steps)
        self.num_steps = int(provider.num_steps)
        self.num_devices = int(provider.num_devices)
        self.num_edges = int(provider.num_edges)
        self._chunks: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._membership: "OrderedDict[int, Tuple[List[np.ndarray], np.ndarray]]" = (
            OrderedDict()
        )

    # ---- chunk plumbing --------------------------------------------------

    def _chunk_for(self, wrapped: int) -> np.ndarray:
        index = wrapped // self.chunk_steps
        block = self._chunks.get(index)
        if block is None:
            start = index * self.chunk_steps
            stop = min(start + self.chunk_steps, self.num_steps)
            with profile_site("mobility", "chunk_load"):
                block = np.asarray(
                    self.provider.chunk(start, stop), dtype=np.int32
                )
            if block.shape != (stop - start, self.num_devices):
                raise ValueError(
                    f"provider returned chunk of shape {block.shape}, "
                    f"expected {(stop - start, self.num_devices)}"
                )
            block.flags.writeable = False
            self._chunks[index] = block
            while len(self._chunks) > self.MAX_RESIDENT_CHUNKS:
                self._chunks.popitem(last=False)
        else:
            self._chunks.move_to_end(index)
        return block

    def _wrap(self, t: int) -> int:
        if t < 0:
            raise ValueError(f"time step must be >= 0, got {t}")
        return t % self.num_steps

    def _row(self, wrapped: int) -> np.ndarray:
        return self._chunk_for(wrapped)[wrapped % self.chunk_steps]

    def _step_index(self, wrapped: int) -> Tuple[List[np.ndarray], np.ndarray]:
        # Same grouping algorithm (stable argsort + cumsum bounds) as
        # MobilityTrace._step_index, so member order is identical.
        index = self._membership.get(wrapped)
        if index is None:
            # Same documented trace-scan hotspot as the dense backend.
            with profile_site("mobility", "membership_index"):
                row = self._row(wrapped)
                counts = np.bincount(row, minlength=self.num_edges)
                order = np.argsort(row, kind="stable")
                bounds = np.concatenate(([0], np.cumsum(counts)))
                members = [
                    order[bounds[n] : bounds[n + 1]]
                    for n in range(self.num_edges)
                ]
                for arr in members:
                    arr.flags.writeable = False
                counts.flags.writeable = False
                index = (members, counts)
            self._membership[wrapped] = index
            while len(self._membership) > self.MEMBERSHIP_CACHE_STEPS:
                self._membership.popitem(last=False)
        else:
            self._membership.move_to_end(wrapped)
        return index

    # ---- MobilityTrace query surface -------------------------------------

    def edge_of(self, t: int, device: int) -> int:
        return int(self._row(self._wrap(t))[device])

    def assignment_row(self, t: int) -> np.ndarray:
        return self._row(self._wrap(t))

    def devices_at(self, t: int, edge: int) -> np.ndarray:
        if not 0 <= edge < self.num_edges:
            raise ValueError(f"edge must be in [0, {self.num_edges}), got {edge}")
        if not hotpath_enabled():
            return np.flatnonzero(self._row(self._wrap(t)) == edge)
        return self._step_index(self._wrap(t))[0][edge]

    def counts_at(self, t: int) -> np.ndarray:
        if not hotpath_enabled():
            return np.array(
                [self.devices_at(t, n).size for n in range(self.num_edges)]
            )
        return self._step_index(self._wrap(t))[1]

    def validate(self) -> None:
        """Eq. (1) partition check, one chunk at a time."""
        for start in range(0, self.num_steps, self.chunk_steps):
            wrapped = start  # chunk-aligned step
            block = self._chunk_for(wrapped)
            if block.size and (block.min() < 0 or block.max() >= self.num_edges):
                raise AssertionError(
                    f"chunk at step {start}: edge indices outside "
                    f"[0, {self.num_edges})"
                )

    # ---- statistics ------------------------------------------------------

    def occupancy(self) -> np.ndarray:
        """Mean devices per edge, accumulated chunk by chunk."""
        counts = np.zeros(self.num_edges)
        for start in range(0, self.num_steps, self.chunk_steps):
            block = self._chunk_for(start)
            counts += np.bincount(block.ravel(), minlength=self.num_edges)
        return counts / self.num_steps

    def handover_rate(self) -> float:
        """Fraction of (step, device) pairs that switched edges."""
        if self.num_steps < 2:
            return 0.0
        switches = 0
        previous_last: Optional[np.ndarray] = None
        for start in range(0, self.num_steps, self.chunk_steps):
            block = self._chunk_for(start)
            if previous_last is not None:
                switches += int((block[0] != previous_last).sum())
            switches += int((block[1:] != block[:-1]).sum())
            previous_last = block[-1].copy()
        return switches / ((self.num_steps - 1) * self.num_devices)

    def materialize(self) -> MobilityTrace:
        """The equivalent dense trace (for parity tests and small runs)."""
        blocks = [
            np.array(self._chunk_for(start))
            for start in range(0, self.num_steps, self.chunk_steps)
        ]
        return MobilityTrace(np.concatenate(blocks, axis=0), self.num_edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingTrace(steps={self.num_steps}, devices={self.num_devices}, "
            f"edges={self.num_edges}, chunk_steps={self.chunk_steps}, "
            f"provider={type(self.provider).__name__})"
        )


def streaming_markov_trace(
    num_edges: int,
    num_steps: int,
    num_devices: int,
    seed: int,
    stay_probability: float = 0.8,
    chunk_steps: int = 64,
    transition: Optional[np.ndarray] = None,
) -> StreamingTrace:
    """A streaming stay-or-jump Markov trace (see :class:`MarkovChunkProvider`)."""
    from repro.mobility.markov import MarkovMobilityModel

    if transition is None:
        transition = MarkovMobilityModel.stay_or_jump(
            num_edges, stay_probability=stay_probability
        ).transition
    provider = MarkovChunkProvider(
        transition, num_steps, num_devices, seed, chunk_steps=chunk_steps
    )
    return StreamingTrace(provider)

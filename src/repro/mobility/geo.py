"""Base-station geometry and the station→main-edge clustering step.

The paper (§IV-A.1): "Considering the limited mobile data at some base
stations, neighboring base stations cluster together to form several
main base stations."  We reproduce that preprocessing: stations are
points in a planar service area, clustered into ``num_edges`` main edges
with k-means (scipy), and devices associate with the main edge of their
nearest station — the nearest-edge access rule of §II-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BaseStation:
    """One base station: an id, planar coordinates and a popularity weight.

    ``popularity`` models the heavy-tailed station load observed in the
    Shanghai Telecom dataset (a few hot stations carry most records).
    """

    station_id: int
    x: float
    y: float
    popularity: float = 1.0


class EdgeMap:
    """Mapping from base stations to main edges, plus spatial queries."""

    def __init__(self, stations: Sequence[BaseStation], station_edge: np.ndarray) -> None:
        if len(stations) == 0:
            raise ValueError("need at least one station")
        station_edge = np.asarray(station_edge, dtype=int)
        if station_edge.shape != (len(stations),):
            raise ValueError(
                f"station_edge must have shape ({len(stations)},), got "
                f"{station_edge.shape}"
            )
        self.stations = list(stations)
        self.station_edge = station_edge
        self.num_edges = int(station_edge.max()) + 1
        self._positions = np.array([(s.x, s.y) for s in stations])

    def nearest_station(self, x: float, y: float) -> int:
        """Index of the station closest to (x, y)."""
        d2 = np.sum((self._positions - np.array([x, y])) ** 2, axis=1)
        return int(np.argmin(d2))

    def edge_of_position(self, x: float, y: float) -> int:
        """Main-edge index serving position (x, y) via the nearest station."""
        return int(self.station_edge[self.nearest_station(x, y)])

    def edge_of_station(self, station_id: int) -> int:
        """Main-edge index of a station."""
        if not 0 <= station_id < len(self.stations):
            raise ValueError(
                f"station_id must be in [0, {len(self.stations)}), got {station_id}"
            )
        return int(self.station_edge[station_id])

    def edge_centroids(self) -> np.ndarray:
        """Popularity-weighted centroid of each main edge, shape (num_edges, 2)."""
        centroids = np.zeros((self.num_edges, 2))
        for n in range(self.num_edges):
            members = np.flatnonzero(self.station_edge == n)
            weights = np.array([self.stations[i].popularity for i in members])
            weights = weights / weights.sum()
            centroids[n] = weights @ self._positions[members]
        return centroids

    def stations_per_edge(self) -> np.ndarray:
        """Number of stations clustered into each main edge."""
        return np.bincount(self.station_edge, minlength=self.num_edges)


def make_station_grid(
    num_stations: int,
    area: float = 100.0,
    num_hotspots: int = 8,
    hotspot_fraction: float = 0.7,
    popularity_tail: float = 1.2,
    rng: RngLike = None,
) -> List[BaseStation]:
    """Synthesize a base-station deployment with urban-like clustering.

    ``hotspot_fraction`` of stations concentrate around ``num_hotspots``
    urban centres (Gaussian spread); the rest scatter uniformly.
    Popularities are Pareto-distributed with shape ``popularity_tail``,
    matching the heavy-tailed per-station load of telecom datasets.
    """
    check_positive("num_stations", num_stations)
    check_positive("area", area)
    check_positive("num_hotspots", num_hotspots)
    rng = as_generator(rng)

    centres = rng.uniform(0.1 * area, 0.9 * area, size=(num_hotspots, 2))
    stations: List[BaseStation] = []
    popularity = 1.0 + rng.pareto(popularity_tail, size=num_stations)
    for i in range(num_stations):
        if rng.random() < hotspot_fraction:
            centre = centres[rng.integers(num_hotspots)]
            pos = centre + rng.normal(scale=0.05 * area, size=2)
        else:
            pos = rng.uniform(0, area, size=2)
        pos = np.clip(pos, 0, area)
        stations.append(
            BaseStation(
                station_id=i, x=float(pos[0]), y=float(pos[1]),
                popularity=float(popularity[i]),
            )
        )
    return stations


def cluster_stations(
    stations: Sequence[BaseStation], num_edges: int, rng: RngLike = None
) -> EdgeMap:
    """Cluster stations into ``num_edges`` main edges with k-means.

    Guarantees every edge is non-empty by reassigning the station
    nearest to any empty cluster's seed (k-means can drop clusters on
    degenerate inputs).
    """
    check_positive("num_edges", num_edges)
    if num_edges > len(stations):
        raise ValueError(
            f"cannot form {num_edges} edges from {len(stations)} stations"
        )
    rng = as_generator(rng)
    positions = np.array([(s.x, s.y) for s in stations])
    seed = int(rng.integers(0, 2**31 - 1))
    _centroids, labels = kmeans2(positions, num_edges, minit="++", seed=seed)

    # Repair empty clusters deterministically.
    labels = np.asarray(labels, dtype=int)
    counts = np.bincount(labels, minlength=num_edges)
    for empty in np.flatnonzero(counts == 0):
        donor_edge = int(np.argmax(counts))
        donor_members = np.flatnonzero(labels == donor_edge)
        moved = donor_members[0]
        labels[moved] = empty
        counts[donor_edge] -= 1
        counts[empty] += 1
    return EdgeMap(stations, labels)

"""Mobility substrate: base-station geometry, traces and mobility models.

The paper drives its simulation with the Shanghai Telecom dataset
(9,481 devices, 3,233 base stations, 6 months of access records),
clustering neighbouring base stations into main edges and deriving the
per-time-step device→edge indicator ``B^t_{n,m}``.  That dataset is not
available offline, so :class:`repro.mobility.telecom.TelecomTraceGenerator`
synthesizes access records with the same shape (heavy-tailed station
popularity, session-based access, home-biased movement) and the same
preprocessing pipeline (station clustering → main edges → indicator
matrices).  A classical Markov mobility model — the predictive fallback
the paper cites — is provided in :mod:`repro.mobility.markov`.
"""

from repro.mobility.geo import BaseStation, EdgeMap, cluster_stations, make_station_grid
from repro.mobility.markov import MarkovMobilityModel
from repro.mobility.predictor import OrderKMarkovPredictor
from repro.mobility.streaming import (
    DenseChunkProvider,
    MarkovChunkProvider,
    StaticChunkProvider,
    StreamingTrace,
    streaming_markov_trace,
)
from repro.mobility.telecom import AccessRecord, TelecomTraceGenerator
from repro.mobility.trace import MobilityTrace, static_trace
from repro.mobility.waypoint import RandomWaypointModel

__all__ = [
    "DenseChunkProvider",
    "MarkovChunkProvider",
    "StaticChunkProvider",
    "StreamingTrace",
    "streaming_markov_trace",
    "BaseStation",
    "EdgeMap",
    "cluster_stations",
    "make_station_grid",
    "MarkovMobilityModel",
    "OrderKMarkovPredictor",
    "RandomWaypointModel",
    "AccessRecord",
    "TelecomTraceGenerator",
    "MobilityTrace",
    "static_trace",
]

"""Markov-chain mobility model over edges.

The paper cites the Markov mobility model [23], [24] as the classical
way to predict device locations when future trajectories are uncertain
(§II-A).  We provide it both as a trace *generator* (each device walks
its own chain over edges) and as a *predictor* (k-step occupancy
probabilities ``P^t_{n,m}``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mobility.trace import MobilityTrace
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_fraction, check_positive


class MarkovMobilityModel:
    """Discrete-time Markov chain on the edge set.

    Parameters
    ----------
    transition:
        Row-stochastic (num_edges, num_edges) matrix; ``transition[i, j]``
        is the probability a device at edge ``i`` moves to edge ``j`` in
        the next time step.
    """

    def __init__(self, transition: np.ndarray) -> None:
        transition = np.asarray(transition, dtype=float)
        if transition.ndim != 2 or transition.shape[0] != transition.shape[1]:
            raise ValueError(f"transition must be square, got {transition.shape}")
        if np.any(transition < 0):
            raise ValueError("transition probabilities must be non-negative")
        rows = transition.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise ValueError(f"transition rows must sum to 1, got {rows}")
        self.transition = transition
        self.num_edges = transition.shape[0]

    @classmethod
    def stay_or_jump(
        cls,
        num_edges: int,
        stay_probability: float = 0.8,
        rng: RngLike = None,
        neighbour_bias: float = 0.0,
    ) -> "MarkovMobilityModel":
        """A standard parametric chain: stay with probability ``p``, else jump.

        With ``neighbour_bias > 0``, jumps prefer adjacent edge indices
        (a 1-D ring topology proxy for geographic adjacency); at 0 the
        jump target is uniform over the other edges.
        """
        check_positive("num_edges", num_edges)
        check_fraction("stay_probability", stay_probability)
        if num_edges == 1:
            return cls(np.ones((1, 1)))
        rng = as_generator(rng)
        transition = np.zeros((num_edges, num_edges))
        for i in range(num_edges):
            weights = np.ones(num_edges)
            weights[i] = 0.0
            if neighbour_bias > 0:
                ring_dist = np.minimum(
                    np.abs(np.arange(num_edges) - i),
                    num_edges - np.abs(np.arange(num_edges) - i),
                )
                weights = weights * np.exp(-neighbour_bias * (ring_dist - 1))
                weights[i] = 0.0
            weights = weights / weights.sum()
            transition[i] = (1.0 - stay_probability) * weights
            transition[i, i] = stay_probability
        return cls(transition)

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution π with π = π P (principal eigenvector)."""
        values, vectors = np.linalg.eig(self.transition.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()

    def predict(self, current_edge: int, steps: int = 1) -> np.ndarray:
        """Occupancy probabilities ``P^{t+steps}_{n,m}`` after ``steps`` moves."""
        if not 0 <= current_edge < self.num_edges:
            raise ValueError(
                f"current_edge must be in [0, {self.num_edges}), got {current_edge}"
            )
        check_positive("steps", steps)
        dist = np.zeros(self.num_edges)
        dist[current_edge] = 1.0
        return dist @ np.linalg.matrix_power(self.transition, steps)

    def sample_trace(
        self,
        num_steps: int,
        num_devices: int,
        rng: RngLike = None,
        initial: Optional[np.ndarray] = None,
    ) -> MobilityTrace:
        """Simulate ``num_devices`` independent chains for ``num_steps`` steps."""
        check_positive("num_steps", num_steps)
        check_positive("num_devices", num_devices)
        rng = as_generator(rng)
        if initial is None:
            initial = rng.integers(0, self.num_edges, size=num_devices)
        initial = np.asarray(initial, dtype=int)
        if initial.shape != (num_devices,):
            raise ValueError(
                f"initial must have shape ({num_devices},), got {initial.shape}"
            )
        assignments = np.zeros((num_steps, num_devices), dtype=int)
        assignments[0] = initial
        cumulative = np.cumsum(self.transition, axis=1)
        for t in range(1, num_steps):
            u = rng.random(num_devices)
            rows = cumulative[assignments[t - 1]]
            assignments[t] = (u[:, None] > rows).sum(axis=1)
        return MobilityTrace(assignments, self.num_edges)

"""Synthetic Shanghai-Telecom-style access records and trace generation.

The paper's trace substrate is the Shanghai Telecom dataset: 9,481
mobile devices, 3,233 base stations, >7.2M access records over six
months, where every record carries the start/end timestamps of one
device's access to one station (§IV-A.1).  The dataset itself cannot be
shipped, so :class:`TelecomTraceGenerator` synthesizes records with the
same structure and its known qualitative statistics:

- heavy-tailed station popularity (a few hot stations carry most load),
- home/work-anchored individual mobility: each device dwells mostly at
  a small set of personal anchor stations and occasionally explores,
- log-normal session (dwell) durations,
- spatially local movement (next station drawn near the current one).

The downstream preprocessing mirrors the paper: stations are clustered
into main edges (:func:`repro.mobility.geo.cluster_stations`) and the
records are discretized into a per-time-step device→edge
:class:`~repro.mobility.trace.MobilityTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.geo import BaseStation, EdgeMap, cluster_stations, make_station_grid
from repro.mobility.trace import MobilityTrace
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AccessRecord:
    """One device↔station access session, as in the Telecom dataset."""

    device_id: int
    station_id: int
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.end_time <= self.start_time:
            raise ValueError(
                f"end_time must exceed start_time, got "
                f"[{self.start_time}, {self.end_time}]"
            )

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class TelecomTraceGenerator:
    """Generate synthetic telecom access records and mobility traces.

    Parameters
    ----------
    num_devices, num_stations:
        Population sizes (the paper uses 100 devices drawn from the
        9,481 in the dataset, and 3,233 stations clustered into 10 main
        edges).
    area:
        Side length of the square service area (arbitrary units).
    anchors_per_device:
        Number of personal anchor stations (home, work, ...) per device.
    anchor_dwell_bias:
        Probability that a session happens at an anchor rather than an
        exploration station.
    mean_dwell_hours, dwell_sigma:
        Log-normal dwell-duration parameters.
    locality_scale:
        Spatial scale (fraction of ``area``) for choosing the next
        station near the current one when exploring.
    """

    def __init__(
        self,
        num_devices: int = 100,
        num_stations: int = 300,
        area: float = 100.0,
        anchors_per_device: int = 2,
        anchor_dwell_bias: float = 0.7,
        mean_dwell_hours: float = 1.5,
        dwell_sigma: float = 0.8,
        locality_scale: float = 0.15,
        rng: RngLike = None,
    ) -> None:
        check_positive("num_devices", num_devices)
        check_positive("num_stations", num_stations)
        check_positive("anchors_per_device", anchors_per_device)
        check_positive("mean_dwell_hours", mean_dwell_hours)
        if not 0.0 <= anchor_dwell_bias <= 1.0:
            raise ValueError(
                f"anchor_dwell_bias must be in [0, 1], got {anchor_dwell_bias}"
            )
        self.num_devices = num_devices
        self.num_stations = num_stations
        self.area = area
        self.anchors_per_device = anchors_per_device
        self.anchor_dwell_bias = anchor_dwell_bias
        self.mean_dwell_hours = mean_dwell_hours
        self.dwell_sigma = dwell_sigma
        self.locality_scale = locality_scale
        self._rng = as_generator(rng)

        self.stations: List[BaseStation] = make_station_grid(
            num_stations, area=area, rng=self._rng
        )
        self._positions = np.array([(s.x, s.y) for s in self.stations])
        popularity = np.array([s.popularity for s in self.stations])
        self._popularity = popularity / popularity.sum()

        # Per-device anchor stations, popularity-weighted (busy stations
        # are busy precisely because many devices anchor there).
        self._anchors = np.stack(
            [
                self._rng.choice(
                    num_stations,
                    size=anchors_per_device,
                    replace=False,
                    p=self._popularity,
                )
                for _ in range(num_devices)
            ]
        )

    # ---- record synthesis -------------------------------------------------

    def _next_station(self, device: int, current: int) -> int:
        """Choose the next station: an anchor, or a nearby exploration."""
        if self._rng.random() < self.anchor_dwell_bias:
            return int(self._rng.choice(self._anchors[device]))
        # Exploration: distance-discounted, popularity-weighted draw.
        d2 = np.sum((self._positions - self._positions[current]) ** 2, axis=1)
        scale = (self.locality_scale * self.area) ** 2
        weights = self._popularity * np.exp(-d2 / (2 * scale))
        weights[current] = 0.0
        total = weights.sum()
        if total <= 0:
            return int(self._rng.integers(self.num_stations))
        return int(self._rng.choice(self.num_stations, p=weights / total))

    def generate_records(self, duration_hours: float) -> List[AccessRecord]:
        """Synthesize access records covering ``[0, duration_hours)``.

        Every device's sessions tile the horizon contiguously (devices
        are always associated with their nearest station), so the
        discretization step never needs gap imputation.
        """
        check_positive("duration_hours", duration_hours)
        records: List[AccessRecord] = []
        mu = np.log(self.mean_dwell_hours) - self.dwell_sigma**2 / 2
        for device in range(self.num_devices):
            t = 0.0
            station = int(self._rng.choice(self._anchors[device]))
            while t < duration_hours:
                dwell = float(self._rng.lognormal(mu, self.dwell_sigma))
                dwell = max(dwell, 1e-3)
                end = min(t + dwell, duration_hours)
                records.append(
                    AccessRecord(
                        device_id=device,
                        station_id=station,
                        start_time=t,
                        end_time=end,
                    )
                )
                t = end
                station = self._next_station(device, station)
        return records

    # ---- discretization ----------------------------------------------------

    def build_edge_map(self, num_edges: int) -> EdgeMap:
        """Cluster the station deployment into ``num_edges`` main edges."""
        return cluster_stations(self.stations, num_edges, rng=self._rng)

    @staticmethod
    def records_to_trace(
        records: Sequence[AccessRecord],
        edge_map: EdgeMap,
        num_steps: int,
        step_hours: float,
        num_devices: Optional[int] = None,
    ) -> MobilityTrace:
        """Discretize access records into a per-step device→edge trace.

        A device's edge at step ``t`` is the main edge of the station it
        accessed at the midpoint of the step interval (the paper aligns
        time steps with FL iterations, §II-A footnote 2).
        """
        check_positive("num_steps", num_steps)
        check_positive("step_hours", step_hours)
        if not records:
            raise ValueError("records is empty")
        if num_devices is None:
            num_devices = max(r.device_id for r in records) + 1

        # Sort each device's sessions by start time once.
        per_device: List[List[AccessRecord]] = [[] for _ in range(num_devices)]
        for record in records:
            if record.device_id >= num_devices:
                raise ValueError(
                    f"record device_id {record.device_id} >= num_devices {num_devices}"
                )
            per_device[record.device_id].append(record)
        for sessions in per_device:
            sessions.sort(key=lambda r: r.start_time)
        if any(not sessions for sessions in per_device):
            raise ValueError("every device needs at least one access record")

        assignments = np.zeros((num_steps, num_devices), dtype=int)
        for device, sessions in enumerate(per_device):
            starts = np.array([s.start_time for s in sessions])
            for t in range(num_steps):
                midpoint = (t + 0.5) * step_hours
                idx = int(np.searchsorted(starts, midpoint, side="right")) - 1
                idx = max(idx, 0)
                session = sessions[min(idx, len(sessions) - 1)]
                assignments[t, device] = edge_map.edge_of_station(session.station_id)
        return MobilityTrace(assignments, edge_map.num_edges)

    def generate_trace(
        self, num_steps: int, num_edges: int, step_hours: float = 0.5
    ) -> Tuple[MobilityTrace, EdgeMap]:
        """Full pipeline: records → station clustering → discrete trace."""
        check_positive("num_edges", num_edges)
        edge_map = self.build_edge_map(num_edges)
        records = self.generate_records(duration_hours=num_steps * step_hours)
        trace = self.records_to_trace(
            records, edge_map, num_steps, step_hours, num_devices=self.num_devices
        )
        return trace, edge_map

"""Random-waypoint mobility over a base-station deployment.

The classical continuous-space mobility model used throughout the MEC
literature (and the usual alternative to trace replay): each device
picks a uniform random waypoint in the service area, travels toward it
at a random speed, pauses, and repeats.  Positions are discretized into
a device→edge :class:`~repro.mobility.trace.MobilityTrace` through the
nearest-station/nearest-edge association of §II-A.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mobility.geo import EdgeMap, cluster_stations, make_station_grid
from repro.mobility.trace import MobilityTrace
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class RandomWaypointModel:
    """Random-waypoint walker population in a square service area.

    Parameters
    ----------
    area:
        Side length of the square area (same units as station grids).
    speed_range:
        (min, max) travel speed in area-units per time step.
    pause_range:
        (min, max) pause duration, in time steps, at each waypoint.
    """

    def __init__(
        self,
        area: float = 100.0,
        speed_range: Tuple[float, float] = (1.0, 5.0),
        pause_range: Tuple[float, float] = (0.0, 3.0),
        rng: RngLike = None,
    ) -> None:
        check_positive("area", area)
        low, high = speed_range
        if not 0 < low <= high:
            raise ValueError(f"invalid speed_range {speed_range}")
        pause_low, pause_high = pause_range
        if not 0 <= pause_low <= pause_high:
            raise ValueError(f"invalid pause_range {pause_range}")
        self.area = float(area)
        self.speed_range = (float(low), float(high))
        self.pause_range = (float(pause_low), float(pause_high))
        self._rng = as_generator(rng)

    def sample_positions(
        self, num_steps: int, num_devices: int
    ) -> np.ndarray:
        """Simulate walker positions; returns (num_steps, num_devices, 2)."""
        check_positive("num_steps", num_steps)
        check_positive("num_devices", num_devices)
        rng = self._rng
        positions = np.zeros((num_steps, num_devices, 2))
        current = rng.uniform(0, self.area, size=(num_devices, 2))
        waypoint = rng.uniform(0, self.area, size=(num_devices, 2))
        speed = rng.uniform(*self.speed_range, size=num_devices)
        pause_left = np.zeros(num_devices)

        for t in range(num_steps):
            positions[t] = current
            moving = pause_left <= 0
            delta = waypoint - current
            distance = np.linalg.norm(delta, axis=1)
            arrive = moving & (distance <= speed)

            # Advance travellers that do not arrive this step.
            advancing = moving & ~arrive & (distance > 0)
            if advancing.any():
                step_vec = (
                    delta[advancing]
                    / distance[advancing, None]
                    * speed[advancing, None]
                )
                current[advancing] = current[advancing] + step_vec

            # Arrivals snap to the waypoint and start pausing.
            if arrive.any():
                current[arrive] = waypoint[arrive]
                pause_left[arrive] = rng.uniform(
                    *self.pause_range, size=int(arrive.sum())
                )
                waypoint[arrive] = rng.uniform(0, self.area, size=(int(arrive.sum()), 2))
                speed[arrive] = rng.uniform(*self.speed_range, size=int(arrive.sum()))

            pause_left = np.maximum(0.0, pause_left - 1.0)
        return positions

    def sample_trace(
        self,
        num_steps: int,
        num_devices: int,
        num_edges: int,
        edge_map: Optional[EdgeMap] = None,
        num_stations: Optional[int] = None,
    ) -> Tuple[MobilityTrace, EdgeMap]:
        """Positions → nearest-edge association → MobilityTrace.

        Builds a station grid + clustering when no ``edge_map`` is given.
        """
        check_positive("num_edges", num_edges)
        if edge_map is None:
            num_stations = num_stations or max(10 * num_edges, 50)
            stations = make_station_grid(num_stations, area=self.area, rng=self._rng)
            edge_map = cluster_stations(stations, num_edges, rng=self._rng)
        positions = self.sample_positions(num_steps, num_devices)
        assignments = np.zeros((num_steps, num_devices), dtype=int)
        for t in range(num_steps):
            for m in range(num_devices):
                assignments[t, m] = edge_map.edge_of_position(*positions[t, m])
        return MobilityTrace(assignments, edge_map.num_edges), edge_map

"""The seeded arrival/departure event stream over the device population.

:class:`ChurnProcess` maintains the active-set mask the trainer
intersects with the mobility trace's per-edge member sets: a device is
samplable at step ``t`` only when the trace places it inside an edge
*and* the churn process says it is enrolled.

Determinism contract (the same one :mod:`repro.faults` honors): every
draw comes from a :class:`~repro.utils.rng.SeedSequenceFactory` named
stream of a ``"churn"`` child factory — ``"initial-active"`` for the
step-0 enrollment and ``"step/{t}"`` for the per-step transition — so
the event stream depends only on the master seed and the profile, never
on executor backend, worker count or completion order.  Each step draws
exactly two fixed-size vectors (one departure draw and one arrival draw
per device) regardless of the current mask, so stream consumption is
independent of the realized population and kill/resume replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.churn.profile import ChurnProfile
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ChurnProcess", "ChurnStep", "make_churn_process"]


@dataclass(frozen=True)
class ChurnStep:
    """The population change one :meth:`ChurnProcess.step` produced."""

    #: Devices that enrolled this step (sorted ids).
    joined: List[int]
    #: Devices that de-enrolled this step (sorted ids).
    left: List[int]
    #: Active-set size after applying the transition.
    num_active: int

    @property
    def changed(self) -> bool:
        return bool(self.joined or self.left)


class ChurnProcess:
    """Seeded open-population dynamics over a fixed device id space.

    Life cycle, driven by :class:`repro.hfl.trainer.HFLTrainer`:

    1. :meth:`bind` once with the population size and the trainer's
       seed factory (again on construction of a resuming trainer);
    2. :meth:`reset` at the start of a fresh run — draws the step-0
       enrollment; a resumed run instead restores the mask through
       :meth:`load_state_dict`;
    3. :meth:`step` at the top of every time step, *before* the plan
       phase, returning the arrivals and departures the trainer feeds
       to the sampler hooks and the observability sinks.
    """

    def __init__(self, profile: ChurnProfile) -> None:
        if not isinstance(profile, ChurnProfile):
            raise TypeError(
                f"expected ChurnProfile, got {type(profile).__name__}"
            )
        self.profile = profile
        self._seeds: Optional[SeedSequenceFactory] = None
        self.num_devices = 0
        self._active: Optional[np.ndarray] = None
        self._total_joined = 0
        self._total_left = 0

    def describe(self) -> dict:
        """JSON-compatible description for the run manifest."""
        from dataclasses import asdict

        return {"name": "seeded", "profile": asdict(self.profile)}

    def bind(self, num_devices: int, seeds: SeedSequenceFactory) -> None:
        """Attach the population size and the trainer's seed factory."""
        if num_devices <= 0:
            raise ValueError(
                f"num_devices must be positive, got {num_devices}"
            )
        self.num_devices = int(num_devices)
        # A child factory keeps churn streams disjoint from every engine
        # and fault stream by construction.
        self._seeds = seeds.child("churn")

    def _require_bound(self) -> SeedSequenceFactory:
        if self._seeds is None:
            raise RuntimeError("bind() must be called before use")
        return self._seeds

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean enrollment mask over the device id space."""
        if self._active is None:
            raise RuntimeError("reset() or load_state_dict() must run first")
        return self._active

    @property
    def num_active(self) -> int:
        return int(self.active_mask.sum())

    def reset(self) -> None:
        """Draw the step-0 enrollment from the ``"initial-active"`` stream."""
        seeds = self._require_bound()
        rng = seeds.generator("initial-active")
        draws = rng.random(self.num_devices)
        active = draws < self.profile.initial_active_fraction
        floor = min(self.profile.min_active, self.num_devices)
        if int(active.sum()) < floor:
            # Deterministic fix-up: enroll the devices with the smallest
            # draws (ties broken by id via the stable sort) until the
            # floor is met.
            order = np.argsort(draws, kind="stable")
            for m in order:
                if int(active.sum()) >= floor:
                    break
                active[m] = True
        self._active = active
        self._total_joined = 0
        self._total_left = 0

    def step(self, t: int) -> ChurnStep:
        """Advance the population one step (``"step/{t}"`` stream).

        Two fixed vector draws per step — departures first, arrivals
        second — consumed identically whatever the current mask, so the
        stream position at step ``t`` is a pure function of ``t``.  A
        device cannot join and leave within the same step: transitions
        are computed from the pre-step mask, whose active/inactive
        halves are disjoint.
        """
        seeds = self._require_bound()
        active = self.active_mask
        rng = seeds.generator(f"step/{t}")
        leave_draws = rng.random(self.num_devices)
        join_draws = rng.random(self.num_devices)
        leaving = active & (leave_draws < self.profile.departure_rate)
        joining = (~active) & (join_draws < self.profile.arrival_rate)

        new_active = (active & ~leaving) | joining
        floor = min(self.profile.min_active, self.num_devices)
        deficit = floor - int(new_active.sum())
        if deficit > 0:
            # Cancel the lowest-id departures until the floor is met —
            # deterministic, and arrivals are never cancelled.
            for m in np.flatnonzero(leaving):
                if deficit <= 0:
                    break
                leaving[m] = False
                new_active[m] = True
                deficit -= 1

        self._active = new_active
        joined = [int(m) for m in np.flatnonzero(joining)]
        left = [int(m) for m in np.flatnonzero(leaving)]
        self._total_joined += len(joined)
        self._total_left += len(left)
        return ChurnStep(
            joined=joined, left=left, num_active=int(new_active.sum())
        )

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the population state."""
        return {
            "active_mask": [int(v) for v in self.active_mask],
            "total_joined": self._total_joined,
            "total_left": self._total_left,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (after :meth:`bind`)."""
        self._require_bound()
        mask = np.asarray(
            [bool(int(v)) for v in state["active_mask"]], dtype=bool
        )
        if mask.shape != (self.num_devices,):
            raise ValueError(
                f"checkpoint active mask covers {mask.size} devices, "
                f"process is bound to {self.num_devices}"
            )
        self._active = mask
        self._total_joined = int(state.get("total_joined", 0))
        self._total_left = int(state.get("total_left", 0))


def make_churn_process(
    profile: "Optional[ChurnProfile]",
) -> Optional[ChurnProcess]:
    """A :class:`ChurnProcess` for an active profile, else ``None``.

    An inactive profile (the closed-world default) yields ``None`` so
    the trainer's churn-free fast path — bit-identical to the pre-churn
    engine — stays in force.
    """
    if profile is None or not profile.active:
        return None
    return ChurnProcess(profile)

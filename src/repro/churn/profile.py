"""Churn profiles: the open-population surface of an HFL run.

The paper fixes the device population for the whole run; real
deployments do not.  A :class:`ChurnProfile` bundles the rates of the
seeded arrival/departure process (:mod:`repro.churn.process`) that
turns the fixed trace population into an *open* one:

- **arrival** — an inactive device enrolls (powers on, installs the
  app, re-enters the deployment) and becomes samplable;
- **departure** — an active device de-enrolls and stops being
  samplable until it arrives again;
- **initial activity** — the fraction of the population enrolled at
  step 0 (below 1.0, part of the population only trickles in over the
  run — the cold-start regime of an always-on coordinator).

Churn is *population-level* state, distinct from the per-round
transient faults of :mod:`repro.faults` (a dropped upload comes back
next round; a departed device is gone until the process re-admits it).

Profiles are frozen and hashable so they can ride inside scenario
configurations; :func:`resolve_churn_profile` parses the CLI string
form (a preset name, ``key=value`` pairs, or both).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.utils.validation import check_fraction

__all__ = [
    "CHURN_PRESETS",
    "ChurnProfile",
    "resolve_churn_profile",
]


@dataclass(frozen=True)
class ChurnProfile:
    """Rates of the seeded arrival/departure process.

    The default profile is the closed world (no arrivals, no
    departures, everyone enrolled from step 0) — constructing a trainer
    with it is exactly equivalent to passing no profile at all.
    """

    #: Per-step probability an inactive device enrolls.
    arrival_rate: float = 0.0
    #: Per-step probability an active device de-enrolls.
    departure_rate: float = 0.0
    #: Fraction of the population enrolled at step 0.
    initial_active_fraction: float = 1.0
    #: Hard floor on the active-set size: departures that would shrink
    #: the population below it are cancelled (an HFL run with zero
    #: samplable devices is not a run).
    min_active: int = 1

    def __post_init__(self) -> None:
        check_fraction("arrival_rate", self.arrival_rate)
        check_fraction("departure_rate", self.departure_rate)
        check_fraction(
            "initial_active_fraction", self.initial_active_fraction
        )
        if self.min_active < 1:
            raise ValueError(
                f"min_active must be >= 1, got {self.min_active}"
            )

    @property
    def active(self) -> bool:
        """Whether this profile can ever change the active set."""
        return (
            self.arrival_rate > 0
            or self.departure_rate > 0
            or self.initial_active_fraction < 1.0
        )

    def with_overrides(self, **kwargs) -> "ChurnProfile":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Named profiles for the CLI and benchmarks.  "light" models a mostly
#: stable population with a slow trickle; "moderate" a visibly open one
#: (arrivals outpace departures so a cold-started population fills in);
#: "heavy" stresses the staleness/robustness machinery in short smokes.
CHURN_PRESETS: Dict[str, ChurnProfile] = {
    "none": ChurnProfile(),
    "light": ChurnProfile(
        arrival_rate=0.05,
        departure_rate=0.02,
    ),
    "moderate": ChurnProfile(
        arrival_rate=0.15,
        departure_rate=0.08,
        initial_active_fraction=0.9,
    ),
    "heavy": ChurnProfile(
        arrival_rate=0.25,
        departure_rate=0.20,
        initial_active_fraction=0.75,
    ),
}

#: ``key=value`` spellings accepted by :func:`resolve_churn_profile`.
_SPEC_KEYS = {
    "arrival": ("arrival_rate", float),
    "departure": ("departure_rate", float),
    "initial_active": ("initial_active_fraction", float),
    "min_active": ("min_active", int),
}


def resolve_churn_profile(
    spec: "Optional[str | ChurnProfile]",
) -> Optional[ChurnProfile]:
    """Turn a CLI/scenario churn spec into a profile (``None`` stays ``None``).

    Accepts a ready :class:`ChurnProfile`, a preset name (``"light"``),
    ``key=value`` pairs (``"arrival=0.1,departure=0.05"``) or a preset
    followed by overrides (``"moderate,min_active=4"``).  Keys:
    ``arrival``, ``departure``, ``initial_active``, ``min_active``.
    """
    if spec is None or isinstance(spec, ChurnProfile):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"churn profile must be a string or ChurnProfile, got "
            f"{type(spec).__name__}"
        )
    profile = ChurnProfile()
    overrides = {}
    for i, token in enumerate(t.strip() for t in spec.split(",") if t.strip()):
        if "=" not in token:
            if i != 0:
                raise ValueError(
                    f"preset name must come first in churn spec {spec!r}"
                )
            if token not in CHURN_PRESETS:
                raise ValueError(
                    f"unknown churn preset {token!r}; choose from "
                    f"{sorted(CHURN_PRESETS)}"
                )
            profile = CHURN_PRESETS[token]
            continue
        key, _, value = token.partition("=")
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown churn spec key {key!r}; choose from "
                f"{sorted(_SPEC_KEYS)}"
            )
        field_name, cast = _SPEC_KEYS[key]
        overrides[field_name] = cast(value)
    return profile.with_overrides(**overrides) if overrides else profile

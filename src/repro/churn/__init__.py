"""Open-population dynamics: seeded device churn for the HFL engine.

The churn layer makes the device population *open*: a seeded
:class:`ChurnProcess` (arrival/departure event stream drawn from named
``SeedSequenceFactory`` streams, so every executor backend stays
bit-identical) maintains the enrollment mask the trainer intersects
with the mobility trace's member sets.  Paired with the trainer's
bounded-staleness round pipeline (late uploads parked and admitted
with an age-discounted weight — see DESIGN.md §13), it turns the
step-synchronous reproduction into one that survives devices arriving,
leaving and uploading late.
"""

from repro.churn.process import ChurnProcess, ChurnStep, make_churn_process
from repro.churn.profile import (
    CHURN_PRESETS,
    ChurnProfile,
    resolve_churn_profile,
)

__all__ = [
    "CHURN_PRESETS",
    "ChurnProcess",
    "ChurnProfile",
    "ChurnStep",
    "make_churn_process",
    "resolve_churn_profile",
]

"""Low-level profiling site hooks.

This module is the dependency-free rendezvous point between the
instrumented hot paths (``repro.mobility``, ``repro.hfl.edge``, the
executors) and the continuous profiler in :mod:`repro.obs.profiler`.
The low layers cannot import ``repro.obs`` directly — the obs package
sits *above* ``repro.hfl`` (its telemetry bridge imports the trainer's
telemetry types) — so, like :mod:`repro.hotpath`, the switch lives in a
tiny stdlib-only module near the bottom of the import graph.

Instrumented call sites do::

    from repro.prof import profile_site

    with profile_site("mobility", "membership_index", edge=edge_id):
        ... hot work ...

When no profiler is installed (the default), :func:`profile_site`
returns a shared no-op context manager: the cost is one global read and
one function call per site entry, which is noise next to the O(members)
work the sites wrap.  When a profiler is active the site records wall
and CPU seconds into it, tagged with the profiler's current phase.

The sink installed via :func:`set_profiler` is duck-typed: anything
with a ``record_site(subsystem, site, wall, cpu, attrs)`` method works.
Profiler state is process-local by design — a forked or spawned worker
starts with whatever was captured at fork time, so worker-side code
must treat the hooks as optional (and
:class:`repro.obs.profiler.Profiler` drops its buffers on pickle).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "profile_site",
    "profiler_active",
    "set_profiler",
    "get_profiler",
]

_PROFILER: Optional[object] = None


def set_profiler(sink: Optional[object]) -> None:
    """Install (or, with ``None``, remove) the process-global profiler."""
    global _PROFILER
    _PROFILER = sink


def get_profiler() -> Optional[object]:
    """The currently installed profiler sink, or ``None``."""
    return _PROFILER


def profiler_active() -> bool:
    """True when a profiler sink is installed in this process."""
    return _PROFILER is not None


class _NullSite:
    """Shared zero-state no-op context manager for inactive sites."""

    __slots__ = ()

    def __enter__(self) -> "_NullSite":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SITE = _NullSite()


@contextmanager
def _timed_site(sink: object, subsystem: str, site: str, attrs: dict) -> Iterator[None]:
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield
    finally:
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        sink.record_site(subsystem, site, wall, cpu, attrs)


def profile_site(subsystem: str, site: str, **attrs: object):
    """Time a hot-path site under the active profiler, if any.

    Returns a context manager.  ``attrs`` may carry per-call attribution
    labels (``edge=...``, ``step=...``); they are ignored when no
    profiler is installed.
    """
    sink = _PROFILER
    if sink is None:
        return _NULL_SITE
    return _timed_site(sink, subsystem, site, attrs)

"""MACH-P: MACH with oracle training experiences (§IV-A.3).

The paper's strongest comparator assumes "the training experiences for
each device in every time step are known, i.e., without online
experience updating".  MACH-P therefore skips the UCB estimator and
feeds the *true* current squared gradient norm of every device in the
edge (probed by the trainer each step) straight into the Algorithm-3
edge sampling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.edge_sampling import EdgeSamplingConfig, edge_strategy
from repro.sampling.base import DeviceProfile, Sampler


class MACHOracleSampler(Sampler):
    """Edge sampling on ground-truth gradient norms (no UCB estimation)."""

    name = "mach_p"
    requires_oracle = True

    def __init__(self, config: Optional[EdgeSamplingConfig] = None) -> None:
        self.config = config if config is not None else EdgeSamplingConfig()
        self._true_g_sq: Optional[np.ndarray] = None

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        if not profiles:
            raise ValueError("profiles is empty")
        num_devices = max(p.device_id for p in profiles) + 1
        self._true_g_sq = np.full(num_devices, np.inf)

    def observe_oracle(self, t: int, device: int, grad_sq_norm: float) -> None:
        if self._true_g_sq is None:
            raise RuntimeError("setup() must be called before observations")
        if grad_sq_norm < 0:
            raise ValueError("squared gradient norm must be non-negative")
        self._true_g_sq[device] = float(grad_sq_norm)

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        if len(device_indices) == 0:
            return np.zeros(0)
        if self._true_g_sq is None:
            raise RuntimeError("setup() must be called before probabilities()")
        estimates = self._true_g_sq[np.asarray(device_indices, dtype=int)]
        return edge_strategy(estimates, capacity, self.config, t=t)

    def on_device_joined(self, t: int, device: int) -> None:
        """Churn arrivals need no warm start here: the oracle probe
        refreshes every member's true norm at the next plan phase, so
        an arrival is fully scored one step after joining."""

    def audit_components(self, device_indices) -> dict:
        """Oracle decomposition: the true norms are the whole score.

        MACH-P has no estimator — ``empirical`` equals the consumed
        estimate and the exploration ``bonus`` is identically zero.
        """
        if self._true_g_sq is None:
            raise RuntimeError("setup() must be called before audit_components()")
        values = [
            float(self._true_g_sq[int(m)]) for m in device_indices
        ]
        return {
            "empirical": values,
            "bonus": [0.0] * len(values),
            "estimate": values,
        }

    def state_dict(self) -> dict:
        if self._true_g_sq is None:
            return {}
        return {"true_g_sq": self._true_g_sq.tolist()}

    def load_state_dict(self, state: dict) -> None:
        if self._true_g_sq is None:
            raise RuntimeError("setup() must be called before restoring state")
        self._true_g_sq = np.asarray(state["true_g_sq"], dtype=float)

"""Uniform device sampling — the FedAvg-style baseline [22]."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler


class UniformSampler(Sampler):
    """Every device in the edge gets the same probability ``K_n / |M^t_n|``.

    This is the sampling scheme analysed by Li et al. [22] and the
    behaviour of vanilla FedAvg under partial participation.  It
    satisfies Eq. (3) with equality whenever the edge holds at least
    ``K_n`` devices.
    """

    name = "uniform"

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        n = len(device_indices)
        if n == 0:
            return np.zeros(0)
        return np.full(n, min(1.0, capacity / n))

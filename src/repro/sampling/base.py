"""Sampler interface and shared probability helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.probability import capped_proportional_probabilities

__all__ = ["DeviceProfile", "Sampler", "capped_proportional_probabilities"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static, privacy-compatible metadata a sampler may use.

    ``class_distribution`` is the device's label distribution — the
    class-balance baseline assumes it is reported once at enrolment,
    exactly as in Fed-CBS [38].
    """

    device_id: int
    num_samples: int
    class_distribution: np.ndarray


class Sampler(ABC):
    """Base class for edge device-sampling strategies.

    Life cycle, driven by :class:`repro.hfl.trainer.HFLTrainer`:

    1. :meth:`setup` once, with the device population metadata;
    2. each time step, per edge: :meth:`probabilities` →  the engine
       draws Bernoulli participation from the returned ``q`` vector;
    3. after each participating device finishes local updating:
       :meth:`observe_participation` with its per-local-step squared
       gradient norms (the training experience of Eq. (14)); a device
       that was sampled but whose upload was lost to a fault instead
       triggers :meth:`observe_failure`;
    4. samplers with ``requires_oracle = True`` additionally receive
       :meth:`observe_oracle` for *every* device in the edge each step
       (the MACH-P "experiences known at every step" assumption);
    5. at every edge-to-cloud communication step: :meth:`on_global_sync`.

    Checkpointing: samplers that learn across steps expose their mutable
    state through :meth:`state_dict` / :meth:`load_state_dict` (JSON-
    compatible dicts) so a killed run can resume bit-identically.
    Stateless samplers inherit the empty-dict defaults.
    """

    #: Human-readable identifier used in experiment reports.
    name: str = "sampler"

    #: When True, the trainer computes a probe gradient norm for every
    #: device in every edge each step and feeds it to observe_oracle.
    requires_oracle: bool = False

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        """Receive the device population before training starts."""

    @abstractmethod
    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        """Sampling probabilities ``q^t_{m,n}`` for the devices of one edge.

        Must return a vector aligned with ``device_indices`` whose
        entries lie in [0, 1] and sum to at most ``capacity`` (Eq. (3)).
        """

    def observe_participation(
        self,
        t: int,
        device: int,
        grad_sq_norms: Sequence[float],
        mean_loss: float,
    ) -> None:
        """Feedback after a sampled device completed its I local updates."""

    def observe_failure(self, t: int, device: int) -> None:
        """Feedback when a sampled device's upload was lost to a fault.

        The device consumed a sampling slot but contributed no gradient
        experience; reliability-aware samplers (MACH) use this to learn
        which devices fail.  Default: ignore.
        """

    def observe_oracle(self, t: int, device: int, grad_sq_norm: float) -> None:
        """Oracle feedback (only called when ``requires_oracle``)."""

    def on_device_joined(self, t: int, device: int) -> None:
        """A device enrolled at step ``t`` (open-population churn).

        Called by the trainer before the plan phase when the churn
        process admits a device (see :mod:`repro.churn`).  Samplers
        that keep per-device learned state can warm-start the arrival
        here — MACH seeds never-tried arrivals with prior-mean UCB
        state.  Default: ignore (stateless samplers need nothing; the
        trainer already restricts member sets to the active mask).
        """

    def on_device_left(self, t: int, device: int) -> None:
        """A device de-enrolled at step ``t`` (open-population churn).

        The trainer stops offering the device in member sets while it
        is gone; samplers may additionally decay or freeze its state.
        Default: ignore — keeping learned state means a returning
        device resumes from what the sampler knew about it.
        """

    def audit_components(
        self, device_indices: Sequence[int]
    ) -> Optional[dict]:
        """Per-candidate score decomposition for the decision audit trail.

        UCB-style samplers return aligned ``{"empirical": [...],
        "bonus": [...], "estimate": [...]}`` lists explaining the scores
        behind the most recent :meth:`probabilities` call (see
        :mod:`repro.obs.audit`).  Must be read-only — the trail is an
        observer, never part of the sampling computation.  Default:
        ``None`` (the sampler has no score decomposition to expose).
        """
        return None

    def on_global_sync(self, t: int) -> None:
        """Called at every edge-to-cloud communication step (t mod Tg == 0)."""

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the mutable learned state."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (after :meth:`setup`)."""
        if state:
            raise ValueError(
                f"sampler {self.name!r} keeps no state but was given "
                f"keys {sorted(state)}"
            )

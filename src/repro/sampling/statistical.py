"""Statistical-utility sampling, after Oort [39] and Cho et al. [14].

Devices whose recent training signals indicate higher statistical
utility (larger local loss / gradient contribution) are preferred.  We
track an exponential moving average of each device's observed mean
local loss — Oort's statistical utility reduces to exactly this under
equal local dataset sizes — and sample proportionally to it within the
edge.  Devices never observed yet receive the population-mean utility,
giving a mild implicit exploration without MACH's explicit UCB bonus.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sampling.base import DeviceProfile, Sampler, capped_proportional_probabilities
from repro.utils.validation import check_fraction


class StatisticalSampler(Sampler):
    """EMA-of-loss proportional sampling (exploitation-only baseline).

    Parameters
    ----------
    decay:
        EMA decay for the utility estimate; 0 keeps only the newest
        observation, values near 1 average over a long history.
    """

    name = "statistical"

    def __init__(self, decay: float = 0.5) -> None:
        check_fraction("decay", decay)
        self.decay = decay
        self._utility: Optional[np.ndarray] = None
        self._seen: Optional[np.ndarray] = None

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        if not profiles:
            raise ValueError("profiles is empty")
        size = max(p.device_id for p in profiles) + 1
        self._utility = np.zeros(size)
        self._seen = np.zeros(size, dtype=bool)

    def _mean_seen_utility(self) -> float:
        if self._seen is None or not self._seen.any():
            return 1.0
        return float(self._utility[self._seen].mean())

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        if len(device_indices) == 0:
            return np.zeros(0)
        if self._utility is None:
            raise RuntimeError("setup() must be called before probabilities()")
        idx = np.asarray(device_indices, dtype=int)
        fallback = self._mean_seen_utility()
        weights = np.where(self._seen[idx], self._utility[idx], fallback)
        if weights.sum() <= 0:
            weights = np.ones(len(idx))
        return capped_proportional_probabilities(weights, capacity)

    def observe_participation(
        self,
        t: int,
        device: int,
        grad_sq_norms: Sequence[float],
        mean_loss: float,
    ) -> None:
        if self._utility is None:
            raise RuntimeError("setup() must be called before observations")
        utility = max(float(mean_loss), 0.0)
        if self._seen[device]:
            self._utility[device] = (
                self.decay * self._utility[device] + (1 - self.decay) * utility
            )
        else:
            self._utility[device] = utility
            self._seen[device] = True

    def state_dict(self) -> dict:
        if self._utility is None:
            return {}
        return {
            "utility": self._utility.tolist(),
            "seen": self._seen.tolist(),
        }

    def load_state_dict(self, state: dict) -> None:
        if self._utility is None:
            raise RuntimeError("setup() must be called before restoring state")
        self._utility = np.asarray(state["utility"], dtype=float)
        self._seen = np.asarray(state["seen"], dtype=bool)

"""Power-of-choice biased client selection, after Cho et al. [14].

Power-of-choice (``π_pow-d``): sample a candidate set of ``d`` clients
uniformly, then select the ``K`` candidates with the largest current
local loss.  Cho et al. prove this biased selection speeds early
convergence at the price of a (bounded) bias in the limit point.

Our engine is probability-based (independent Bernoulli participation
under ``E[Σ 1] ≤ K_n``), so the selection is expressed as a probability
vector: the top-``⌊K⌋`` loss-ranked devices of the candidate pool get
probability 1, the marginal device gets the fractional remainder, and
everyone else 0.  With ``d`` below the edge population, the candidate
pool is drawn fresh each step, injecting the uniform exploration the
original algorithm gets from candidate sampling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sampling.base import DeviceProfile, Sampler
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class PowerOfChoiceSampler(Sampler):
    """Greedy top-K-by-loss selection over a random candidate pool.

    Parameters
    ----------
    candidate_fraction:
        Pool size ``d`` as a fraction of the edge's current population
        (1.0 ranks every member — the strongest, most biased variant).
    rng:
        Randomness for candidate-pool draws.
    """

    name = "power_of_choice"

    def __init__(self, candidate_fraction: float = 1.0, rng: RngLike = None) -> None:
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError(
                f"candidate_fraction must be in (0, 1], got {candidate_fraction}"
            )
        self.candidate_fraction = candidate_fraction
        self._rng = as_generator(rng)
        self._loss: Optional[np.ndarray] = None
        self._seen: Optional[np.ndarray] = None

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        if not profiles:
            raise ValueError("profiles is empty")
        size = max(p.device_id for p in profiles) + 1
        self._loss = np.zeros(size)
        self._seen = np.zeros(size, dtype=bool)

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        if self._loss is None:
            raise RuntimeError("setup() must be called before probabilities()")
        n = len(device_indices)
        if n == 0:
            return np.zeros(0)
        check_positive("capacity", capacity)
        idx = np.asarray(device_indices, dtype=int)

        pool_size = max(1, int(round(self.candidate_fraction * n)))
        pool = self._rng.choice(n, size=pool_size, replace=False)

        # Rank candidates by loss; unseen devices get +inf so they are
        # tried first (matching the cold-start behaviour of the paper's
        # implementation, which initializes losses optimistically).
        losses = np.where(self._seen[idx[pool]], self._loss[idx[pool]], np.inf)
        order = pool[np.argsort(-losses, kind="stable")]

        budget = min(float(capacity), float(n))
        q = np.zeros(n)
        full = int(budget)
        q[order[:full]] = 1.0
        if full < len(order) and budget - full > 1e-12:
            q[order[full]] = budget - full
        return q

    def observe_participation(
        self, t: int, device: int, grad_sq_norms, mean_loss: float
    ) -> None:
        if self._loss is None:
            raise RuntimeError("setup() must be called before observations")
        self._loss[device] = max(float(mean_loss), 0.0)
        self._seen[device] = True

"""Class-balance sampling, after Fed-CBS (Zhang et al., ICML 2023) [38].

Fed-CBS actively selects client groups whose combined dataset is as
class-balanced as possible.  We implement the probabilistic form used
in the paper's comparison: each device's weight measures how much its
data complements the globally under-represented classes, so devices
holding rare classes are sampled more often and the *expected* selected
group is class-balanced.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sampling.base import DeviceProfile, Sampler, capped_proportional_probabilities


class ClassBalanceSampler(Sampler):
    """Sample devices in proportion to their rare-class content.

    With global class frequencies ``p`` (estimated from the enrolled
    device profiles) and device class distribution ``d_m``, the weight
    is ``w_m = Σ_c d_m[c] / p[c]`` — the expected inverse global
    frequency of a sample drawn from the device.  A device holding only
    the rarest class maximizes the weight; one mirroring the global
    distribution gets weight ``num_classes``.  ``temperature`` sharpens
    (``> 1``) or flattens (``< 1``) the preference.
    """

    name = "class_balance"

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be > 0, got {temperature}")
        self.temperature = temperature
        self._weights: Optional[np.ndarray] = None

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        if not profiles:
            raise ValueError("profiles is empty")
        dists = np.stack([p.class_distribution for p in profiles])
        sizes = np.array([p.num_samples for p in profiles], dtype=float)
        global_freq = (dists * sizes[:, None]).sum(axis=0)
        global_freq = global_freq / global_freq.sum()
        inverse = 1.0 / np.clip(global_freq, 1e-6, None)
        raw = dists @ inverse
        self._weights = np.zeros(max(p.device_id for p in profiles) + 1)
        for profile, weight in zip(profiles, raw):
            self._weights[profile.device_id] = weight**self.temperature

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        if len(device_indices) == 0:
            return np.zeros(0)
        if self._weights is None:
            raise RuntimeError("setup() must be called before probabilities()")
        weights = self._weights[np.asarray(device_indices, dtype=int)]
        return capped_proportional_probabilities(weights, capacity)

"""Oort-style guided participant selection, after Lai et al. [39].

Oort scores each client with a *statistical utility* — the root mean
squared training loss over the client's samples, scaled by its data
volume — multiplied by a *system utility* that penalizes slow clients,
and adds a staleness-driven exploration term so long-unseen clients are
retried.  We implement the full scoring pipeline:

.. math::
    U_m = \\underbrace{|D_m| \\sqrt{\\tfrac{1}{|D_m|}\\sum \\ell^2}}_{
    statistical} \\times \\underbrace{(T_{ref} / t_m)^{\\alpha·1[t_m >
    T_{ref}]}}_{system} + \\underbrace{c \\sqrt{\\log t / n_m}}_{
    staleness}

Per-device wall-clock times ``t_m`` are simulated (the paper's testbed
heterogeneity is unavailable) from a log-normal speed distribution —
see DESIGN.md §4 on substitutions.  Scores are converted to Eq.-(3)-
feasible probabilities with the shared water-filling helper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sampling.base import DeviceProfile, Sampler
from repro.utils.probability import capped_proportional_probabilities
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class OortSampler(Sampler):
    """Statistical + system utility selection with staleness exploration.

    Parameters
    ----------
    round_penalty:
        Oort's α — exponent of the system-speed penalty for devices
        slower than the reference round time.
    exploration_scale:
        The ``c`` coefficient of the staleness bonus.
    speed_sigma:
        Log-normal σ of the simulated per-device round times (0 makes
        all devices equally fast, disabling the system term).
    """

    name = "oort"

    def __init__(
        self,
        round_penalty: float = 2.0,
        exploration_scale: float = 1.0,
        speed_sigma: float = 0.5,
        rng: RngLike = None,
    ) -> None:
        if round_penalty < 0:
            raise ValueError(f"round_penalty must be >= 0, got {round_penalty}")
        if exploration_scale < 0:
            raise ValueError(
                f"exploration_scale must be >= 0, got {exploration_scale}"
            )
        if speed_sigma < 0:
            raise ValueError(f"speed_sigma must be >= 0, got {speed_sigma}")
        self.round_penalty = round_penalty
        self.exploration_scale = exploration_scale
        self.speed_sigma = speed_sigma
        self._rng = as_generator(rng)
        self._stat_utility: Optional[np.ndarray] = None
        self._round_time: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self._sizes: Optional[np.ndarray] = None

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        if not profiles:
            raise ValueError("profiles is empty")
        size = max(p.device_id for p in profiles) + 1
        self._stat_utility = np.zeros(size)
        self._counts = np.zeros(size, dtype=int)
        self._sizes = np.ones(size)
        for p in profiles:
            self._sizes[p.device_id] = p.num_samples
        # Simulated system heterogeneity: per-device round times.
        self._round_time = self._rng.lognormal(
            mean=0.0, sigma=self.speed_sigma, size=size
        )

    def _system_utility(self, idx: np.ndarray) -> np.ndarray:
        reference = float(np.median(self._round_time))
        times = self._round_time[idx]
        penalty = np.where(
            times > reference,
            (reference / times) ** self.round_penalty,
            1.0,
        )
        return penalty

    def probabilities(
        self, t: int, edge: int, device_indices: np.ndarray, capacity: float
    ) -> np.ndarray:
        if self._stat_utility is None:
            raise RuntimeError("setup() must be called before probabilities()")
        n = len(device_indices)
        if n == 0:
            return np.zeros(0)
        check_positive("capacity", capacity)
        idx = np.asarray(device_indices, dtype=int)

        seen = self._counts[idx] > 0
        mean_seen = (
            float(self._stat_utility[self._counts > 0].mean())
            if (self._counts > 0).any()
            else 1.0
        )
        statistical = np.where(seen, self._stat_utility[idx], mean_seen)
        exploit = statistical * self._system_utility(idx)
        with np.errstate(divide="ignore"):
            bonus = self.exploration_scale * np.sqrt(
                np.log(t + 1) / np.maximum(self._counts[idx], 1)
            )
        bonus = np.where(seen, bonus, bonus.max(initial=1.0) * 2 + 1.0)
        return capped_proportional_probabilities(exploit + bonus, capacity)

    def observe_participation(
        self, t: int, device: int, grad_sq_norms, mean_loss: float
    ) -> None:
        if self._stat_utility is None:
            raise RuntimeError("setup() must be called before observations")
        # RMS-loss statistical utility with |D_m| scaling; the mean loss
        # over the round stands in for the per-sample loss vector.
        rms = max(float(mean_loss), 0.0)
        self._stat_utility[device] = self._sizes[device] ** 0.5 * rms
        self._counts[device] += 1

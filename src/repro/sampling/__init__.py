"""Device sampling strategies.

Each strategy maps the devices currently inside an edge (``M^t_n``) to
per-device sampling probabilities ``q^t_{m,n}`` subject to the edge
channel capacity ``E[Σ 1^t_{m,n}] ≤ K_n`` (Eq. (3)).  The paper's
benchmarks (§IV-A.3):

- uniform sampling [22]                  → :class:`UniformSampler`
- class-balance sampling [38]            → :class:`ClassBalanceSampler`
- statistical sampling [14], [39]        → :class:`StatisticalSampler`
- MACH-P (oracle experiences)            → :class:`MACHOracleSampler`
- MACH (the paper's contribution)        → :class:`repro.core.MACHSampler`
"""

from repro.sampling.base import (
    DeviceProfile,
    Sampler,
    capped_proportional_probabilities,
)
from repro.sampling.uniform import UniformSampler
from repro.sampling.class_balance import ClassBalanceSampler
from repro.sampling.statistical import StatisticalSampler
from repro.sampling.mach_oracle import MACHOracleSampler
from repro.sampling.oort import OortSampler
from repro.sampling.power_of_choice import PowerOfChoiceSampler

__all__ = [
    "DeviceProfile",
    "Sampler",
    "capped_proportional_probabilities",
    "UniformSampler",
    "ClassBalanceSampler",
    "StatisticalSampler",
    "MACHOracleSampler",
    "OortSampler",
    "PowerOfChoiceSampler",
]

"""Topology and aggregation-strategy abstractions (DESIGN.md §12).

The paper fixes one communication pattern: a cloud→edge→device tree
whose sync step is Eq. (6) member-count-weighted aggregation followed
by a broadcast.  This module factors that pattern into two orthogonal
abstractions so the related scenarios in PAPERS.md (cluster FL with
inter-cluster model mixing, decentralized gossip FL) become config
choices sharing the samplers, fault model and obs stack:

- a :class:`Topology` answers *who talks to whom* at a sync step: it
  turns ``(step, member counts)`` into a :class:`SyncPlan` — peer
  groups over the edge set, which group's aggregate each edge
  receives, and an optional inter-group mixing matrix;
- an :class:`AggregationStrategy` answers *how the exchanged models
  combine*: it consumes the plan plus the per-edge uploads and installs
  the new edge models (and the cloud/virtual-global model used for
  evaluation and checkpointing).

Determinism contract: a topology may draw randomness (gossip neighbor
selection) only from named ``(step, edge)`` streams of the engine's
:class:`~repro.utils.rng.SeedSequenceFactory` — never from a stateful
cursor — so sync plans depend only on ``(master_seed, step)``.  That is
what keeps every topology bit-identical across executor backends and
exactly replayable under checkpoint kill/resume.

This module is deliberately free of ``repro.hfl`` imports: strategies
receive the cloud and edge objects as duck-typed arguments, so the
dependency order stays ``hfl → topology`` (the trainer builds its
topology pair from config).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedSequenceFactory

#: Selectable topologies (who talks to whom each sync step).
TOPOLOGY_KINDS: Tuple[str, ...] = ("hierarchical", "clustered", "gossip")

#: Selectable sync-level aggregation strategies.
AGGREGATION_STRATEGIES: Tuple[str, ...] = ("ipw", "cluster_mix", "gossip_avg")

#: The strategy each topology uses when none is requested explicitly.
DEFAULT_STRATEGY: Dict[str, str] = {
    "hierarchical": "ipw",
    "clustered": "cluster_mix",
    "gossip": "gossip_avg",
}


@dataclass(frozen=True)
class SyncPlan:
    """One sync step's communication structure over the edge set.

    Attributes
    ----------
    step:
        The time step the plan was built for.
    groups:
        Peer groups of edge indices.  Hierarchical: one group holding
        every edge (the cloud sees all uploads).  Clustered: one group
        per cluster.  Gossip: one group per edge — the edge itself plus
        its drawn neighbors.
    group_of:
        ``group_of[n]`` is the index of the group whose aggregate edge
        ``n`` receives.
    mixing:
        Optional row-stochastic ``(num_groups, num_groups)`` matrix of
        *inter-group* exchange weights (the clustered topology's
        neighbor-cluster structure); ``None`` when groups do not
        exchange with each other.
    """

    step: int
    groups: Tuple[Tuple[int, ...], ...]
    group_of: Tuple[int, ...]
    mixing: Optional[np.ndarray] = None


class Topology(ABC):
    """Who talks to whom at each sync step.

    A topology is bound once to the run's edge count and seed factory
    (:meth:`bind`) and then queried per sync step for a
    :class:`SyncPlan`.  Topologies must be stateless between sync steps
    apart from what :meth:`state_dict` captures, and any randomness must
    come from named streams of the bound seed factory.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether a central coordinator exists (the hierarchical cloud).
    has_cloud: bool = False

    def __init__(self) -> None:
        self.num_edges: Optional[int] = None
        self._seeds: Optional[SeedSequenceFactory] = None

    def bind(self, num_edges: int, seeds: SeedSequenceFactory) -> None:
        """Attach the run's edge count and seed factory."""
        if num_edges <= 0:
            raise ValueError(f"num_edges must be positive, got {num_edges}")
        self.num_edges = int(num_edges)
        self._seeds = seeds
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook run after :meth:`bind` (resolve derived shape)."""

    def _require_bound(self) -> int:
        if self.num_edges is None:
            raise RuntimeError(f"{self.name} topology is not bound to a run")
        return self.num_edges

    @abstractmethod
    def sync_plan(self, t: int, counts: np.ndarray) -> SyncPlan:
        """The communication structure of sync step ``t``."""

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Resumable topology state (fingerprint + subclass extras).

        The built-in topologies derive everything from ``(config,
        master_seed, step)``, so the dict is a fingerprint rather than a
        mutable-state snapshot — but the hook exists so stateful
        topologies (e.g. a learned overlay) checkpoint exactly.
        """
        return {"name": self.name, "num_edges": self._require_bound()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output; empty dicts (legacy
        checkpoints written before the topology layer) are accepted."""
        if not state:
            return
        if state.get("name", self.name) != self.name:
            raise ValueError(
                f"checkpoint topology state is for {state['name']!r}, "
                f"this run uses {self.name!r}"
            )
        num_edges = state.get("num_edges")
        if num_edges is not None and int(num_edges) != self._require_bound():
            raise ValueError(
                f"checkpoint topology state covers {num_edges} edges, "
                f"this run has {self.num_edges}"
            )

    def describe(self) -> Dict[str, Any]:
        """Human/JSON-facing parameter summary (manifests, benches)."""
        return {"topology": self.name}


class AggregationStrategy(ABC):
    """How exchanged models combine at a sync step.

    ``apply`` consumes the topology's :class:`SyncPlan` plus the
    per-edge uploads and installs the new edge models; it also keeps
    ``cloud.model`` equal to the run's *global* model — the real cloud
    model under the hierarchical topology, the member-count-weighted
    virtual global elsewhere — because evaluation and checkpointing
    read it.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Topology names this strategy can run on.
    compatible_topologies: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.topology: Optional[Topology] = None

    def bind(self, topology: Topology) -> None:
        """Attach the topology, validating compatibility."""
        if topology.name not in self.compatible_topologies:
            raise ValueError(
                f"aggregation strategy {self.name!r} does not support the "
                f"{topology.name!r} topology (supported: "
                f"{', '.join(self.compatible_topologies)})"
            )
        self.topology = topology

    @abstractmethod
    def apply(
        self,
        plan: SyncPlan,
        uploads: Sequence[np.ndarray],
        counts: np.ndarray,
        cloud,
        edges: Sequence,
    ) -> None:
        """Install the post-sync edge models and the global model."""

    def virtual_global(self, counts: np.ndarray, edges: Sequence, cloud) -> np.ndarray:
        """The evaluation-time global model between syncs.

        Default: the member-count-weighted average of the current edge
        models — bit-identical to the pre-topology trainer's
        ``_virtual_global`` (equals the cloud model right after a
        hierarchical sync step).
        """
        total = counts.sum()
        aggregate = np.zeros_like(cloud.model)
        for edge, count in zip(edges, counts):
            if count > 0:
                aggregate += (count / total) * edge.model
        return aggregate

    def describe(self) -> Dict[str, Any]:
        """Human/JSON-facing parameter summary (manifests, benches)."""
        return {"aggregation": self.name}


def check_sync_inputs(
    strategy: str, uploads: Sequence[np.ndarray], counts: np.ndarray
) -> np.ndarray:
    """Shared guard for sync-step inputs.

    Raises an explicit error on an empty edge list, a misaligned count
    vector, negative counts, or an all-zero population — the conditions
    that would otherwise surface as a silent ``0/0`` NaN divide deep in
    the weighted averages.
    """
    if len(uploads) == 0:
        raise ValueError(f"{strategy}: cannot aggregate an empty edge list")
    counts = np.asarray(counts, dtype=float)
    if counts.shape != (len(uploads),):
        raise ValueError(
            f"{strategy}: member_counts must align with uploads: "
            f"{counts.shape} vs {len(uploads)}"
        )
    if np.any(counts < 0):
        raise ValueError(f"{strategy}: member counts must be non-negative")
    if counts.sum() == 0:
        raise ValueError(
            f"{strategy}: no devices in the system at this step "
            "(all member counts are zero)"
        )
    return counts


def group_counts(plan: SyncPlan, counts: np.ndarray) -> np.ndarray:
    """Total member count per plan group, shape ``(num_groups,)``."""
    counts = np.asarray(counts, dtype=float)
    return np.array(
        [counts[list(group)].sum() for group in plan.groups], dtype=float
    )


def weighted_group_average(
    group: Tuple[int, ...],
    uploads: Sequence[np.ndarray],
    counts: np.ndarray,
) -> np.ndarray:
    """Member-count-weighted average of one group's uploads.

    A group whose members currently coordinate no devices (every count
    zero) falls back to the unweighted mean of its uploads — the edges
    still exist and must receive *some* model, and dropping to the mean
    degrades gracefully instead of dividing by zero.
    """
    total = float(counts[list(group)].sum())
    aggregate = np.zeros_like(uploads[group[0]])
    if total > 0:
        for k in group:
            if counts[k] > 0:
                aggregate += (counts[k] / total) * uploads[k]
    else:
        share = 1.0 / len(group)
        for k in group:
            aggregate += share * uploads[k]
    return aggregate

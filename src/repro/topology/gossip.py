"""Cloudless gossip topology with seeded neighbor exchange.

The decentralized, mobility-assisted FL neighbor of the paper
(arXiv:2512.24694): there is no cloud at all — at each sync step every
edge exchanges models with a few peers and averages what it received.
Over repeated rounds the pairwise averages diffuse every edge's
progress through the whole graph (synchronous push–pull gossip).

Neighbor selection is *seeded*: edge ``n``'s peers at sync step ``t``
are drawn from the named stream ``(master_seed, t, n, "gossip")`` of
the engine's seed factory.  Plans therefore depend only on the master
seed and the step — never on executor backend, worker scheduling or a
stateful RNG cursor — which is exactly what makes gossip runs
bit-reproducible and checkpoint kill/resume exact.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.topology.base import (
    AggregationStrategy,
    SyncPlan,
    Topology,
    check_sync_inputs,
)
from repro.utils.validation import check_finite, check_positive


class GossipTopology(Topology):
    """Each edge gossips with ``degree`` seeded peers per sync step."""

    name = "gossip"
    has_cloud = False

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        check_positive("gossip degree", degree)
        self.degree = int(degree)

    def _neighbors(self, t: int, n: int) -> Tuple[int, ...]:
        """Edge ``n``'s drawn peers at sync step ``t`` (sorted, no self)."""
        num_edges = self._require_bound()
        k = min(self.degree, num_edges - 1)
        if k == 0:
            return ()
        rng = self._seeds.round_generator(t, n, "gossip")
        # Draw from [0, E-1) and shift past self: uniform over peers
        # without rejection, so the stream consumption is fixed-size.
        drawn = rng.choice(num_edges - 1, size=k, replace=False)
        drawn = drawn + (drawn >= n)
        return tuple(int(p) for p in np.sort(drawn))

    def sync_plan(self, t: int, counts: np.ndarray) -> SyncPlan:
        num_edges = self._require_bound()
        groups = tuple(
            (n,) + self._neighbors(t, n) for n in range(num_edges)
        )
        return SyncPlan(
            step=t, groups=groups, group_of=tuple(range(num_edges))
        )

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["degree"] = self.degree
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        if state and int(state.get("degree", self.degree)) != self.degree:
            raise ValueError(
                f"checkpoint topology state has gossip degree "
                f"{state['degree']}, this run has {self.degree}"
            )

    def describe(self) -> Dict[str, Any]:
        return {"topology": self.name, "degree": self.degree}


class GossipAveraging(AggregationStrategy):
    """Uniform averaging over each edge's neighborhood uploads.

    Edge ``n``'s new model is the plain mean of the flat parameter
    buffers uploaded by its plan group (itself plus its drawn peers) —
    the classic synchronous gossip-averaging step, computed for all
    edges from the *pre-sync* uploads so exchange order cannot matter.
    The global (evaluation) model is the member-count-weighted average
    of the post-gossip edge models; ``cloud.model`` tracks it even
    though no cloud participates, because evaluation and checkpointing
    read it.

    Also runs on the clustered topology, where a "neighborhood" is the
    edge's whole cluster — i.e. unweighted within-cluster averaging
    with no inter-cluster exchange.
    """

    name = "gossip_avg"
    compatible_topologies = ("gossip", "clustered")

    def apply(
        self,
        plan: SyncPlan,
        uploads: Sequence[np.ndarray],
        counts: np.ndarray,
        cloud,
        edges: Sequence,
    ) -> None:
        counts = check_sync_inputs(self.name, uploads, counts)
        new_models = []
        for n in range(len(edges)):
            group = plan.groups[plan.group_of[n]]
            share = 1.0 / len(group)
            aggregate = np.zeros_like(uploads[n])
            for k in group:
                aggregate += share * uploads[k]
            new_models.append(aggregate)
        for edge, model in zip(edges, new_models):
            edge.set_model(model)
        total = counts.sum()
        aggregate = np.zeros_like(cloud.model)
        for model, count in zip(new_models, counts):
            if count > 0:
                aggregate += (count / total) * model
        cloud.model = aggregate
        check_finite("gossip global model", cloud.model)

"""Runnable pre-topology reference twin of the trainer's sync step.

The topology refactor replaced :meth:`HFLTrainer._sync_to_cloud` and
:meth:`HFLTrainer._virtual_global` with calls through the pluggable
:class:`~repro.topology.Topology` / :class:`~repro.topology
.AggregationStrategy` pair.  The default pair must be **bit-identical**
to the code it replaced — and, following the :mod:`repro.hotpath`
discipline, that claim stays checkable forever: this module keeps the
*verbatim* pre-refactor implementations alive as a trainer subclass.
``tests/topology/test_equivalence.py`` and ``benchmarks/
bench_topology.py --smoke`` run the same fixed-seed workload through
both trainers on every executor backend and assert the histories match
exactly.

Kept outside ``repro.topology.__init__`` so importing the topology
registry never drags in the trainer stack (the trainer itself imports
``repro.topology``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hfl.trainer import HFLTrainer, TrainingResult


class ReferenceTwinTrainer(HFLTrainer):
    """The trainer with its pre-topology sync step, verbatim.

    Only meaningful with the default ``hierarchical`` + ``ipw``
    configuration (the code below *is* that pair, inlined); the
    constructor rejects anything else so a misconfigured twin cannot
    silently compare apples to oranges.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.config.topology != "hierarchical":
            raise ValueError(
                "the reference twin implements the hierarchical topology "
                f"only, config selects {self.config.topology!r}"
            )

    def _sync_to_cloud(self, t: int) -> None:
        counts = self.trace.counts_at(t)
        if self.fault_model is None:
            self.cloud.aggregate(self.edges, counts)
        else:
            uploads: List[np.ndarray] = []
            for n, edge in enumerate(self.edges):
                outcome = self.fault_model.sync_outcome(t, n)
                if outcome.success:
                    self._last_synced[n] = edge.model.copy()
                    uploads.append(edge.model)
                else:
                    uploads.append(self._last_synced[n])
                if self.telemetry is not None and (
                    outcome.failed_attempts > 0 or not outcome.success
                ):
                    self.telemetry.record_sync_attempt(
                        t,
                        n,
                        outcome.failed_attempts,
                        used_stale=not outcome.success,
                        backoff_seconds=outcome.backoff_seconds,
                    )
            self.cloud.aggregate_models(uploads, counts)
        self.cloud.broadcast(self.edges)
        self.sampler.on_global_sync(t)

    def _virtual_global(self, t: int) -> np.ndarray:
        counts = self.trace.counts_at(t)
        total = counts.sum()
        aggregate = np.zeros_like(self.cloud.model)
        for edge, count in zip(self.edges, counts):
            if count > 0:
                aggregate += (count / total) * edge.model
        return aggregate


def run_reference(
    config,
    sampler_name: str,
    seed: Optional[int] = None,
    stop_at_target: bool = False,
    telemetry=None,
    resume_from=None,
) -> TrainingResult:
    """:func:`repro.experiments.runner.run_single`, on the twin trainer."""
    from repro.experiments.config import make_sampler
    from repro.experiments.runner import build_scenario, hfl_config_for

    seed = config.seed if seed is None else seed
    devices, test, trace, model_factory = build_scenario(config, seed)
    trainer = ReferenceTwinTrainer(
        model_factory=model_factory,
        device_datasets=devices,
        trace=trace,
        sampler=make_sampler(sampler_name, config),
        config=hfl_config_for(config, seed),
        test_dataset=test,
        telemetry=telemetry,
    )
    with trainer:
        return trainer.run(
            config.num_steps,
            target_accuracy=config.target_accuracy,
            stop_at_target=stop_at_target,
            resume_from=resume_from,
        )

"""Clustered topology with inter-cluster model mixing.

The mobility-aware *cluster* FL neighbor of the paper (Feng et al.,
arXiv:2108.09103) replaces the single cloud with edge clusters: each
cluster aggregates its own edges' models, then clusters exchange
aggregates through a mixing matrix, so information diffuses across the
system without a central coordinator carrying every upload.

Cluster assignment is a deterministic function of ``(num_edges,
num_clusters)`` — contiguous blocks, mirroring geographic grouping of
neighboring base stations — so there is no assignment state to
checkpoint.  The inter-cluster structure is uniform over the *other*
clusters; the :class:`ClusterMixAggregation` strategy owns the
configurable mixing weight λ that interpolates between pure per-cluster
training (λ=0) and full neighbor averaging (λ=1).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.topology.base import (
    AggregationStrategy,
    SyncPlan,
    Topology,
    check_sync_inputs,
    group_counts,
    weighted_group_average,
)
from repro.utils.validation import check_finite, check_fraction


def default_num_clusters(num_edges: int) -> int:
    """⌈√E⌉ clusters (capped at E): a few edges per cluster at any scale."""
    return min(num_edges, max(2, math.isqrt(num_edges - 1) + 1)) if num_edges > 1 else 1


class ClusteredTopology(Topology):
    """Edges partitioned into contiguous clusters that mix pairwise."""

    name = "clustered"
    has_cloud = False

    def __init__(self, num_clusters: int = None) -> None:
        super().__init__()
        if num_clusters is not None and num_clusters <= 0:
            raise ValueError(
                f"num_clusters must be positive, got {num_clusters}"
            )
        self.requested_clusters = num_clusters
        self.num_clusters: int = 0
        self._groups: Tuple[Tuple[int, ...], ...] = ()
        self._group_of: Tuple[int, ...] = ()
        self._mixing: np.ndarray = np.zeros((0, 0))

    def _on_bind(self) -> None:
        num_edges = self.num_edges
        clusters = self.requested_clusters
        if clusters is None:
            clusters = default_num_clusters(num_edges)
        if clusters > num_edges:
            raise ValueError(
                f"num_clusters={clusters} exceeds the {num_edges} edges"
            )
        self.num_clusters = clusters
        # Contiguous near-equal blocks: edge n lands in cluster
        # n * C // E (stable, assignment-free of any RNG).
        assignment = (np.arange(num_edges) * clusters) // num_edges
        self._group_of = tuple(int(c) for c in assignment)
        self._groups = tuple(
            tuple(int(n) for n in np.flatnonzero(assignment == c))
            for c in range(clusters)
        )
        # Uniform exchange over the *other* clusters; a single cluster
        # has nobody to mix with, so its matrix is the identity.
        if clusters == 1:
            self._mixing = np.eye(1)
        else:
            off = 1.0 / (clusters - 1)
            self._mixing = np.full((clusters, clusters), off)
            np.fill_diagonal(self._mixing, 0.0)

    def sync_plan(self, t: int, counts: np.ndarray) -> SyncPlan:
        self._require_bound()
        return SyncPlan(
            step=t,
            groups=self._groups,
            group_of=self._group_of,
            mixing=self._mixing,
        )

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["num_clusters"] = self.num_clusters
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        if state and int(state.get("num_clusters", self.num_clusters)) != self.num_clusters:
            raise ValueError(
                f"checkpoint topology state has {state['num_clusters']} "
                f"clusters, this run has {self.num_clusters}"
            )

    def describe(self) -> Dict[str, Any]:
        return {"topology": self.name, "num_clusters": self.num_clusters}


class ClusterMixAggregation(AggregationStrategy):
    """Per-cluster weighted aggregation, then λ-damped neighbor mixing.

    Each cluster first computes the member-count-weighted average of its
    edges' uploads (the within-cluster Eq. (6)).  Cluster aggregates are
    then mixed::

        mixed_c = (1 − λ) · cluster_c + λ · Σ_{c'} B[c, c'] · cluster_{c'}

    with ``B`` the topology's inter-cluster matrix (uniform over the
    other clusters) and λ the configurable ``mixing_weight``.  Every
    edge of cluster ``c`` then installs ``mixed_c``, and the global
    (evaluation) model is the member-count-weighted average of the
    mixed cluster models.
    """

    name = "cluster_mix"
    compatible_topologies = ("clustered",)

    def __init__(self, mixing_weight: float = 0.25) -> None:
        super().__init__()
        check_fraction("mixing_weight", mixing_weight)
        self.mixing_weight = float(mixing_weight)

    def apply(
        self,
        plan: SyncPlan,
        uploads: Sequence[np.ndarray],
        counts: np.ndarray,
        cloud,
        edges: Sequence,
    ) -> None:
        counts = check_sync_inputs(self.name, uploads, counts)
        cluster_models = np.stack(
            [weighted_group_average(g, uploads, counts) for g in plan.groups]
        )
        lam = self.mixing_weight
        base = plan.mixing if plan.mixing is not None else np.eye(len(cluster_models))
        mixed = (1.0 - lam) * cluster_models + lam * (base @ cluster_models)
        for n, edge in enumerate(edges):
            edge.set_model(mixed[plan.group_of[n]])
        totals = group_counts(plan, counts)
        weights = totals / totals.sum()
        cloud.model = weights @ mixed
        check_finite("mixed global model", cloud.model)

    def describe(self) -> Dict[str, Any]:
        return {"aggregation": self.name, "mixing_weight": self.mixing_weight}

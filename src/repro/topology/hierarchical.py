"""The paper's cloud→edge→device tree and its Eq. (6) aggregation.

``HierarchicalTopology`` + ``IPWAggregation`` is the engine default and
the reference pair: its sync step delegates to the exact pre-topology
code paths (:meth:`Cloud.aggregate_models` then broadcast), so a run
with the default pair is **bit-identical** to the pre-refactor trainer
on every executor backend — ``benchmarks/bench_topology.py --smoke``
and ``tests/topology/test_equivalence.py`` assert it against the
runnable reference twin (:mod:`repro.topology.reference`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topology.base import AggregationStrategy, SyncPlan, Topology


class HierarchicalTopology(Topology):
    """All edges upload to one cloud, which broadcasts back (Eq. (6))."""

    name = "hierarchical"
    has_cloud = True

    def sync_plan(self, t: int, counts: np.ndarray) -> SyncPlan:
        num_edges = self._require_bound()
        everyone = tuple(range(num_edges))
        return SyncPlan(
            step=t, groups=(everyone,), group_of=(0,) * num_edges
        )


class IPWAggregation(AggregationStrategy):
    """Member-count-weighted cloud aggregation + broadcast, as today.

    The name reflects the full paper pipeline this strategy closes:
    edges aggregate their devices with inverse-probability weights
    (Eq. (5), unchanged in :meth:`repro.hfl.edge.Edge.aggregate`) and
    the cloud weights each edge by its member count (Eq. (6)).
    """

    name = "ipw"
    compatible_topologies = ("hierarchical",)

    def apply(
        self,
        plan: SyncPlan,
        uploads: Sequence[np.ndarray],
        counts: np.ndarray,
        cloud,
        edges: Sequence,
    ) -> None:
        # Delegate to the pre-topology code path verbatim: one Eq. (6)
        # weighted sum into cloud.model, then a broadcast — the
        # bit-identity anchor for the whole topology layer.
        cloud.aggregate_models(list(uploads), counts)
        cloud.broadcast(edges)

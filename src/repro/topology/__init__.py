"""repro.topology — pluggable topologies & aggregation strategies.

The paper's single cloud→edge→device tree with Eq. (6) aggregation is
one point in a family of communication scenarios.  This subsystem
factors the sync step into two config-selectable abstractions
(DESIGN.md §12):

- :class:`Topology` — who talks to whom at a sync step
  (``hierarchical`` tree, ``clustered`` with an inter-cluster mixing
  matrix, cloudless ``gossip`` with seeded neighbor exchange);
- :class:`AggregationStrategy` — how exchanged models combine
  (``ipw`` cloud aggregation as today, ``cluster_mix`` with a
  configurable mixing weight, ``gossip_avg`` uniform neighborhood
  averaging over flat parameter buffers).

The default pair (``hierarchical`` + ``ipw``) is bit-identical to the
pre-topology trainer on every executor backend; the runnable reference
twin in :mod:`repro.topology.reference` keeps that claim checkable
forever (the :mod:`repro.hotpath` discipline).  All alternative modes
share the samplers, fault model, checkpointing and obs stack unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.base import (
    AGGREGATION_STRATEGIES,
    DEFAULT_STRATEGY,
    TOPOLOGY_KINDS,
    AggregationStrategy,
    SyncPlan,
    Topology,
    check_sync_inputs,
)
from repro.topology.clustered import (
    ClusteredTopology,
    ClusterMixAggregation,
    default_num_clusters,
)
from repro.topology.gossip import GossipAveraging, GossipTopology
from repro.topology.hierarchical import HierarchicalTopology, IPWAggregation

__all__ = [
    "AGGREGATION_STRATEGIES",
    "DEFAULT_STRATEGY",
    "TOPOLOGY_KINDS",
    "AggregationStrategy",
    "ClusterMixAggregation",
    "ClusteredTopology",
    "GossipAveraging",
    "GossipTopology",
    "HierarchicalTopology",
    "IPWAggregation",
    "SyncPlan",
    "Topology",
    "check_sync_inputs",
    "default_num_clusters",
    "default_strategy_name",
    "make_aggregation",
    "make_topology",
    "validate_pair",
]

_STRATEGY_COMPAT = {
    "ipw": IPWAggregation.compatible_topologies,
    "cluster_mix": ClusterMixAggregation.compatible_topologies,
    "gossip_avg": GossipAveraging.compatible_topologies,
}


def default_strategy_name(topology: str) -> str:
    """The aggregation strategy a topology uses when none is requested."""
    if topology not in DEFAULT_STRATEGY:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {TOPOLOGY_KINDS}"
        )
    return DEFAULT_STRATEGY[topology]


def validate_pair(topology: str, aggregation: Optional[str]) -> str:
    """Resolve and validate a (topology, strategy) selection.

    Returns the effective strategy name (the topology default when
    ``aggregation`` is ``None``); raises ``ValueError`` on unknown names
    or an incompatible combination.
    """
    if topology not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {TOPOLOGY_KINDS}"
        )
    if aggregation is None:
        return DEFAULT_STRATEGY[topology]
    if aggregation not in AGGREGATION_STRATEGIES:
        raise ValueError(
            f"unknown aggregation strategy {aggregation!r}; choose from "
            f"{AGGREGATION_STRATEGIES}"
        )
    if topology not in _STRATEGY_COMPAT[aggregation]:
        raise ValueError(
            f"aggregation strategy {aggregation!r} does not support the "
            f"{topology!r} topology (supported: "
            f"{', '.join(_STRATEGY_COMPAT[aggregation])})"
        )
    return aggregation


def make_topology(
    name: str,
    *,
    num_clusters: Optional[int] = None,
    gossip_degree: int = 2,
) -> Topology:
    """Instantiate the named topology with its parameters."""
    if name == "hierarchical":
        return HierarchicalTopology()
    if name == "clustered":
        return ClusteredTopology(num_clusters=num_clusters)
    if name == "gossip":
        return GossipTopology(degree=gossip_degree)
    raise ValueError(
        f"unknown topology {name!r}; choose from {TOPOLOGY_KINDS}"
    )


def make_aggregation(
    name: Optional[str],
    topology: Topology,
    *,
    mixing_weight: float = 0.25,
) -> AggregationStrategy:
    """Instantiate (and bind) the strategy for ``topology``.

    ``None`` selects the topology's default strategy; explicit names are
    validated for compatibility by :meth:`AggregationStrategy.bind`.
    """
    effective = validate_pair(topology.name, name)
    if effective == "ipw":
        strategy: AggregationStrategy = IPWAggregation()
    elif effective == "cluster_mix":
        strategy = ClusterMixAggregation(mixing_weight=mixing_weight)
    else:
        strategy = GossipAveraging()
    strategy.bind(topology)
    return strategy

"""Thread-pool backend: shared memory, per-thread scratch models."""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    Future,
    ThreadPoolExecutor as _ThreadPool,
    as_completed,
)
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.hfl.device import LocalUpdateResult
from repro.hotpath import hotpath_enabled
from repro.nn.population import (
    population_batching_enabled,
    supports_population_batch,
)
from repro.runtime.base import Executor, WorkerTiming, resolve_num_workers
from repro.runtime.work_items import EdgeRoundPlan, LocalUpdateItem, RoundResults


class ThreadExecutor(Executor):
    """Fan device local-updates out over a thread pool.

    Edge start models and device datasets are shared read-only across
    threads; each thread lazily clones the bound context once to get a
    private scratch model (the only mutable state a work item touches).
    Pure-Python layer code serializes on the GIL, but the BLAS matmuls
    inside forward/backward release it, so multi-core machines see a
    modest speedup at zero serialization cost.

    Each clone's deepcopy drops the model's flat-alias state
    (``Model.__getstate__``), so every thread's scratch model re-aliases
    its parameters into a private canonical flat buffer on first use —
    no thread ever writes through another thread's views.
    """

    name = "thread"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        super().__init__()
        self.num_workers = resolve_num_workers(num_workers)
        self._pool: Optional[_ThreadPool] = None
        self._thread_local = threading.local()
        # Reusable per-step submission buffer; cleared every run_step so
        # the hot loop stops reallocating one list of (index, device,
        # future) triples per time step.
        self._pending: List[Tuple[int, int, Future]] = []

    def _on_bind(self) -> None:
        # Thread-local clones were built from the previous context.
        self._thread_local = threading.local()

    def _ensure_pool(self) -> _ThreadPool:
        if self._pool is None:
            self._pool = _ThreadPool(
                max_workers=self.num_workers,
                thread_name_prefix="repro-runtime",
            )
        return self._pool

    def _local_context(self):
        context = getattr(self._thread_local, "context", None)
        if context is None:
            context = self.context.clone()
            self._thread_local.context = context
        return context

    def _run_round(self, plan: EdgeRoundPlan) -> RoundResults:
        """Round-granular work unit for the population-batched engine."""
        context = self._local_context()
        if not self._collect_timings:
            return context.run_round(plan)
        start = time.perf_counter()
        result = context.run_round(plan)
        self._timings.append(
            WorkerTiming(
                plan.step, plan.edge, -1,
                threading.current_thread().name,
                time.perf_counter() - start,
            )
        )
        return result

    def _run_item(
        self, start_model: np.ndarray, item: LocalUpdateItem
    ) -> LocalUpdateResult:
        context = self._local_context()
        if not self._collect_timings:
            return context.run_item(start_model, item)
        start = time.perf_counter()
        result = context.run_item(start_model, item)
        # list.append is atomic under the GIL — no lock needed for the
        # shared timing buffer.
        self._timings.append(
            WorkerTiming(
                item.step,
                item.edge,
                item.device_id,
                threading.current_thread().name,
                time.perf_counter() - start,
            )
        )
        return result

    def run_step(self, plans: Sequence[EdgeRoundPlan]) -> List[RoundResults]:
        self.context  # fail fast before touching the pool
        pool = self._ensure_pool()
        submit = pool.submit
        if (
            (not self._collect_timings or self._timing_granularity == "round")
            and hotpath_enabled()
            and population_batching_enabled()
            and supports_population_batch(self.context.model)
        ):
            # Population-batched engine: one stacked pass per edge round
            # beats item-granular futures (the big matmuls release the
            # GIL, and rounds still fan out across edges).  Per-item
            # timing attribution keeps the item-granular path below.
            futures = [submit(self._run_round, plan) for plan in plans]
            return [future.result() for future in futures]
        run_item = self._run_item
        pending = self._pending
        pending.clear()
        for index, plan in enumerate(plans):
            start_model = plan.start_model
            for item in plan.items:
                pending.append(
                    (index, item.device_id, submit(run_item, start_model, item))
                )
        results: List[RoundResults] = [{} for _ in plans]
        for index, device_id, future in pending:
            results[index][device_id] = future.result()
        pending.clear()  # drop future references promptly
        return results

    def submit_step(
        self, plans: Sequence[EdgeRoundPlan]
    ) -> Iterator[Tuple[int, RoundResults]]:
        """Yield edge rounds in true completion order.

        Streams results back so the incremental round pipeline can
        finish an early-arriving round while the pool still computes the
        rest.  Both engine branches are covered: on the
        population-batched path each round is one future and rounds
        stream out via :func:`as_completed`; on the item-granular path
        per-device futures stream out and a round is yielded the moment
        its last item lands.  Empty rounds are complete by definition
        and yield first.
        """
        self.context  # fail fast before touching the pool
        pool = self._ensure_pool()
        submit = pool.submit
        if (
            (not self._collect_timings or self._timing_granularity == "round")
            and hotpath_enabled()
            and population_batching_enabled()
            and supports_population_batch(self.context.model)
        ):
            round_futures = {
                submit(self._run_round, plan): index
                for index, plan in enumerate(plans)
            }
            for future in as_completed(round_futures):
                yield round_futures[future], future.result()
            return
        results: List[RoundResults] = [{} for _ in plans]
        remaining = [len(plan.items) for plan in plans]
        for index, count in enumerate(remaining):
            if count == 0:
                yield index, results[index]
        owner: Dict[Future, Tuple[int, int]] = {}
        run_item = self._run_item
        for index, plan in enumerate(plans):
            start_model = plan.start_model
            for item in plan.items:
                owner[submit(run_item, start_model, item)] = (
                    index,
                    item.device_id,
                )
        for future in as_completed(owner):
            index, device_id = owner[future]
            results[index][device_id] = future.result()
            remaining[index] -= 1
            if remaining[index] == 0:
                yield index, results[index]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._thread_local = threading.local()

"""Process-pool backend: true multi-core parallelism for CPU-bound updates.

Shipping discipline (what crosses the process boundary, and how often):

- once per worker, at pool start: the :class:`WorkerContext` — scratch
  model architecture + weights and every device's dataset — via the
  pool initializer;
- once per round chunk: the edge's flattened start model ``w^t_n`` and
  the (tiny, scalar-only) work items;
- back per item: the device's flattened final model and its gradient
  statistics.

A round's items are split into at most ``num_workers`` contiguous
chunks so device-level parallelism survives even a single-edge step
while the start model is serialized a bounded number of times per
round.  Results are keyed by device id, so completion order never
matters; combined with per-``(step, edge, device)`` seed streams this
backend is bit-identical to :class:`~repro.runtime.serial.SerialExecutor`.

The context's scratch model crosses the process boundary (pickle on
spawn platforms, fork inheritance otherwise) *without* its flat-alias
state — ``Model.__getstate__`` drops it — so each worker re-aliases
parameters into its own canonical flat buffer on the first local
update it runs.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor as _ProcessPool
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hfl.device import LocalUpdateResult
from repro.runtime.base import (
    Executor,
    WorkerError,
    WorkerTiming,
    resolve_num_workers,
)
from repro.runtime.work_items import (
    EdgeRoundPlan,
    LocalUpdateItem,
    RoundResults,
    WorkerContext,
)

#: Per-process context installed by the pool initializer.
_WORKER_CONTEXT: Optional[WorkerContext] = None


def _init_worker(context: WorkerContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_chunk(
    start_model: np.ndarray,
    items: Tuple[LocalUpdateItem, ...],
    timed: Optional[str] = None,
) -> Tuple[List[Tuple[int, LocalUpdateResult]], List[Tuple[int, str, float]]]:
    """Worker-side entry: run a chunk of one round's items serially.

    ``timed`` is ``None`` (off), ``"item"`` or ``"round"``.  Returns the
    ``(device_id, result)`` pairs plus, when timed, the
    ``(device_id, worker_name, seconds)`` attributions measured on the
    worker's own monotonic clock — one record per item at ``"item"``
    granularity, a single ``device_id=-1`` record covering the whole
    chunk (still population-batched) at ``"round"`` granularity.  The
    untimed path ships no extra bytes.
    """
    if _WORKER_CONTEXT is None:  # pragma: no cover - defensive
        raise RuntimeError("worker pool was not initialized with a context")
    if timed is None:
        # Population-batched when the chunk is homogeneous (run_items
        # falls back to the per-item loop otherwise) — each chunk is one
        # stacked forward/backward instead of len(chunk) passes.
        return _WORKER_CONTEXT.run_items(start_model, items), []
    worker = multiprocessing.current_process().name
    clock = time.perf_counter
    if timed == "round":
        start = clock()
        pairs = _WORKER_CONTEXT.run_items(start_model, items)
        return pairs, [(-1, worker, clock() - start)]
    pairs = []
    timings: List[Tuple[int, str, float]] = []
    for item in items:
        start = clock()
        pairs.append((item.device_id, _WORKER_CONTEXT.run_item(start_model, item)))
        timings.append((item.device_id, worker, clock() - start))
    return pairs, timings


def _chunk(
    items: Tuple[LocalUpdateItem, ...], num_chunks: int
) -> List[Tuple[LocalUpdateItem, ...]]:
    """Split ``items`` into at most ``num_chunks`` contiguous, even chunks."""
    num_chunks = min(num_chunks, len(items))
    if num_chunks <= 1:
        return [items]
    bounds = np.linspace(0, len(items), num_chunks + 1).astype(int)
    return [
        items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


class ProcessExecutor(Executor):
    """Fan device local-updates out over a process pool."""

    name = "process"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        super().__init__()
        self.num_workers = resolve_num_workers(num_workers)
        self._pool: Optional[_ProcessPool] = None

    def _on_bind(self) -> None:
        # Workers were initialized with the previous context; recycle.
        self._shutdown_pool()

    def _ensure_pool(self) -> _ProcessPool:
        if self._pool is None:
            # Fork (where available) inherits the context without a
            # pickle round-trip; spawn platforms serialize it once.
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = _ProcessPool(
                max_workers=self.num_workers,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(self.context,),
            )
        return self._pool

    def run_step(self, plans: Sequence[EdgeRoundPlan]) -> List[RoundResults]:
        self.context  # fail fast before touching the pool
        pool = self._ensure_pool()
        timed = self._timing_granularity if self._collect_timings else None
        pending: List[Tuple[int, Future]] = []
        for index, plan in enumerate(plans):
            for chunk in _chunk(plan.items, self.num_workers):
                if not chunk:
                    continue
                pending.append(
                    (
                        index,
                        pool.submit(_run_chunk, plan.start_model, chunk, timed),
                    )
                )
        results: List[RoundResults] = [{} for _ in plans]
        for index, future in pending:
            try:
                chunk_results, chunk_timings = future.result()
            except Exception as exc:
                # A worker raised (or the pool broke, orphaning every
                # future).  Cancel what has not started, tear the pool
                # down and recycle it so the *next* step gets a fresh
                # pool instead of hanging on dead processes.
                for _index, other in pending:
                    other.cancel()
                self._shutdown_pool()
                plan = plans[index]
                raise WorkerError(plan.step, plan.edge, exc) from exc
            for device_id, result in chunk_results:
                results[index][device_id] = result
            if chunk_timings:
                plan = plans[index]
                self._timings.extend(
                    WorkerTiming(plan.step, plan.edge, device_id, worker, seconds)
                    for device_id, worker, seconds in chunk_timings
                )
        return results

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def close(self) -> None:
        self._shutdown_pool()

"""Pluggable parallel execution backends for the HFL engine.

The trainer describes each time step's work as edge-round plans of
picklable device work items; an :class:`Executor` backend decides how
they run — serially (the default), on a thread pool, or on a process
pool.  Every backend is bit-identical for a fixed master seed because
work-item randomness is derived from ``(seed, step, edge, device)``
named streams, never from worker scheduling.

Quickstart::

    from repro.runtime import make_executor

    trainer = HFLTrainer(..., executor=make_executor("process", num_workers=4))
    result = trainer.run(num_steps=200)

or, equivalently, via configuration::

    config = HFLConfig(executor="process", num_workers=4)
"""

from repro.runtime.base import (
    EXECUTOR_KINDS,
    Executor,
    WorkerError,
    WorkerTiming,
    make_executor,
    resolve_num_workers,
)
from repro.runtime.work_items import (
    EdgeRoundPlan,
    LocalUpdateItem,
    RoundResults,
    WorkerContext,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.threads import ThreadExecutor
from repro.runtime.processes import ProcessExecutor

__all__ = [
    "EXECUTOR_KINDS",
    "Executor",
    "WorkerError",
    "WorkerTiming",
    "make_executor",
    "resolve_num_workers",
    "EdgeRoundPlan",
    "LocalUpdateItem",
    "RoundResults",
    "WorkerContext",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
]

"""The serial backend: reference semantics, zero overhead, the default."""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.runtime.base import Executor, WorkerTiming
from repro.runtime.work_items import EdgeRoundPlan, RoundResults, WorkerContext


class SerialExecutor(Executor):
    """Run every work item in the calling thread, in plan order.

    Uses the trainer's own scratch model directly (no clone) — and with
    it the trainer model's canonical flat parameter buffer, aliased once
    and reused for every device's fused local-update loop.  An
    ``executor=None`` / ``executor="serial"`` run costs exactly what the
    pre-runtime engine did.  The parallel backends are defined to be
    bit-identical to this one for the same master seed.

    The returned results list is a reusable buffer owned by the
    executor: it is cleared and refilled on every :meth:`run_step`, so
    callers that retain results across steps must copy the list (the
    per-round dicts and their :class:`~repro.hfl.device
    .LocalUpdateResult` values are fresh each step and safe to keep).
    """

    name = "serial"

    def __init__(self) -> None:
        super().__init__()
        self._results: List[RoundResults] = []

    def run_step(self, plans: Sequence[EdgeRoundPlan]) -> List[RoundResults]:
        context = self.context
        results = self._results
        results.clear()
        if self._collect_timings:
            if self._timing_granularity == "round":
                # One clock pair per round on top of the fused fast
                # path — the profiler's near-zero-overhead mode.
                clock = time.perf_counter
                for plan in plans:
                    start = clock()
                    results.append(context.run_round(plan))
                    self._timings.append(
                        WorkerTiming(
                            plan.step, plan.edge, -1, "main",
                            clock() - start,
                        )
                    )
                return results
            for plan in plans:
                results.append(self._run_round_timed(context, plan))
            return results
        for plan in plans:
            results.append(context.run_round(plan))
        return results

    def _run_round_timed(
        self, context: WorkerContext, plan: EdgeRoundPlan
    ) -> RoundResults:
        """Per-item timed variant of ``context.run_round`` (obs opt-in)."""
        clock = time.perf_counter
        round_results: RoundResults = {}
        for item in plan.items:
            start = clock()
            round_results[item.device_id] = context.run_item(
                plan.start_model, item
            )
            self._timings.append(
                WorkerTiming(
                    item.step, item.edge, item.device_id, "main",
                    clock() - start,
                )
            )
        return round_results

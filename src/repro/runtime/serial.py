"""The serial backend: reference semantics, zero overhead, the default."""

from __future__ import annotations

from typing import List, Sequence

from repro.runtime.base import Executor
from repro.runtime.work_items import EdgeRoundPlan, RoundResults


class SerialExecutor(Executor):
    """Run every work item in the calling thread, in plan order.

    Uses the trainer's own scratch model directly (no clone), so an
    ``executor=None`` / ``executor="serial"`` run costs exactly what the
    pre-runtime engine did.  The parallel backends are defined to be
    bit-identical to this one for the same master seed.
    """

    name = "serial"

    def run_step(self, plans: Sequence[EdgeRoundPlan]) -> List[RoundResults]:
        context = self.context
        return [context.run_round(plan) for plan in plans]

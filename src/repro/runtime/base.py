"""Executor abstraction: how the HFL engine runs its parallel work.

Algorithm 1 is embarrassingly parallel at two levels — edges are
independent within a time step, and sampled devices within an edge run
their I local SGD steps independently.  An :class:`Executor` receives,
once per time step, every edge's :class:`~repro.runtime.work_items
.EdgeRoundPlan` and returns the per-round local-update results; the
backend decides how the items are scheduled:

- :class:`~repro.runtime.serial.SerialExecutor` — in-process loop, the
  default and the reference semantics;
- :class:`~repro.runtime.threads.ThreadExecutor` — a thread pool with
  per-thread scratch models (BLAS kernels release the GIL);
- :class:`~repro.runtime.processes.ProcessExecutor` — a process pool;
  device datasets and the scratch model ship once per worker, edge
  models once per round.

All backends produce bit-identical results for a fixed master seed
because every work item derives its own named random stream from
``(seed, step, edge, device)`` — see :mod:`repro.runtime.work_items`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.runtime.work_items import EdgeRoundPlan, RoundResults, WorkerContext

#: Backend names accepted by :func:`make_executor` and ``HFLConfig.executor``.
EXECUTOR_KINDS = ("serial", "thread", "process")


class WorkerTiming(NamedTuple):
    """Wall-clock attribution of one executed unit of local-update work.

    Collected only when the caller opts in via
    :meth:`Executor.enable_worker_timings`; ``worker`` names the thread
    / process (or ``"main"`` for the serial backend) that ran the unit,
    and ``seconds`` is the unit's own monotonic-clock duration measured
    where it ran.  At ``"item"`` granularity a record covers one device's
    local-update loop; at ``"round"`` granularity it covers one edge
    round (or one worker's chunk of it) and ``device`` is ``-1``.
    Timings are observability, not results: they never cross into
    aggregation, RNG streams or checkpoints.
    """

    step: int
    edge: int
    device: int
    worker: str
    seconds: float


class WorkerError(RuntimeError):
    """A pooled worker failed while running one edge round's items.

    Carries the ``(step, edge)`` coordinates of the failing plan so the
    caller can tell *which* round died, and chains the original worker
    exception as ``__cause__``.  Pooled backends shut down and recycle
    their pool before raising, so the executor stays usable for the
    next step.
    """

    def __init__(self, step: int, edge: int, cause: BaseException) -> None:
        super().__init__(
            f"worker failed running step {step}, edge {edge}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.step = step
        self.edge = edge


class Executor(ABC):
    """Runs the local-update work of HFL time steps.

    Life cycle: :meth:`bind` once with the trainer's
    :class:`WorkerContext`, then :meth:`run_step` once per time step,
    then :meth:`close` (or use the executor as a context manager).
    Binding again replaces the context (worker pools are recycled).
    """

    #: Backend identifier (one of :data:`EXECUTOR_KINDS`).
    name: str = "executor"

    def __init__(self) -> None:
        self._context: Optional[WorkerContext] = None
        self._collect_timings = False
        self._timing_granularity = "item"
        self._timings: List[WorkerTiming] = []

    def bind(self, context: WorkerContext) -> None:
        """Attach the immutable per-run state all work items share."""
        if not isinstance(context, WorkerContext):
            raise TypeError(f"expected WorkerContext, got {type(context).__name__}")
        self._context = context
        self._on_bind()

    def _on_bind(self) -> None:
        """Backend hook: invalidate worker replicas built from an old context."""

    @property
    def context(self) -> WorkerContext:
        if self._context is None:
            raise RuntimeError("bind() must be called before running work")
        return self._context

    @abstractmethod
    def run_step(self, plans: Sequence[EdgeRoundPlan]) -> List[RoundResults]:
        """Execute every plan's items; results align with ``plans``.

        Each returned dict maps device id → :class:`LocalUpdateResult`
        for exactly the devices of the corresponding plan.  The call is
        a barrier: all items complete before it returns.

        Ownership: a backend may reuse the returned *list* as a per-step
        buffer (the serial backend does); the per-round dicts and result
        objects inside are fresh every step.  Callers that retain the
        list across steps must copy it.
        """

    def submit_step(
        self, plans: Sequence[EdgeRoundPlan]
    ) -> "Iterator[Tuple[int, RoundResults]]":
        """Yield ``(plan_index, results)`` per round as results complete.

        The streaming twin of :meth:`run_step`: instead of a barrier it
        hands each edge round back as soon as its items are done, so the
        caller (the service's incremental round pipeline) can start the
        finish phase of early rounds while later rounds still compute.
        Every plan is yielded exactly once; completion *order* is
        backend-dependent, which is why bit-identity is the caller's
        job — the trainer buffers out-of-order rounds and finishes in
        plan order, making a drained queue indistinguishable from the
        barrier path.

        The default implementation degrades gracefully: it runs the
        barrier :meth:`run_step` and yields the rounds in plan order
        (which is also their completion order on the serial backend).
        Pooled backends may override with true as-completed streaming
        (the thread backend does).
        """
        results = self.run_step(plans)
        for index in range(len(plans)):
            yield index, results[index]

    # -- worker-timing attribution (observability opt-in) --------------------

    def enable_worker_timings(self, granularity: str = "item") -> None:
        """Start collecting :class:`WorkerTiming` records.

        Off by default: the reference path pays nothing.  When enabled,
        each backend measures work where it executes and the caller
        drains the records with :meth:`drain_worker_timings` after each
        :meth:`run_step`.

        ``granularity="item"`` times every device's local update
        individually — full attribution, but it forces the backends off
        their fused/population-batched round paths, which costs real
        wall-clock.  ``granularity="round"`` times whole edge rounds
        (one clock pair per round or per worker chunk) on top of the
        unchanged fast path — near-zero overhead, per-edge attribution
        only (``device=-1``).  The continuous profiler uses ``"round"``;
        span tracing, which needs per-device spans, uses ``"item"``.
        Calling with ``"item"`` wins over an earlier ``"round"`` call.
        """
        if granularity not in ("item", "round"):
            raise ValueError(
                f"granularity must be 'item' or 'round', got {granularity!r}"
            )
        if self._collect_timings and self._timing_granularity == "item":
            return  # item granularity subsumes round granularity
        self._collect_timings = True
        self._timing_granularity = granularity

    @property
    def collects_worker_timings(self) -> bool:
        return self._collect_timings

    @property
    def timing_granularity(self) -> str:
        return self._timing_granularity

    def drain_worker_timings(self) -> List[WorkerTiming]:
        """Return and clear the timings accumulated since the last drain."""
        timings, self._timings = self._timings, []
        return timings

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def resolve_num_workers(num_workers: Optional[int]) -> int:
    """Default the worker count to the machine's CPU count (min 1)."""
    if num_workers is None:
        import os

        return os.cpu_count() or 1
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    return int(num_workers)


def make_executor(kind: str, num_workers: Optional[int] = None) -> Executor:
    """Instantiate a backend by name (``serial`` / ``thread`` / ``process``).

    ``num_workers`` is ignored by the serial backend and defaults to the
    CPU count for the pooled ones.
    """
    if kind == "serial":
        from repro.runtime.serial import SerialExecutor

        return SerialExecutor()
    if kind == "thread":
        from repro.runtime.threads import ThreadExecutor

        return ThreadExecutor(num_workers=num_workers)
    if kind == "process":
        from repro.runtime.processes import ProcessExecutor

        return ProcessExecutor(num_workers=num_workers)
    raise ValueError(
        f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}"
    )

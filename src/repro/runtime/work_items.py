"""Picklable units of HFL work shipped between the trainer and workers.

The engine's unit of parallelism is one device's local-update loop at
one ``(time step, edge)`` round.  A :class:`LocalUpdateItem` carries
only scalar coordinates and hyper-parameters — the edge's start model
travels once per :class:`EdgeRoundPlan`, and the bulky immutable state
(scratch model architecture, device datasets) ships once per worker
inside a :class:`WorkerContext`.

Determinism contract: an item's randomness is derived solely from
``(master_seed, step, edge, device)`` via
:meth:`repro.utils.rng.SeedSequenceFactory.work_item_generator`, so any
executor backend — regardless of worker count, scheduling or completion
order — reproduces the serial run bit for bit.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.hfl.device import Device, LocalUpdateResult
from repro.utils.rng import SeedSequenceFactory


@dataclass(frozen=True)
class LocalUpdateItem:
    """One device's I local SGD steps at one ``(step, edge)`` round."""

    step: int
    edge: int
    device_id: int
    local_epochs: int
    learning_rate: float
    batch_size: int


@dataclass(frozen=True)
class EdgeRoundPlan:
    """All sampled local updates of one edge round, sharing one start model.

    ``start_model`` is the edge model ``w^t_n`` every item downloads —
    kept once per plan so process backends serialize the parameter
    vector once per round instead of once per device.
    """

    step: int
    edge: int
    start_model: np.ndarray
    items: Tuple[LocalUpdateItem, ...]


#: Round results keyed by device id, aligned with one :class:`EdgeRoundPlan`.
RoundResults = Dict[int, LocalUpdateResult]


class WorkerContext:
    """Per-worker immutable state: scratch model, devices, master seed.

    One context is built by the trainer and handed to the executor via
    :meth:`repro.runtime.base.Executor.bind`.  Backends that own worker
    replicas (threads, processes) call :meth:`clone` so each worker gets
    a private scratch model; the device datasets are read-only and
    shared (threads) or copied on ship (processes).

    Flat-buffer aliasing contract: the scratch model's parameters are
    numpy views into one canonical flat vector
    (:meth:`repro.nn.model.Model.flat_view`), and numpy serializes a
    view as a standalone array.  ``Model.__getstate__`` therefore drops
    the alias state, so both :meth:`clone`'s deepcopy (thread replicas)
    and the pickle that ships a context to process-pool workers carry
    plain per-parameter arrays that re-alias lazily into a fresh
    private buffer on first flat access — the same transient-scratch
    discipline as :class:`repro.nn.functional.ConvWorkspace`.
    """

    def __init__(
        self, model, devices: Sequence[Device], master_seed: int
    ) -> None:
        if not devices:
            raise ValueError("worker context needs at least one device")
        self.model = model
        self.devices = list(devices)
        self.seeds = SeedSequenceFactory(master_seed)

    @property
    def master_seed(self) -> int:
        return self.seeds.master_seed

    def clone(self) -> "WorkerContext":
        """A context with a private scratch model (for one worker replica)."""
        return WorkerContext(
            copy.deepcopy(self.model), self.devices, self.master_seed
        )

    def run_item(
        self, start_model: np.ndarray, item: LocalUpdateItem
    ) -> LocalUpdateResult:
        """Execute one local update with its deterministic named stream."""
        device = self.devices[item.device_id]
        if device.device_id != item.device_id:
            raise ValueError(
                f"device list is not indexed by id: slot {item.device_id} "
                f"holds device {device.device_id}"
            )
        rng = self.seeds.work_item_generator(item.step, item.edge, item.device_id)
        return device.local_update(
            start_model,
            self.model,
            item.local_epochs,
            item.learning_rate,
            item.batch_size,
            rng=rng,
        )

    def run_round(self, plan: EdgeRoundPlan) -> RoundResults:
        """Execute a whole round serially (items in plan order)."""
        return {
            item.device_id: self.run_item(plan.start_model, item)
            for item in plan.items
        }

"""Picklable units of HFL work shipped between the trainer and workers.

The engine's unit of parallelism is one device's local-update loop at
one ``(time step, edge)`` round.  A :class:`LocalUpdateItem` carries
only scalar coordinates and hyper-parameters — the edge's start model
travels once per :class:`EdgeRoundPlan`, and the bulky immutable state
(scratch model architecture, device datasets) ships once per worker
inside a :class:`WorkerContext`.

Determinism contract: an item's randomness is derived solely from
``(master_seed, step, edge, device)`` via
:meth:`repro.utils.rng.SeedSequenceFactory.work_item_generator`, so any
executor backend — regardless of worker count, scheduling or completion
order — reproduces the serial run bit for bit.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hfl.device import Device, LocalUpdateResult
from repro.hotpath import hotpath_enabled
from repro.nn.population import (
    PopulationModel,
    population_batching_enabled,
    supports_population_batch,
)
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LocalUpdateItem:
    """One device's I local SGD steps at one ``(step, edge)`` round."""

    step: int
    edge: int
    device_id: int
    local_epochs: int
    learning_rate: float
    batch_size: int


@dataclass(frozen=True)
class EdgeRoundPlan:
    """All sampled local updates of one edge round, sharing one start model.

    ``start_model`` is the edge model ``w^t_n`` every item downloads —
    kept once per plan so process backends serialize the parameter
    vector once per round instead of once per device.
    """

    step: int
    edge: int
    start_model: np.ndarray
    items: Tuple[LocalUpdateItem, ...]


#: Round results keyed by device id, aligned with one :class:`EdgeRoundPlan`.
RoundResults = Dict[int, LocalUpdateResult]


class WorkerContext:
    """Per-worker immutable state: scratch model, devices, master seed.

    One context is built by the trainer and handed to the executor via
    :meth:`repro.runtime.base.Executor.bind`.  Backends that own worker
    replicas (threads, processes) call :meth:`clone` so each worker gets
    a private scratch model; the device datasets are read-only and
    shared (threads) or copied on ship (processes).

    Flat-buffer aliasing contract: the scratch model's parameters are
    numpy views into one canonical flat vector
    (:meth:`repro.nn.model.Model.flat_view`), and numpy serializes a
    view as a standalone array.  ``Model.__getstate__`` therefore drops
    the alias state, so both :meth:`clone`'s deepcopy (thread replicas)
    and the pickle that ships a context to process-pool workers carry
    plain per-parameter arrays that re-alias lazily into a fresh
    private buffer on first flat access — the same transient-scratch
    discipline as :class:`repro.nn.functional.ConvWorkspace`.
    """

    #: Per-worker scratch state rebuilt lazily after clone/pickle: the
    #: population matrices are plain capacity-sized buffers a fresh
    #: worker re-allocates on first batched round.
    _TRANSIENT_ATTRS = ("_pop_model", "_pop_supported")

    def __init__(
        self, model, devices: Sequence[Device], master_seed: int
    ) -> None:
        if not devices:
            raise ValueError("worker context needs at least one device")
        self.model = model
        self.devices = list(devices)
        self.seeds = SeedSequenceFactory(master_seed)
        self._pop_model: Optional[PopulationModel] = None
        self._pop_supported: Optional[bool] = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for attr in self._TRANSIENT_ATTRS:
            state.pop(attr, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pop_model = None
        self._pop_supported = None

    @property
    def master_seed(self) -> int:
        return self.seeds.master_seed

    def clone(self) -> "WorkerContext":
        """A context with a private scratch model (for one worker replica)."""
        return WorkerContext(
            copy.deepcopy(self.model), self.devices, self.master_seed
        )

    def run_item(
        self, start_model: np.ndarray, item: LocalUpdateItem
    ) -> LocalUpdateResult:
        """Execute one local update with its deterministic named stream."""
        device = self._device_for(item)
        rng = self.seeds.work_item_generator(item.step, item.edge, item.device_id)
        return device.local_update(
            start_model,
            self.model,
            item.local_epochs,
            item.learning_rate,
            item.batch_size,
            rng=rng,
        )

    def _device_for(self, item: LocalUpdateItem) -> Device:
        device = self.devices[item.device_id]
        if device.device_id != item.device_id:
            raise ValueError(
                f"device list is not indexed by id: slot {item.device_id} "
                f"holds device {device.device_id}"
            )
        return device

    def _population_model(self) -> PopulationModel:
        if self._pop_model is None:
            self._pop_model = PopulationModel(self.model)
        return self._pop_model

    def _batchable(self, items: Tuple[LocalUpdateItem, ...]) -> bool:
        """Whether ``items`` can run as one stacked population pass.

        Requires the optimized engine, a Dense/ReLU/Flatten model, and a
        homogeneous batch: identical hyper-parameters, one effective
        minibatch size (``min(batch_size, |D_m|)``), and one feature
        shape across all devices.  Heterogeneous rounds fall back to the
        per-device loop item by item.
        """
        if len(items) < 2:
            return False
        if not (hotpath_enabled() and population_batching_enabled()):
            return False
        if self._pop_supported is None:
            self._pop_supported = supports_population_batch(self.model)
        if not self._pop_supported:
            return False
        first = items[0]
        size: Optional[int] = None
        feat: Optional[Tuple[int, ...]] = None
        for item in items:
            if (
                item.local_epochs != first.local_epochs
                or item.learning_rate != first.learning_rate
                or item.batch_size != first.batch_size
            ):
                return False
            dataset = self._device_for(item).dataset
            effective = min(item.batch_size, len(dataset))
            if size is None:
                size, feat = effective, dataset.feature_shape
            elif effective != size or dataset.feature_shape != feat:
                return False
        return True

    def run_items(
        self, start_model: np.ndarray, items: Sequence[LocalUpdateItem]
    ) -> List[Tuple[int, LocalUpdateResult]]:
        """Execute many local updates, stacked into one population pass
        when possible (results in item order either way).

        Each device still draws its minibatch indices from its own
        ``(step, edge, device)`` named stream — the stacked pass changes
        how the math executes, never what is computed, and each result
        is bit-identical to :meth:`run_item`'s.
        """
        items = tuple(items)
        if not self._batchable(items):
            return [
                (item.device_id, self.run_item(start_model, item))
                for item in items
            ]
        first = items[0]
        epochs = first.local_epochs
        check_positive("local_epochs", epochs)
        check_positive("learning_rate", first.learning_rate)
        check_positive("batch_size", first.batch_size)
        devices = [self._device_for(item) for item in items]
        size = min(first.batch_size, len(devices[0].dataset))
        feat = devices[0].dataset.feature_shape
        xs = np.empty((epochs, len(items), size) + feat)
        ys = np.empty((epochs, len(items), size), dtype=int)
        for slot, (item, device) in enumerate(zip(items, devices)):
            rng = self.seeds.work_item_generator(
                item.step, item.edge, item.device_id
            )
            xs[:, slot], ys[:, slot] = device.dataset.sample_batches(
                epochs, first.batch_size, rng=rng
            )
        finals, losses, grad_sq = self._population_model().local_updates(
            start_model, xs, ys, first.learning_rate
        )
        return [
            (
                item.device_id,
                LocalUpdateResult(
                    device_id=item.device_id,
                    final_model=finals[slot],
                    grad_sq_norms=grad_sq[slot].tolist(),
                    mean_loss=float(np.mean(losses[slot])),
                ),
            )
            for slot, item in enumerate(items)
        ]

    def run_round(self, plan: EdgeRoundPlan) -> RoundResults:
        """Execute a whole round (items in plan order), population-batched
        on the optimized engine."""
        return dict(self.run_items(plan.start_model, plan.items))

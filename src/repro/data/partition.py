"""Non-IID partitioning of data across federated devices.

The paper (§IV-A.2): "The data distribution of all mobile devices is set
to be Non-IID. Both the global and the devices' data distribution follow
a long-tailed distribution", with equal local dataset sizes (§II-B).

Two mechanisms are provided:

- :func:`equal_size_dirichlet_partition` — the configuration the paper
  uses: every device holds the same number of samples, per-device class
  proportions drawn from a Dirichlet centred on a long-tailed global
  prior (smaller ``alpha`` → more heterogeneous devices).
- :func:`dirichlet_partition` / :func:`shard_partition` — the two other
  standard Non-IID splits from the FL literature, used in ablations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


def long_tailed_class_weights(
    num_classes: int, imbalance: float = 4.0
) -> np.ndarray:
    """Exponential long-tailed class prior.

    ``imbalance`` is the ratio between the most and least frequent class
    (1.0 recovers the uniform distribution).  Returns a simplex vector.
    """
    check_positive("num_classes", num_classes)
    if imbalance < 1.0:
        raise ValueError(f"imbalance must be >= 1, got {imbalance}")
    if num_classes == 1:
        return np.ones(1)
    decay = imbalance ** (-1.0 / (num_classes - 1))
    weights = decay ** np.arange(num_classes)
    return weights / weights.sum()


def equal_size_dirichlet_partition(
    num_devices: int,
    samples_per_device: int,
    num_classes: int,
    alpha: float = 0.5,
    global_prior: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Draw per-device *label vectors* with Non-IID class proportions.

    Each device's class distribution is ``Dirichlet(alpha * prior *
    num_classes)`` so the expected device distribution equals the
    (long-tailed) global prior while small ``alpha`` concentrates each
    device on few classes.  Returns a list of ``num_devices`` label
    arrays, each of length ``samples_per_device``.
    """
    check_positive("num_devices", num_devices)
    check_positive("samples_per_device", samples_per_device)
    check_positive("alpha", alpha)
    rng = as_generator(rng)
    if global_prior is None:
        global_prior = np.full(num_classes, 1.0 / num_classes)
    global_prior = np.asarray(global_prior, dtype=float)
    if global_prior.shape != (num_classes,):
        raise ValueError(
            f"global_prior must have shape ({num_classes},), got {global_prior.shape}"
        )
    if not np.isclose(global_prior.sum(), 1.0):
        raise ValueError("global_prior must sum to 1")

    concentration = np.clip(alpha * num_classes * global_prior, 1e-6, None)
    labels = []
    for _ in range(num_devices):
        proportions = rng.dirichlet(concentration)
        labels.append(rng.choice(num_classes, size=samples_per_device, p=proportions))
    return labels


def dirichlet_partition(
    labels: np.ndarray,
    num_devices: int,
    alpha: float = 0.5,
    rng: RngLike = None,
    min_samples: int = 1,
) -> List[np.ndarray]:
    """Partition an existing labelled pool Dirichlet-style.

    The classic FL split: for each class, proportions over devices are
    drawn from ``Dirichlet(alpha)`` and the class's examples divided
    accordingly.  Returns per-device index arrays into ``labels``.
    Re-draws until every device has at least ``min_samples`` examples.
    """
    labels = np.asarray(labels, dtype=int)
    check_positive("num_devices", num_devices)
    check_positive("alpha", alpha)
    rng = as_generator(rng)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    if num_classes == 0:
        raise ValueError("cannot partition an empty label array")

    for _attempt in range(100):
        device_indices: List[List[int]] = [[] for _ in range(num_devices)]
        for c in range(num_classes):
            class_idx = np.flatnonzero(labels == c)
            rng.shuffle(class_idx)
            proportions = rng.dirichlet(np.full(num_devices, alpha))
            cuts = (np.cumsum(proportions)[:-1] * len(class_idx)).astype(int)
            for device, chunk in enumerate(np.split(class_idx, cuts)):
                device_indices[device].extend(chunk.tolist())
        sizes = [len(idx) for idx in device_indices]
        if min(sizes) >= min_samples:
            return [np.asarray(sorted(idx), dtype=int) for idx in device_indices]
    raise RuntimeError(
        f"failed to draw a partition with >= {min_samples} samples per device "
        f"after 100 attempts; lower min_samples or raise alpha"
    )


def shard_partition(
    labels: np.ndarray,
    num_devices: int,
    shards_per_device: int = 2,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """McMahan-style pathological Non-IID split.

    Sort examples by label, slice into ``num_devices * shards_per_device``
    contiguous shards, and deal each device ``shards_per_device`` random
    shards — so each device sees at most that many classes.
    """
    labels = np.asarray(labels, dtype=int)
    check_positive("num_devices", num_devices)
    check_positive("shards_per_device", shards_per_device)
    rng = as_generator(rng)
    num_shards = num_devices * shards_per_device
    if len(labels) < num_shards:
        raise ValueError(
            f"need at least {num_shards} examples for {num_shards} shards, "
            f"got {len(labels)}"
        )
    order = np.argsort(labels, kind="stable")
    shards = np.array_split(order, num_shards)
    shard_order = rng.permutation(num_shards)
    device_indices = []
    for device in range(num_devices):
        picked = shard_order[
            device * shards_per_device : (device + 1) * shards_per_device
        ]
        idx = np.concatenate([shards[s] for s in picked])
        device_indices.append(np.asarray(sorted(idx.tolist()), dtype=int))
    return device_indices


def partition_summary(
    device_labels: Sequence[np.ndarray], num_classes: int
) -> Dict[str, float]:
    """Heterogeneity diagnostics for a device split.

    Returns mean/max per-device distance from the global distribution
    (total variation) and the mean effective number of classes per
    device (exp of label entropy) — useful when calibrating ``alpha``.
    """
    if not device_labels:
        raise ValueError("device_labels is empty")
    global_counts = np.zeros(num_classes)
    tvs = []
    eff_classes = []
    dists = []
    for labels in device_labels:
        counts = np.bincount(np.asarray(labels, dtype=int), minlength=num_classes)
        global_counts += counts
        dist = counts / max(counts.sum(), 1)
        dists.append(dist)
        nonzero = dist[dist > 0]
        entropy = -np.sum(nonzero * np.log(nonzero))
        eff_classes.append(float(np.exp(entropy)))
    global_dist = global_counts / max(global_counts.sum(), 1)
    for dist in dists:
        tvs.append(0.5 * float(np.abs(dist - global_dist).sum()))
    return {
        "mean_tv_distance": float(np.mean(tvs)),
        "max_tv_distance": float(np.max(tvs)),
        "mean_effective_classes": float(np.mean(eff_classes)),
    }

"""Datasets and Non-IID partitioning.

The paper trains on MNIST / FMNIST / CIFAR10 with long-tailed Non-IID
splits across 100 mobile devices.  The real corpora are not available
offline, so :mod:`repro.data.synthetic` generates class-structured image
datasets at the same shapes and with a controllable difficulty tier
(see DESIGN.md §4), and :mod:`repro.data.partition` reproduces the
long-tailed Non-IID device split.
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.loaders import (
    concatenate_datasets,
    load_cifar10_binary_batch,
    load_cifar10_pickle_batch,
    load_mnist_idx,
)
from repro.data.partition import (
    dirichlet_partition,
    equal_size_dirichlet_partition,
    long_tailed_class_weights,
    partition_summary,
    shard_partition,
)
from repro.data.synthetic import (
    TASK_SPECS,
    SyntheticTaskSpec,
    make_blobs_dataset,
    make_federated_task,
    make_synthetic_image_dataset,
)

__all__ = [
    "Dataset",
    "load_mnist_idx",
    "load_cifar10_binary_batch",
    "load_cifar10_pickle_batch",
    "concatenate_datasets",
    "train_test_split",
    "dirichlet_partition",
    "equal_size_dirichlet_partition",
    "long_tailed_class_weights",
    "shard_partition",
    "partition_summary",
    "SyntheticTaskSpec",
    "TASK_SPECS",
    "make_synthetic_image_dataset",
    "make_blobs_dataset",
    "make_federated_task",
]

"""In-memory labelled dataset container used across the library."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator


class Dataset:
    """A labelled dataset: features ``x`` with integer labels ``y``.

    ``x`` is batch-first with arbitrary feature shape — (N, C, H, W) for
    image tasks, (N, F) for flat tasks.  Instances are immutable-by-
    convention; derived views (:meth:`subset`) share the underlying
    arrays.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, num_classes: int) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"feature/label count mismatch: {x.shape[0]} vs {y.shape[0]}"
            )
        if y.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {y.shape}")
        if num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {num_classes}")
        if y.size and (y.min() < 0 or y.max() >= num_classes):
            raise ValueError(
                f"labels out of range [0, {num_classes}): "
                f"[{y.min()}, {y.max()}]"
            )
        self.x = x
        self.y = y
        self.num_classes = num_classes

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def feature_shape(self) -> Tuple[int, ...]:
        """Shape of a single example (without the batch dimension)."""
        return self.x.shape[1:]

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A view of the examples at ``indices`` (labels preserved)."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(self.x[indices], self.y[indices], self.num_classes)

    def sample_batch(
        self, batch_size: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniformly sample a minibatch with replacement (SGD's ξ in Eq. (4))."""
        if len(self) == 0:
            raise ValueError("cannot sample from an empty dataset")
        rng = as_generator(rng)
        idx = rng.integers(0, len(self), size=min(batch_size, len(self)))
        return self.x[idx], self.y[idx]

    def sample_batches(
        self, num_batches: int, batch_size: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-draw ``num_batches`` minibatches as stacked ``(I, B, …)`` arrays.

        Makes exactly the same ``rng.integers`` calls, in the same
        order, as ``num_batches`` successive :meth:`sample_batch` calls
        — so the random stream (and therefore every drawn index) is
        bit-identical to the sequential reference — then gathers all
        features/labels in one fancy-indexing pass.  This feeds the
        batched Eq. (4) local-update loop.
        """
        if len(self) == 0:
            raise ValueError("cannot sample from an empty dataset")
        if num_batches <= 0:
            raise ValueError(f"num_batches must be positive, got {num_batches}")
        rng = as_generator(rng)
        size = min(batch_size, len(self))
        idx = np.stack(
            [rng.integers(0, len(self), size=size) for _ in range(num_batches)]
        )
        return self.x[idx], self.y[idx]

    def class_distribution(self) -> np.ndarray:
        """Empirical label distribution as a length-``num_classes`` simplex vector."""
        counts = np.bincount(self.y, minlength=self.num_classes).astype(float)
        total = counts.sum()
        if total == 0:
            return np.full(self.num_classes, 1.0 / self.num_classes)
        return counts / total

    def class_counts(self) -> np.ndarray:
        """Per-class example counts."""
        return np.bincount(self.y, minlength=self.num_classes)

    def shuffled(self, rng: RngLike = None) -> "Dataset":
        """A shuffled copy (new index order, shared storage semantics)."""
        rng = as_generator(rng)
        order = rng.permutation(len(self))
        return self.subset(order)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Dataset(n={len(self)}, feature_shape={self.feature_shape}, "
            f"num_classes={self.num_classes})"
        )


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng: RngLike = None
) -> Tuple[Dataset, Dataset]:
    """Random train/test split preserving ``num_classes``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(rng)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if train_idx.size == 0:
        raise ValueError("train split is empty; lower test_fraction")
    return dataset.subset(train_idx), dataset.subset(test_idx)

"""Synthetic stand-ins for the paper's image classification corpora.

The real MNIST / FMNIST / CIFAR10 downloads are unavailable offline, so
we synthesize 10-class image datasets that preserve what the paper's
experiments actually exercise:

- a classification task learnable by the paper's small CNNs,
- a task-difficulty ordering (mnist < fmnist < cifar10), realized here
  by decreasing class separation and increasing pixel noise,
- the input shapes of the originals (1×28×28 and 3×32×32) with reduced
  shapes available for fast CPU benchmarking.

Each class ``c`` gets a smooth random prototype image ``P_c`` (white
noise convolved with a Gaussian kernel); an example of class ``c`` is
``separation * P_c + noise * ε`` with fresh Gaussian ε.  Class overlap —
and thus task difficulty — is controlled by the separation/noise ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SyntheticTaskSpec:
    """Recipe for one synthetic classification task.

    Attributes
    ----------
    name:
        Task identifier (``"mnist"``, ``"fmnist"``, ``"cifar10"``).
    input_shape:
        (C, H, W) of a single example.
    num_classes:
        Number of label classes (10 for all paper tasks).
    separation:
        Scale of the class prototype inside each example; larger means
        easier classes.
    noise:
        Standard deviation of per-example Gaussian pixel noise.
    smoothness:
        Gaussian-filter sigma used when drawing prototypes; larger gives
        lower-frequency (more image-like) class patterns.
    """

    name: str
    input_shape: Tuple[int, int, int]
    num_classes: int = 10
    separation: float = 1.0
    noise: float = 1.0
    smoothness: float = 2.0

    def scaled(self, image_size: int) -> "SyntheticTaskSpec":
        """The same task at a different square resolution."""
        check_positive("image_size", image_size)
        channels = self.input_shape[0]
        return replace(self, input_shape=(channels, image_size, image_size))


#: Paper-shape task specifications, difficulty-ordered like the originals.
TASK_SPECS: Dict[str, SyntheticTaskSpec] = {
    "mnist": SyntheticTaskSpec(
        name="mnist", input_shape=(1, 28, 28), separation=2.0, noise=0.6
    ),
    "fmnist": SyntheticTaskSpec(
        name="fmnist", input_shape=(1, 28, 28), separation=1.4, noise=0.9
    ),
    "cifar10": SyntheticTaskSpec(
        name="cifar10", input_shape=(3, 32, 32), separation=1.0, noise=1.2
    ),
}


def _class_prototypes(
    spec: SyntheticTaskSpec, rng: np.random.Generator
) -> np.ndarray:
    """Draw one smooth random prototype image per class."""
    channels, height, width = spec.input_shape
    protos = rng.standard_normal((spec.num_classes, channels, height, width))
    if spec.smoothness > 0:
        protos = ndimage.gaussian_filter(
            protos, sigma=(0, 0, spec.smoothness, spec.smoothness)
        )
    # Renormalize each prototype to unit RMS so `separation` is meaningful.
    rms = np.sqrt(np.mean(protos**2, axis=(1, 2, 3), keepdims=True))
    return protos / np.clip(rms, 1e-9, None)


def make_synthetic_image_dataset(
    task: str,
    num_samples: int,
    image_size: Optional[int] = None,
    rng: RngLike = None,
    labels: Optional[np.ndarray] = None,
    separation: Optional[float] = None,
    noise: Optional[float] = None,
) -> Dataset:
    """Generate a synthetic image dataset for ``task``.

    Parameters
    ----------
    task:
        A key of :data:`TASK_SPECS`.
    num_samples:
        Number of examples to draw (ignored when ``labels`` is given).
    image_size:
        Optional square resolution override (e.g. 8 or 12 for fast CPU
        benchmarks); ``None`` keeps the paper shape.
    labels:
        Optional explicit label vector; when provided, one example is
        generated per entry, enabling exact class-composition control.
    """
    if task not in TASK_SPECS:
        raise ValueError(f"unknown task {task!r}; choose from {list(TASK_SPECS)}")
    spec = TASK_SPECS[task]
    if image_size is not None:
        spec = spec.scaled(image_size)
    if separation is not None:
        spec = replace(spec, separation=check_positive("separation", separation))
    if noise is not None:
        spec = replace(spec, noise=check_positive("noise", noise, strict=False))
    rng = as_generator(rng)

    # Prototypes are drawn from a *named* stream keyed only by the task
    # spec so every dataset of the same task shares class geometry —
    # training and test sets must agree on what "class 3" looks like.
    proto_rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=abs(hash((spec.name, spec.input_shape))) % (2**63)
        )
    )
    protos = _class_prototypes(spec, proto_rng)

    if labels is None:
        check_positive("num_samples", num_samples)
        labels = rng.integers(0, spec.num_classes, size=num_samples)
    else:
        labels = np.asarray(labels, dtype=int)
    noise = rng.standard_normal((labels.shape[0],) + spec.input_shape)
    x = spec.separation * protos[labels] + spec.noise * noise
    return Dataset(x, labels, spec.num_classes)


def make_blobs_dataset(
    num_samples: int,
    num_features: int = 16,
    num_classes: int = 10,
    separation: float = 2.0,
    noise: float = 1.0,
    rng: RngLike = None,
    labels: Optional[np.ndarray] = None,
) -> Dataset:
    """Gaussian-blobs flat-feature dataset for MLP tests and fast sweeps."""
    rng = as_generator(rng)
    centers_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(num_features * 1009 + num_classes))
    )
    centers = centers_rng.standard_normal((num_classes, num_features))
    centers /= np.clip(
        np.linalg.norm(centers, axis=1, keepdims=True) / np.sqrt(num_features), 1e-9, None
    )
    if labels is None:
        check_positive("num_samples", num_samples)
        labels = rng.integers(0, num_classes, size=num_samples)
    else:
        labels = np.asarray(labels, dtype=int)
    x = separation * centers[labels] + noise * rng.standard_normal(
        (labels.shape[0], num_features)
    )
    return Dataset(x, labels, num_classes)


def make_federated_task(
    task: str,
    num_devices: int,
    samples_per_device: int,
    test_samples: int = 1000,
    image_size: Optional[int] = None,
    alpha: float = 0.5,
    imbalance: float = 4.0,
    separation: Optional[float] = None,
    noise: Optional[float] = None,
    test_distribution: str = "global",
    rng: RngLike = None,
) -> Tuple[List[Dataset], Dataset]:
    """Build the paper's federated data layout for one task.

    Returns ``(device_datasets, test_dataset)`` where each device holds
    ``samples_per_device`` examples (the paper assumes equal |D_m|) and
    device class proportions are Non-IID (Dirichlet ``alpha`` around a
    long-tailed global prior with ratio ``imbalance``).

    ``test_distribution`` selects the evaluation distribution:
    ``"global"`` (default) draws test labels from the same long-tailed
    prior as training — the natural train/test split of the paper's
    "both the global and the devices' data distribution follow a
    long-tailed distribution" setup; ``"balanced"`` uses equal class
    counts (useful for rare-class diagnostics).
    """
    from repro.data.partition import (  # local import to avoid cycle
        equal_size_dirichlet_partition,
        long_tailed_class_weights,
    )

    if task not in TASK_SPECS and task != "blobs":
        raise ValueError(f"unknown task {task!r}")
    rng = as_generator(rng)
    num_classes = 10
    global_prior = long_tailed_class_weights(num_classes, imbalance=imbalance)
    device_labels = equal_size_dirichlet_partition(
        num_devices=num_devices,
        samples_per_device=samples_per_device,
        num_classes=num_classes,
        alpha=alpha,
        global_prior=global_prior,
        rng=rng,
    )

    blob_kwargs = {}
    if separation is not None:
        blob_kwargs["separation"] = separation
    if noise is not None:
        blob_kwargs["noise"] = noise

    devices = []
    for labels in device_labels:
        if task == "blobs":
            devices.append(make_blobs_dataset(0, rng=rng, labels=labels, **blob_kwargs))
        else:
            devices.append(
                make_synthetic_image_dataset(
                    task,
                    0,
                    image_size=image_size,
                    rng=rng,
                    labels=labels,
                    separation=separation,
                    noise=noise,
                )
            )

    if test_distribution == "balanced":
        test_labels = np.repeat(
            np.arange(num_classes), int(np.ceil(test_samples / num_classes))
        )[:test_samples]
    elif test_distribution == "global":
        test_labels = rng.choice(num_classes, size=test_samples, p=global_prior)
    else:
        raise ValueError(
            f"test_distribution must be 'global' or 'balanced', "
            f"got {test_distribution!r}"
        )
    if task == "blobs":
        test = make_blobs_dataset(0, rng=rng, labels=test_labels, **blob_kwargs)
    else:
        test = make_synthetic_image_dataset(
            task,
            0,
            image_size=image_size,
            rng=rng,
            labels=test_labels,
            separation=separation,
            noise=noise,
        )
    return devices, test

"""Loaders for the real benchmark corpora (MNIST/FMNIST IDX, CIFAR-10).

This reproduction environment has no network access, so the evaluation
runs on the synthetic stand-ins of :mod:`repro.data.synthetic` — but a
downstream user *with* the real files can drop them in and run every
experiment on the true datasets.  These loaders parse the standard
distribution formats:

- MNIST / Fashion-MNIST: the IDX format of ``train-images-idx3-ubyte``
  and ``train-labels-idx1-ubyte`` (optionally gzip-compressed);
- CIFAR-10: the python/binary batch format (``data_batch_1`` …), both
  as raw binary records and as pickled batches.

All loaders normalize pixels to zero mean / unit scale per dataset
convention and return :class:`~repro.data.dataset.Dataset` objects that
plug directly into the partitioners and the HFL engine.
"""

from __future__ import annotations

import gzip
import pickle
import struct
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.data.dataset import Dataset

_IDX_IMAGE_MAGIC = 2051
_IDX_LABEL_MAGIC = 2049


def _open_maybe_gzip(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


def load_idx_images(path: Union[str, Path]) -> np.ndarray:
    """Parse an IDX3 image file into a float array (N, 1, H, W) in [0, 1]."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"IDX image file not found: {path}")
    with _open_maybe_gzip(path) as f:
        magic, count, rows, cols = struct.unpack(">IIII", f.read(16))
        if magic != _IDX_IMAGE_MAGIC:
            raise ValueError(
                f"{path} is not an IDX3 image file (magic {magic}, expected "
                f"{_IDX_IMAGE_MAGIC})"
            )
        raw = f.read(count * rows * cols)
    if len(raw) != count * rows * cols:
        raise ValueError(
            f"{path} truncated: expected {count * rows * cols} pixel bytes, "
            f"got {len(raw)}"
        )
    images = np.frombuffer(raw, dtype=np.uint8).reshape(count, 1, rows, cols)
    return images.astype(float) / 255.0


def load_idx_labels(path: Union[str, Path]) -> np.ndarray:
    """Parse an IDX1 label file into an int array (N,)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"IDX label file not found: {path}")
    with _open_maybe_gzip(path) as f:
        magic, count = struct.unpack(">II", f.read(8))
        if magic != _IDX_LABEL_MAGIC:
            raise ValueError(
                f"{path} is not an IDX1 label file (magic {magic}, expected "
                f"{_IDX_LABEL_MAGIC})"
            )
        raw = f.read(count)
    if len(raw) != count:
        raise ValueError(f"{path} truncated: expected {count} labels, got {len(raw)}")
    return np.frombuffer(raw, dtype=np.uint8).astype(int)


def load_mnist_idx(
    images_path: Union[str, Path],
    labels_path: Union[str, Path],
    num_classes: int = 10,
) -> Dataset:
    """Load an MNIST/FMNIST-format (images, labels) IDX pair."""
    images = load_idx_images(images_path)
    labels = load_idx_labels(labels_path)
    if images.shape[0] != labels.shape[0]:
        raise ValueError(
            f"image/label count mismatch: {images.shape[0]} vs {labels.shape[0]}"
        )
    # Standard normalization: center to the dataset mean.
    images = (images - images.mean()) / max(images.std(), 1e-8)
    return Dataset(images, labels, num_classes)


def load_cifar10_binary_batch(path: Union[str, Path]) -> Dataset:
    """Parse one CIFAR-10 *binary-version* batch file.

    Each record is 1 label byte + 3072 pixel bytes (3×32×32, channel-
    major), 10000 records per distribution batch.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"CIFAR-10 batch not found: {path}")
    raw = path.read_bytes()
    record = 1 + 3 * 32 * 32
    if len(raw) % record != 0:
        raise ValueError(
            f"{path} is not a CIFAR-10 binary batch (size {len(raw)} not a "
            f"multiple of {record})"
        )
    count = len(raw) // record
    data = np.frombuffer(raw, dtype=np.uint8).reshape(count, record)
    labels = data[:, 0].astype(int)
    images = data[:, 1:].reshape(count, 3, 32, 32).astype(float) / 255.0
    images = (images - images.mean()) / max(images.std(), 1e-8)
    return Dataset(images, labels, 10)


def load_cifar10_pickle_batch(path: Union[str, Path]) -> Dataset:
    """Parse one CIFAR-10 *python-version* (pickled) batch file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"CIFAR-10 batch not found: {path}")
    with open(path, "rb") as f:
        batch = pickle.load(f, encoding="bytes")
    data_key = b"data" if b"data" in batch else "data"
    label_key = b"labels" if b"labels" in batch else "labels"
    if data_key not in batch or label_key not in batch:
        raise ValueError(f"{path} lacks CIFAR-10 'data'/'labels' entries")
    images = np.asarray(batch[data_key], dtype=np.uint8)
    labels = np.asarray(batch[label_key], dtype=int)
    images = images.reshape(len(labels), 3, 32, 32).astype(float) / 255.0
    images = (images - images.mean()) / max(images.std(), 1e-8)
    return Dataset(images, labels, 10)


def concatenate_datasets(datasets: Sequence[Dataset]) -> Dataset:
    """Stack several compatible datasets into one."""
    if not datasets:
        raise ValueError("datasets is empty")
    num_classes = datasets[0].num_classes
    shape = datasets[0].feature_shape
    for ds in datasets[1:]:
        if ds.num_classes != num_classes or ds.feature_shape != shape:
            raise ValueError("datasets are not compatible")
    x = np.concatenate([ds.x for ds in datasets])
    y = np.concatenate([ds.y for ds in datasets])
    return Dataset(x, y, num_classes)

"""Stateless tensor operations shared by the layer implementations."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` of shape (B,) as a (B, num_classes) matrix."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold a batch of images into convolution columns.

    Parameters
    ----------
    x:
        Input of shape (B, C, H, W).
    kernel, stride, padding:
        Square window geometry.

    Returns
    -------
    cols:
        Array of shape (B, C * kernel * kernel, out_h * out_w).
    out_h, out_w:
        Output spatial dimensions.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)

    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    # Strided sliding-window view: (B, C, out_h, out_w, kernel, kernel)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kernel * kernel, out_h * out_w
    )
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back into an image, summing overlaps.

    Inverse (adjoint) of :func:`im2col`; used for the convolution
    backward pass with respect to the input.
    """
    batch, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)

    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    reshaped = cols.reshape(batch, channels, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += reshaped[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded

"""Stateless tensor operations shared by the layer implementations.

The conv helpers optionally take a :class:`ConvWorkspace` — a per-layer
bag of reusable scratch buffers keyed by geometry — so the hot training
loop stops paying a fresh pad + column allocation on every forward and
a fresh accumulation image on every backward.  Passing no workspace
preserves the original allocate-per-call behaviour bit for bit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


class ConvWorkspace:
    """Reusable conv scratch buffers, keyed by ``(tag, shape)``.

    One workspace belongs to one layer instance and is therefore only
    ever touched by one thread at a time (thread workers clone the whole
    model, process workers own their copy).  A buffer is invalidated
    simply by shape or dtype mismatch — e.g. the smaller final batch of
    an epoch gets its own entry instead of corrupting the full-batch
    one.

    Invalidation rule for callers: an array obtained from a workspace
    (including views of it returned by :func:`im2col` / :func:`col2im`)
    is valid until the owning layer's *next* forward/backward call, which
    overwrites it in place.  The engine's forward→backward→forward
    cadence never violates this; code that retains conv activations or
    gradients across calls must copy them first.

    Workspaces are pure scratch: deep copies and pickles (worker-context
    clones, process-pool shipping, checkpoints) intentionally reset them
    to empty instead of hauling dead buffers around.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}

    def get(
        self,
        tag: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        zero_on_alloc: bool = False,
    ) -> np.ndarray:
        """The cached buffer for ``(tag, shape, dtype)``, allocating once.

        ``zero_on_alloc`` zero-fills *freshly allocated* buffers only —
        the pad buffer needs zero borders, and those are never written
        afterwards, so a cache hit can skip the memset.
        """
        key = (tag, shape, np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            alloc = np.zeros if zero_on_alloc else np.empty
            buffer = alloc(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def __deepcopy__(self, memo) -> "ConvWorkspace":
        return ConvWorkspace()

    def __reduce__(self):
        return (ConvWorkspace, ())


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` of shape (B,) as a (B, num_classes) matrix."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    workspace: Optional[ConvWorkspace] = None,
) -> Tuple[np.ndarray, int, int]:
    """Unfold a batch of images into convolution columns.

    Parameters
    ----------
    x:
        Input of shape (B, C, H, W).
    kernel, stride, padding:
        Square window geometry.
    workspace:
        Reusable pad/column buffers; when given, the returned ``cols``
        is a workspace buffer valid until the next call with the same
        workspace (see :class:`ConvWorkspace`).  Values are bit-identical
        either way.

    Returns
    -------
    cols:
        Array of shape (B, C * kernel * kernel, out_h * out_w).
    out_h, out_w:
        Output spatial dimensions.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)

    if padding > 0:
        if workspace is None:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                mode="constant",
            )
        else:
            # The borders are zeroed once at allocation and never
            # written, so a cache hit only copies the interior.
            padded = workspace.get(
                "pad",
                (
                    batch,
                    channels,
                    height + 2 * padding,
                    width + 2 * padding,
                ),
                x.dtype,
                zero_on_alloc=True,
            )
            padded[:, :, padding : padding + height, padding : padding + width] = x
            x = padded

    # Strided sliding-window view: (B, C, out_h, out_w, kernel, kernel)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    gathered = windows.transpose(0, 1, 4, 5, 2, 3)
    cols_shape = (batch, channels * kernel * kernel, out_h * out_w)
    if workspace is None:
        return np.ascontiguousarray(gathered.reshape(cols_shape)), out_h, out_w
    cols = workspace.get("cols", cols_shape, x.dtype)
    cols.reshape(batch, channels, kernel, kernel, out_h, out_w)[...] = gathered
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    workspace: Optional[ConvWorkspace] = None,
) -> np.ndarray:
    """Fold convolution columns back into an image, summing overlaps.

    Inverse (adjoint) of :func:`im2col`; used for the convolution
    backward pass with respect to the input.  With a ``workspace`` the
    returned gradient is (a view of) a reused accumulation buffer —
    valid until the next call, per the :class:`ConvWorkspace`
    invalidation rule.  The buffer must be re-zeroed every call because
    the fold accumulates into it; this tag is distinct from the im2col
    pad buffer, whose borders rely on staying untouched.
    """
    batch, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)

    padded_shape = (
        batch,
        channels,
        height + 2 * padding,
        width + 2 * padding,
    )
    if workspace is None:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    else:
        padded = workspace.get("col2im", padded_shape, cols.dtype)
        padded.fill(0.0)
    reshaped = cols.reshape(batch, channels, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += reshaped[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded

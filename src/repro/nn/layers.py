"""Feed-forward layers with explicit forward/backward passes.

All layers follow the same contract:

- ``forward(x, training)`` consumes a batch and caches whatever the
  backward pass needs;
- ``backward(grad_out)`` consumes the gradient of the loss w.r.t. the
  layer output, *accumulates* parameter gradients into
  ``Parameter.grad`` and returns the gradient w.r.t. the layer input.

Shapes are batch-first throughout: dense layers work on (B, F) and
convolutional layers on (B, C, H, W).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hotpath import hotpath_enabled
from repro.nn.functional import ConvWorkspace, col2im, conv_output_size, im2col
from repro.nn.parameters import Parameter


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this layer (empty for stateless layers)."""
        return []

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``.

    Weights use He-uniform initialization, appropriate for the ReLU
    activations used throughout the paper's CNNs.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"in/out features must be positive, got {in_features}, {out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        bound = np.sqrt(6.0 / in_features)
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._cache_x: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Dense expects (B, F) input, got shape {x.shape}")
        if training:
            self._cache_x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("backward called before forward(training=True)")
        x = self._cache_x
        self.weight.grad += x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T


class ReLU(Layer):
    """Elementwise rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not hotpath_enabled():
            mask = x > 0
            if training:
                self._mask = mask
            return np.where(mask, x, 0.0)
        # np.maximum is a single fused ufunc pass; inference forwards
        # skip the mask entirely (it only feeds backward).
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return np.where(self._mask, grad_out, 0.0)


class Flatten(Layer):
    """Reshape (B, ...) feature maps to (B, F) vectors."""

    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Conv2d(Layer):
    """2-D convolution over (B, C, H, W) inputs using im2col.

    Square kernels only, which covers the paper's architectures.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        name: str = "conv",
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("conv dimensions must be positive")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        rng = rng if rng is not None else np.random.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        bound = np.sqrt(6.0 / fan_in)
        self.weight = Parameter(
            rng.uniform(
                -bound, bound, size=(out_channels, in_channels, kernel_size, kernel_size)
            ),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.bias")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cache = None
        # Per-layer reusable pad/column/fold buffers (DESIGN.md §9);
        # resets to empty on deepcopy/pickle, so worker clones and
        # checkpoints never ship scratch memory.
        self._workspace = ConvWorkspace()

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expects (B, {self.in_channels}, H, W), got {x.shape}"
            )
        workspace = self._workspace if hotpath_enabled() else None
        cols, out_h, out_w = im2col(
            x, self.kernel_size, self.stride, self.padding, workspace=workspace
        )
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        # (B, out_c, out_h*out_w) = (out_c, k) @ (B, k, out_h*out_w)
        out = np.einsum("ok,bkp->bop", w_mat, cols) + self.bias.value[None, :, None]
        if training:
            self._cache = (x.shape, cols)
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, cols = self._cache
        batch = grad_out.shape[0]
        grad_mat = grad_out.reshape(batch, self.out_channels, -1)

        w_mat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += np.einsum("bop,bkp->ok", grad_mat, cols).reshape(
            self.weight.value.shape
        )
        self.bias.grad += grad_mat.sum(axis=(0, 2))

        grad_cols = np.einsum("ok,bop->bkp", w_mat, grad_mat)
        workspace = self._workspace if hotpath_enabled() else None
        return col2im(
            grad_cols,
            x_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            workspace=workspace,
        )


class MaxPool2d(Layer):
    """Non-overlapping square max pooling (stride defaults to kernel size)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride != self.kernel_size:
            raise NotImplementedError(
                "MaxPool2d currently supports stride == kernel_size only"
            )
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2d expects (B, C, H, W), got {x.shape}")
        batch, channels, height, width = x.shape
        k = self.kernel_size
        out_h = conv_output_size(height, k, k, 0)
        out_w = conv_output_size(width, k, k, 0)
        trimmed = x[:, :, : out_h * k, : out_w * k]
        windows = trimmed.reshape(batch, channels, out_h, k, out_w, k)
        windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h, out_w, k * k
        )
        arg = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
        if training:
            self._cache = (x.shape, arg, out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, arg, out_h, out_w = self._cache
        batch, channels, height, width = x_shape
        k = self.kernel_size
        grad_windows = np.zeros(
            (batch, channels, out_h, out_w, k * k), dtype=grad_out.dtype
        )
        np.put_along_axis(grad_windows, arg[..., None], grad_out[..., None], axis=-1)
        grad_windows = grad_windows.reshape(batch, channels, out_h, out_w, k, k)
        grad_windows = grad_windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h * k, out_w * k
        )
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        grad_in[:, :, : out_h * k, : out_w * k] = grad_windows
        return grad_in

"""Optimizers and learning-rate schedules.

The paper trains with plain SGD (Eq. (4)); momentum and weight decay are
provided for the extension experiments but default to off.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.parameters import Parameter
from repro.utils.validation import check_positive


class LRSchedule:
    """Learning-rate schedule interface: ``lr = schedule(step)``."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate, the paper's default."""

    def __init__(self, lr: float) -> None:
        self.lr = check_positive("lr", lr)

    def __call__(self, step: int) -> float:
        return self.lr


class ExponentialDecayLR(LRSchedule):
    """``lr * decay ** (step / decay_steps)`` — optional extension."""

    def __init__(self, lr: float, decay: float, decay_steps: int = 1) -> None:
        self.lr = check_positive("lr", lr)
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.decay_steps = int(check_positive("decay_steps", decay_steps))

    def __call__(self, step: int) -> float:
        return self.lr * self.decay ** (step / self.decay_steps)


class SGD:
    """Stochastic gradient descent with optional momentum / weight decay."""

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        schedule: Optional[LRSchedule] = None,
    ) -> None:
        check_positive("lr", lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.schedule = schedule if schedule is not None else ConstantLR(lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.step_count = 0
        self._velocity: Dict[int, np.ndarray] = {}

    @property
    def lr(self) -> float:
        """Current learning rate under the schedule."""
        return self.schedule(self.step_count)

    def step(self, parameters: List[Parameter]) -> None:
        """Apply one update to ``parameters`` using their ``.grad``."""
        lr = self.schedule(self.step_count)
        for p in parameters:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                vel = self._velocity.get(id(p))
                if vel is None:
                    vel = np.zeros_like(p.value)
                vel = self.momentum * vel - lr * grad
                self._velocity[id(p)] = vel
                p.value += vel
            else:
                p.value -= lr * grad
        self.step_count += 1

    def step_flat(self, model) -> None:
        """Apply one update through ``model``'s canonical flat buffers.

        Equivalent to ``step(model.parameters())`` but runs as single
        vector ops over :meth:`~repro.nn.model.Model.flat_view` /
        :meth:`~repro.nn.model.Model.grad_view` — every layer updates in
        place through its parameter views, with no per-parameter Python
        loop.  Momentum state is keyed by the model, so interleaving
        :meth:`step` and :meth:`step_flat` for the same parameters is
        not supported.
        """
        lr = self.schedule(self.step_count)
        flat = model.flat_view()
        grad = model.grad_view()
        if self.weight_decay:
            grad = grad + self.weight_decay * flat
        if self.momentum:
            vel = self._velocity.get(id(model))
            if vel is None:
                vel = np.zeros_like(flat)
            vel = self.momentum * vel - lr * grad
            self._velocity[id(model)] = vel
            flat += vel
        else:
            flat -= lr * grad
        self.step_count += 1

    def reset(self) -> None:
        """Clear momentum state and the step counter."""
        self._velocity.clear()
        self.step_count = 0


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) — an extension beyond the
    paper's plain SGD, available for the optional experiments."""

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        check_positive("lr", lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        check_positive("eps", eps)
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._first: Dict[int, np.ndarray] = {}
        self._second: Dict[int, np.ndarray] = {}

    def step(self, parameters: List[Parameter]) -> None:
        """Apply one bias-corrected Adam update."""
        self.step_count += 1
        correction1 = 1.0 - self.beta1**self.step_count
        correction2 = 1.0 - self.beta2**self.step_count
        for p in parameters:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m = self._first.get(id(p))
            v = self._second.get(id(p))
            if m is None:
                m = np.zeros_like(p.value)
                v = np.zeros_like(p.value)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._first[id(p)] = m
            self._second[id(p)] = v
            m_hat = m / correction1
            v_hat = v / correction2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        """Clear moment estimates and the step counter."""
        self._first.clear()
        self._second.clear()
        self.step_count = 0

"""Loss functions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hotpath import hotpath_enabled
from repro.nn.functional import one_hot, softmax


class SoftmaxCrossEntropy:
    """Softmax activation fused with cross-entropy loss.

    ``forward`` returns the mean loss over the batch; ``backward``
    returns the gradient of that mean loss w.r.t. the logits, which is
    the standard ``(softmax - onehot) / B``.
    """

    def __init__(self) -> None:
        self._cache = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (B, C), got shape {logits.shape}")
        labels = np.asarray(labels, dtype=int)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: logits {logits.shape[0]} vs labels {labels.shape[0]}"
            )
        probs = softmax(logits, axis=1)
        batch = logits.shape[0]
        picked = probs[np.arange(batch), labels]
        loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None))))
        self._cache = (probs, labels)
        return loss

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        batch, num_classes = probs.shape
        if not hotpath_enabled():
            return (probs - one_hot(labels, num_classes)) / batch
        # Index-subtract: only the B label entries differ from the
        # softmax, so scattering -1 into them beats materializing (and
        # subtracting) a dense (B, C) one-hot matrix.  Subtracting 0.0
        # is exact, so this is bit-identical to the reference formula.
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        grad /= batch
        return grad

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy for a batch of logits."""
    if logits.shape[0] == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == np.asarray(labels, dtype=int)))

"""Model containers with flat-parameter-vector access for FL aggregation."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.parameters import Parameter


class Model:
    """Base model interface used by the HFL engine.

    The engine never inspects layers; it moves models around as flat
    parameter vectors (:meth:`get_flat` / :meth:`set_flat`) and asks for
    per-minibatch loss gradients (:meth:`loss_and_grad`).
    """

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ---- flat-vector API ------------------------------------------------

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def get_flat(self) -> np.ndarray:
        """Copy all parameters into one flat vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([p.value.ravel() for p in params])

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat`."""
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.num_parameters,):
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected ({self.num_parameters},)"
            )
        offset = 0
        for p in self.parameters():
            p.value[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grad(self) -> np.ndarray:
        """Copy all accumulated gradients into one flat vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([p.grad.ravel() for p in params])

    def zero_grad(self) -> None:
        """Reset accumulated gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ---- training helpers ----------------------------------------------

    def loss_and_grad(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss_fn: Optional[SoftmaxCrossEntropy] = None,
    ) -> Tuple[float, np.ndarray]:
        """One forward/backward pass; returns (loss, flat gradient).

        Gradients are zeroed first, so the returned vector is exactly the
        stochastic gradient ``g_m(w, ξ)`` of Eq. (4) for this minibatch.
        """
        loss_fn = loss_fn if loss_fn is not None else SoftmaxCrossEntropy()
        self.zero_grad()
        logits = self.forward(x, training=True)
        loss = loss_fn.forward(logits, y)
        self.backward(loss_fn.backward())
        return loss, self.get_flat_grad()

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for ``x``, evaluated in inference mode."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        if not outputs:
            return np.zeros(0, dtype=int)
        return np.concatenate(outputs)


class Sequential(Model):
    """Plain stack of layers executed in order."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_parameters})"

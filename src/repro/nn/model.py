"""Model containers with flat-parameter-vector access for FL aggregation.

Flat-buffer aliasing
--------------------
A :class:`Model` owns **one contiguous flat float vector** per buffer
(values and gradients); every layer's :class:`Parameter` is a reshaped
numpy *view* into it.  The engine's canonical operations then collapse
to single vector ops:

- ``load_flat(w)`` — one ``buf[...] = w`` copy updates every layer;
- ``flat_copy()`` — one ``buf.copy()`` reads every layer;
- the Eq. (4) SGD step ``flat -= lr * grad`` updates all layers in
  place with no per-parameter walk at all (see
  :meth:`Model.loss_and_grad`'s fused ``sgd_lr`` mode).

Aliasing is built lazily on first flat access and is *transparent*:
layers and optimizers keep mutating ``Parameter.value`` / ``.grad`` in
place, which numpy views propagate to the canonical buffers.  The alias
state is transient — :meth:`Model.__getstate__` drops it, so pickled /
deep-copied models (thread-pool clones, process-pool workers) ship
plain per-parameter arrays and re-alias lazily on their side, exactly
like :class:`~repro.nn.functional.ConvWorkspace` resets its scratch.

``flat_copy`` / ``load_flat`` are the only parameter-vector surface:
the pre-facade aliases (``get_flat`` / ``set_flat`` /
``get_flat_parameters`` / ``set_flat_parameters``) were removed when
``repro.api`` became the stability contract — see README's migration
table.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.parameters import Parameter

#: The lazily-built alias state: (flat values, flat grads, parameters,
#: per-parameter offsets, total scalar count).
_FlatState = Tuple[np.ndarray, np.ndarray, List[Parameter], List[int], int]


class Model:
    """Base model interface used by the HFL engine.

    The engine never inspects layers; it moves models around as flat
    parameter vectors (:meth:`flat_copy` / :meth:`load_flat`) and asks
    for per-minibatch loss gradients (:meth:`loss_and_grad`).
    """

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ---- canonical flat storage -----------------------------------------

    #: Attributes rebuilt lazily after pickling / deep-copying.  Numpy
    #: serializes a view as a standalone array, which would silently
    #: break the value<->buffer aliasing; dropping the cache instead
    #: makes copies re-alias on first flat access.
    _TRANSIENT_ATTRS = ("_flat_cache",)

    def _flat_state(self) -> _FlatState:
        state = self.__dict__.get("_flat_cache")
        if state is None:
            state = self._alias_parameters()
        return state

    def _alias_parameters(self) -> _FlatState:
        """Build the canonical flat buffers and re-point parameters at them.

        Architectures are static after construction, so the parameter
        walk happens once; current values and gradients are copied into
        the contiguous buffers *before* each parameter is rebound, so
        aliasing never changes observable state.
        """
        params = self.parameters()
        offsets: List[int] = []
        total = 0
        for p in params:
            offsets.append(total)
            total += p.size
        flat = np.empty(total)
        grad = np.empty(total)
        for p, offset in zip(params, offsets):
            stop = offset + p.size
            flat[offset:stop] = p.value.ravel()
            grad[offset:stop] = p.grad.ravel()
            p.alias(
                flat[offset:stop].reshape(p.shape),
                grad[offset:stop].reshape(p.shape),
            )
        state: _FlatState = (flat, grad, params, offsets, total)
        self._flat_cache = state
        return state

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for key in self._TRANSIENT_ATTRS:
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return self._flat_state()[4]

    # ---- flat-vector API ------------------------------------------------

    def flat_view(self) -> np.ndarray:
        """The canonical flat parameter buffer itself.

        Mutations are live: every layer's ``Parameter.value`` is a view
        into this vector, so in-place edits (``view[...] = w``,
        ``view -= lr * g``) update the whole network with no per-layer
        walk.  Do **not** keep the returned array across a pickle /
        deepcopy of the model — copies own fresh buffers.
        """
        return self._flat_state()[0]

    def flat_copy(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy all parameters into one standalone flat vector.

        ``out``, when given, must be a float vector of length
        :attr:`num_parameters`; it is filled in place and returned so
        hot callers can reuse one scratch buffer.
        """
        flat = self._flat_state()[0]
        if out is None:
            return flat.copy()
        if out.shape != flat.shape:
            raise ValueError(
                f"out buffer has shape {out.shape}, expected {flat.shape}"
            )
        out[...] = flat
        return out

    def load_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector: one copy into the canonical
        buffer updates every layer through its views."""
        buf = self._flat_state()[0]
        flat = np.asarray(flat, dtype=float)
        if flat.shape != buf.shape:
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected {buf.shape}"
            )
        buf[...] = flat

    def grad_view(self) -> np.ndarray:
        """The canonical flat gradient buffer (live view, see :meth:`flat_view`)."""
        return self._flat_state()[1]

    def get_flat_grad(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy all accumulated gradients into one flat vector."""
        grad = self._flat_state()[1]
        if out is None:
            return grad.copy()
        if out.shape != grad.shape:
            raise ValueError(
                f"out buffer has shape {out.shape}, expected {grad.shape}"
            )
        out[...] = grad
        return out

    def zero_grad(self) -> None:
        """Reset accumulated gradients on every parameter."""
        self._flat_state()[1].fill(0.0)

    # ---- training helpers ----------------------------------------------

    def loss_and_grad(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss_fn: Optional[SoftmaxCrossEntropy] = None,
        out: Optional[np.ndarray] = None,
        sgd_lr: Optional[float] = None,
    ) -> Tuple[float, np.ndarray]:
        """One forward/backward pass; returns (loss, flat gradient).

        Gradients are zeroed first, so the returned vector is exactly the
        stochastic gradient ``g_m(w, ξ)`` of Eq. (4) for this minibatch.

        ``sgd_lr``, when given, fuses the Eq. (4) update into the call:
        after the backward accumulation the canonical buffer takes one
        ``flat -= sgd_lr * grad`` vector step — every layer updates in
        place through its views, with no flat round-trip.  In fused mode
        the returned gradient is the **live** :meth:`grad_view` (valid
        until the next backward pass) unless ``out`` is supplied.

        ``out``, when given, receives the flat gradient in place and is
        returned — hot callers pass one scratch buffer instead of
        allocating a fresh ``num_parameters``-sized vector per step.
        """
        loss_fn = loss_fn if loss_fn is not None else SoftmaxCrossEntropy()
        flat, grad = self._flat_state()[:2]
        grad.fill(0.0)
        logits = self.forward(x, training=True)
        loss = loss_fn.forward(logits, y)
        self.backward(loss_fn.backward())
        if sgd_lr is not None:
            # w^{t,τ+1} = w^{t,τ} − γ g — same elementwise arithmetic as
            # the reference path's standalone `flat -= lr * grad`.
            flat -= sgd_lr * grad
            if out is None:
                return loss, grad
            out[...] = grad
            return loss, out
        return loss, self.get_flat_grad(out=out)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for ``x``, evaluated in inference mode."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        if not outputs:
            return np.zeros(0, dtype=int)
        return np.concatenate(outputs)


class Sequential(Model):
    """Plain stack of layers executed in order."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_parameters})"

"""Model containers with flat-parameter-vector access for FL aggregation."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.parameters import Parameter


class Model:
    """Base model interface used by the HFL engine.

    The engine never inspects layers; it moves models around as flat
    parameter vectors (:meth:`get_flat` / :meth:`set_flat`) and asks for
    per-minibatch loss gradients (:meth:`loss_and_grad`).
    """

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ---- flat-vector API ------------------------------------------------

    def _flat_layout(self) -> Tuple[List[Parameter], List[int], int]:
        """Cached ``(parameters, offsets, total)`` flat layout.

        Architectures are static after construction, so the parameter
        walk (which :class:`Sequential` re-derives from its layers on
        every call) is done once; the hot per-minibatch flat-vector
        copies then run over precomputed slices.
        """
        layout = getattr(self, "_flat_layout_cache", None)
        if layout is None:
            params = self.parameters()
            offsets: List[int] = []
            total = 0
            for p in params:
                offsets.append(total)
                total += p.size
            layout = (params, offsets, total)
            self._flat_layout_cache = layout
        return layout

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return self._flat_layout()[2]

    def get_flat_parameters(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy all parameters into one flat vector (allocation-free fast path).

        ``out``, when given, must be a float vector of length
        :attr:`num_parameters` and is filled in place and returned —
        callers in the local-update loop reuse one scratch buffer
        instead of paying a fresh concatenate per SGD step.
        """
        params, offsets, total = self._flat_layout()
        if out is None:
            out = np.empty(total)
        elif out.shape != (total,):
            raise ValueError(
                f"out buffer has shape {out.shape}, expected ({total},)"
            )
        for p, offset in zip(params, offsets):
            out[offset : offset + p.size] = p.value.ravel()
        return out

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (allocation-free fast path)."""
        params, offsets, total = self._flat_layout()
        if flat.shape != (total,):
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected ({total},)"
            )
        for p, offset in zip(params, offsets):
            p.value[...] = flat[offset : offset + p.size].reshape(p.shape)

    def get_flat(self) -> np.ndarray:
        """Copy all parameters into one flat vector."""
        return self.get_flat_parameters()

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat`."""
        self.set_flat_parameters(np.asarray(flat, dtype=float))

    def get_flat_grad(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy all accumulated gradients into one flat vector."""
        params, offsets, total = self._flat_layout()
        if out is None:
            out = np.empty(total)
        elif out.shape != (total,):
            raise ValueError(
                f"out buffer has shape {out.shape}, expected ({total},)"
            )
        for p, offset in zip(params, offsets):
            out[offset : offset + p.size] = p.grad.ravel()
        return out

    def zero_grad(self) -> None:
        """Reset accumulated gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ---- training helpers ----------------------------------------------

    def loss_and_grad(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss_fn: Optional[SoftmaxCrossEntropy] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """One forward/backward pass; returns (loss, flat gradient).

        Gradients are zeroed first, so the returned vector is exactly the
        stochastic gradient ``g_m(w, ξ)`` of Eq. (4) for this minibatch.

        ``out``, when given, receives the flat gradient in place and is
        returned — the local-update loop passes one scratch buffer per
        device round instead of allocating a fresh
        ``num_parameters``-sized vector every SGD step.
        """
        loss_fn = loss_fn if loss_fn is not None else SoftmaxCrossEntropy()
        self.zero_grad()
        logits = self.forward(x, training=True)
        loss = loss_fn.forward(logits, y)
        self.backward(loss_fn.backward())
        return loss, self.get_flat_grad(out=out)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for ``x``, evaluated in inference mode."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        if not outputs:
            return np.zeros(0, dtype=int)
        return np.concatenate(outputs)


class Sequential(Model):
    """Plain stack of layers executed in order."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_parameters})"

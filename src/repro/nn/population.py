"""Population-batched local updates: one stacked pass for many devices.

The PR-5 flat-buffer contract makes every model a contiguous flat
vector, so a *population* of D device replicas is naturally one
``(D, P)`` matrix whose row ``d`` is device ``d``'s flat parameters.
This module executes the Eq. (4) local-SGD loop for all of an edge
round's sampled devices at once over that matrix:

- forward/backward run as stacked 3-D ``np.matmul`` calls —
  ``(D, B, F) @ (D, F, H)`` — whose per-slice operands are the *same*
  C-contiguous 2-D arrays the per-device loop feeds BLAS, so every
  device's slice reproduces its per-device result bit for bit;
- the fused SGD step collapses to one ``flat -= lr * grad`` over the
  whole ``(D, P)`` matrix;
- per-layer parameter tensors are zero-copy strided views into the
  population matrix (each device's parameter block is contiguous
  within its row, so a ``(D, *shape)`` view only needs the row stride
  prepended).

Bit-identity discipline (see DESIGN.md §14): every reduction runs along
the **last axis** of a C-contiguous array (where numpy's pairwise
summation behaves identically for a row of a stack and a standalone
vector), scalar reductions over non-contiguous axes (``sum(axis=1)`` of
``(D, B, H)``) accumulate rows in the same order as their 2-D
reference, and the per-device gradient-norm dot runs on the contiguous
``(P,)`` row exactly like the reference ``grad @ grad``.

The per-device loop (``Device.local_update``) remains the runnable
reference twin: population batching only engages on the optimized
engine (``repro.hotpath``) and can be vetoed independently via
:func:`set_population_batching` for three-way parity tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.model import Model, Sequential

_population_batching_enabled = True


def population_batching_enabled() -> bool:
    """Whether the stacked population path may be used (process-global)."""
    return _population_batching_enabled


def set_population_batching(enabled: bool) -> None:
    """Enable/disable population batching (the per-device loop remains)."""
    global _population_batching_enabled
    _population_batching_enabled = bool(enabled)


@contextmanager
def population_batching_disabled():
    """Run a block on the per-device loop even when hotpath is enabled."""
    previous = _population_batching_enabled
    set_population_batching(False)
    try:
        yield
    finally:
        set_population_batching(previous)


def supports_population_batch(model: Model) -> bool:
    """Whether ``model`` is a pure Dense/ReLU/Flatten stack.

    Convolutional and stochastic (Dropout) layers fall back to the
    per-device loop: conv workspaces are per-model scratch state and
    dropout draws from a per-layer stream that stacking would reorder.
    """
    if not isinstance(model, Sequential):
        return False
    return all(
        type(layer) in (Dense, ReLU, Flatten) for layer in model.layers
    )


class _PopDense:
    """Stacked twin of :class:`repro.nn.layers.Dense`.

    ``w`` / ``b`` (and their grads) are strided views into the
    population matrices; slice ``d`` of each is device ``d``'s
    C-contiguous parameter block.
    """

    def __init__(
        self, w: np.ndarray, b: np.ndarray, gw: np.ndarray, gb: np.ndarray
    ) -> None:
        self.w = w
        self.b = b
        self.gw = gw
        self.gb = gb
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        # Per slice: x_d @ W_d + b_d — the reference Dense forward.
        return np.matmul(x, self.w) + self.b[:, None, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        # Per slice: W_d.grad += x_d.T @ g_d (same transposed dgemm the
        # 2-D reference issues), b_d.grad += g_d.sum(axis=0) (axis-1 of
        # the stack reduces rows in the same order as axis-0 of one
        # slice).
        self.gw += np.matmul(x.transpose(0, 2, 1), grad_out)
        self.gb += grad_out.sum(axis=1)
        return np.matmul(grad_out, self.w.transpose(0, 2, 1))


class _PopReLU:
    """Stacked twin of the hot-path ReLU (fused max + cached mask)."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, 0.0)


class _PopFlatten:
    """Stacked twin of Flatten: (D, B, ...) → (D, B, F)."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class _PopSoftmaxCrossEntropy:
    """Stacked twin of the hot-path fused softmax cross-entropy.

    ``forward`` returns the per-device mean losses (shape ``(D,)``);
    every reduction runs along the last axis of a C-contiguous array so
    each slice matches its 2-D reference bit for bit.
    """

    def __init__(self) -> None:
        self._cache = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        shifted = logits - np.max(logits, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / np.sum(exp, axis=-1, keepdims=True)
        picked = np.take_along_axis(probs, labels[:, :, None], axis=2)[:, :, 0]
        losses = -np.mean(
            np.log(np.clip(picked, 1e-12, None)), axis=-1
        )
        self._cache = (probs, labels)
        return losses

    def backward(self) -> np.ndarray:
        probs, labels = self._cache
        pop, batch, _classes = probs.shape
        grad = probs.copy()
        grad[
            np.arange(pop)[:, None], np.arange(batch)[None, :], labels
        ] -= 1.0
        grad /= batch
        return grad


class PopulationModel:
    """D stacked replicas of one Dense/ReLU/Flatten model.

    Owns two ``(capacity, P)`` matrices (values and grads) whose rows
    are per-device flat vectors in the template model's canonical
    parameter order, growing geometrically as rounds need more rows.
    :meth:`local_updates` runs the full fused Eq. (4) loop for the
    leading ``D`` rows.
    """

    def __init__(self, template: Model, capacity: int = 0) -> None:
        if not supports_population_batch(template):
            raise ValueError(
                "population batching supports Sequential Dense/ReLU/Flatten "
                f"models only, got {type(template).__name__}"
            )
        # One parameter walk pins the canonical flat layout; the
        # template's own buffers are never touched.
        params = template.parameters()
        self._layout = []  # (layer kind, [(offset, shape), ...])
        offset = 0
        cursor = 0
        for layer in template.layers:
            layer_params = layer.parameters()
            spans = []
            for p in layer_params:
                if p is not params[cursor]:  # pragma: no cover - defensive
                    raise RuntimeError("parameter order diverged from layout")
                spans.append((offset, p.shape))
                offset += p.size
                cursor += 1
            self._layout.append((type(layer), spans))
        self.num_parameters = offset
        self.capacity = 0
        self.flat = np.empty((0, self.num_parameters))
        self.grad = np.empty((0, self.num_parameters))
        if capacity:
            self.ensure(capacity)

    def ensure(self, population: int) -> None:
        """Grow the population matrices to hold ``population`` rows."""
        if population <= self.capacity:
            return
        new_cap = max(population, 2 * self.capacity)
        self.flat = np.empty((new_cap, self.num_parameters))
        self.grad = np.empty((new_cap, self.num_parameters))
        self.capacity = new_cap

    def _view(
        self, base: np.ndarray, population: int, offset: int, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """A writable ``(population, *shape)`` view of one parameter block.

        Each device's block is contiguous within its row, so the view
        is the block's C-order strides with the row stride prepended —
        no copy, and slice ``d`` is exactly the 2-D array the reference
        layer owns.
        """
        itemsize = base.itemsize
        strides = [base.strides[0]]
        span = itemsize
        for dim in reversed(shape):
            strides.insert(1, span * 1)
            span *= dim
        # Rebuild C-order strides for the block itself.
        block_strides = []
        running = itemsize
        for dim in reversed(shape):
            block_strides.insert(0, running)
            running *= dim
        return as_strided(
            base[:population, offset:],
            shape=(population,) + tuple(shape),
            strides=(base.strides[0],) + tuple(block_strides),
        )

    def _build_layers(self, population: int) -> List[object]:
        layers: List[object] = []
        for kind, spans in self._layout:
            if kind is Dense:
                (w_off, w_shape), (b_off, b_shape) = spans
                layers.append(
                    _PopDense(
                        self._view(self.flat, population, w_off, w_shape),
                        self._view(self.flat, population, b_off, b_shape),
                        self._view(self.grad, population, w_off, w_shape),
                        self._view(self.grad, population, b_off, b_shape),
                    )
                )
            elif kind is ReLU:
                layers.append(_PopReLU())
            else:
                layers.append(_PopFlatten())
        return layers

    def local_updates(
        self,
        start_model: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        learning_rate: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the fused Eq. (4) loop for a stacked population.

        ``xs`` is ``(I, D, B, ...)`` and ``ys`` ``(I, D, B)`` — all I
        pre-drawn minibatches for each of D devices.  Returns
        ``(final_models (D, P), losses (D, I), grad_sq_norms (D, I))``,
        each row bit-identical to the per-device reference loop.
        """
        epochs, population = xs.shape[0], xs.shape[1]
        self.ensure(population)
        flat = self.flat[:population]
        grad = self.grad[:population]
        flat[...] = start_model[None, :]
        layers = self._build_layers(population)
        loss_fn = _PopSoftmaxCrossEntropy()
        losses = np.empty((population, epochs))
        grad_sq = np.empty((population, epochs))
        for tau in range(epochs):
            grad.fill(0.0)
            out = xs[tau]
            for layer in layers:
                out = layer.forward(out)
            losses[:, tau] = loss_fn.forward(out, ys[tau])
            g = loss_fn.backward()
            for layer in reversed(layers):
                g = layer.backward(g)
            # w^{t,τ+1} = w^{t,τ} − γ g for every device at once.
            flat -= learning_rate * grad
            for d in range(population):
                row = grad[d]
                grad_sq[d, tau] = float(row @ row)
        return flat.copy(), losses, grad_sq

"""The model architectures of the paper's evaluation, plus scaled variants.

Section IV-A.2 of the paper:

- MNIST / FMNIST: CNN with 2 convolutional layers and 2 fully connected
  layers;
- CIFAR10: CNN with 3 convolutional layers and 2 fully connected layers.

Exact channel widths are not given in the paper, so we use conventional
small widths.  Because this reproduction trains in pure numpy on CPU,
each builder also accepts reduced input resolutions (the synthetic data
generator can emit 28×28/32×32 "paper" shapes or smaller benchmark
shapes), and :func:`build_model` exposes a ``scale`` knob that shrinks
channel widths proportionally without changing the topology.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.model import Sequential
from repro.utils.rng import RngLike, as_generator


def _pooled(size: int, times: int) -> int:
    for _ in range(times):
        size //= 2
    if size <= 0:
        raise ValueError(f"input too small for {times} 2x2 pooling stages")
    return size


def build_mnist_cnn(
    input_shape: Tuple[int, int, int] = (1, 28, 28),
    num_classes: int = 10,
    width: int = 8,
    hidden: int = 64,
    rng: RngLike = None,
) -> Sequential:
    """2 conv + 2 FC CNN used for the MNIST / FMNIST tasks.

    ``width`` is the channel count of the first conv layer (the second
    doubles it); ``hidden`` is the width of the first FC layer.
    """
    rng = as_generator(rng)
    channels, height, width_px = input_shape
    out_h = _pooled(height, 2)
    out_w = _pooled(width_px, 2)
    return Sequential(
        [
            Conv2d(channels, width, kernel_size=3, padding=1, rng=rng, name="conv1"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width * 2, kernel_size=3, padding=1, rng=rng, name="conv2"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(width * 2 * out_h * out_w, hidden, rng=rng, name="fc1"),
            ReLU(),
            Dense(hidden, num_classes, rng=rng, name="fc2"),
        ]
    )


def build_cifar_cnn(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width: int = 8,
    hidden: int = 64,
    rng: RngLike = None,
) -> Sequential:
    """3 conv + 2 FC CNN used for the CIFAR10 task."""
    rng = as_generator(rng)
    channels, height, width_px = input_shape
    out_h = _pooled(height, 3)
    out_w = _pooled(width_px, 3)
    return Sequential(
        [
            Conv2d(channels, width, kernel_size=3, padding=1, rng=rng, name="conv1"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width * 2, kernel_size=3, padding=1, rng=rng, name="conv2"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(
                width * 2, width * 4, kernel_size=3, padding=1, rng=rng, name="conv3"
            ),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(width * 4 * out_h * out_w, hidden, rng=rng, name="fc1"),
            ReLU(),
            Dense(hidden, num_classes, rng=rng, name="fc2"),
        ]
    )


def build_mlp(
    input_dim: int,
    num_classes: int = 10,
    hidden: Tuple[int, ...] = (64,),
    rng: RngLike = None,
) -> Sequential:
    """Simple MLP over flat features — the fast substrate for unit tests
    and for the large benchmark sweeps where a CNN would dominate runtime.
    """
    rng = as_generator(rng)
    layers = []
    prev = input_dim
    for i, h in enumerate(hidden):
        layers.append(Dense(prev, h, rng=rng, name=f"fc{i + 1}"))
        layers.append(ReLU())
        prev = h
    layers.append(Dense(prev, num_classes, rng=rng, name=f"fc{len(hidden) + 1}"))
    return Sequential(layers)


def build_logistic_regression(
    input_dim: int, num_classes: int = 10, rng: RngLike = None
) -> Sequential:
    """Multinomial logistic regression — convex, used in theory benches."""
    rng = as_generator(rng)
    return Sequential([Dense(input_dim, num_classes, rng=rng, name="linear")])


_SCALE_WIDTHS = {"paper": (8, 64), "small": (4, 32), "tiny": (2, 16)}


def build_model(
    task: str,
    input_shape: Tuple[int, ...],
    num_classes: int = 10,
    scale: str = "small",
    rng: RngLike = None,
) -> Sequential:
    """Build the paper architecture for ``task`` at the given ``scale``.

    Parameters
    ----------
    task:
        ``"mnist"``, ``"fmnist"`` (2-conv CNN), ``"cifar10"`` (3-conv
        CNN) or ``"mlp"`` (flat-feature fallback).
    input_shape:
        (C, H, W) for CNN tasks, (F,) for ``"mlp"``.
    scale:
        ``"paper"`` / ``"small"`` / ``"tiny"`` channel-width presets.
    """
    if scale not in _SCALE_WIDTHS:
        raise ValueError(f"unknown scale {scale!r}; choose from {list(_SCALE_WIDTHS)}")
    width, hidden = _SCALE_WIDTHS[scale]
    if task in ("mnist", "fmnist"):
        return build_mnist_cnn(
            tuple(input_shape), num_classes, width=width, hidden=hidden, rng=rng
        )
    if task == "cifar10":
        return build_cifar_cnn(
            tuple(input_shape), num_classes, width=width, hidden=hidden, rng=rng
        )
    if task == "mlp":
        (input_dim,) = input_shape
        return build_mlp(input_dim, num_classes, hidden=(hidden,), rng=rng)
    raise ValueError(f"unknown task {task!r}")

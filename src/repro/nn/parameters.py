"""Trainable parameter container."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    Layers own their :class:`Parameter` objects; optimizers mutate
    ``value`` in place using ``grad``.  ``grad`` is reset by
    :meth:`zero_grad` before each backward pass.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self):
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def alias(self, value_view: np.ndarray, grad_view: np.ndarray) -> None:
        """Rebind storage to externally-owned array views.

        Called by :meth:`repro.nn.model.Model.flat_view` machinery: the
        model owns one contiguous flat vector per buffer and every
        parameter becomes a reshaped view into it, so a single
        ``flat -= lr * grad`` updates all layers in place.  The views
        must already hold this parameter's current value and gradient —
        the caller copies them in before aliasing.  Layers and
        optimizers only ever mutate ``value`` / ``grad`` in place
        (``+=``, ``[...] =``), which preserves the aliasing.
        """
        if value_view.shape != self.value.shape:
            raise ValueError(
                f"value view has shape {value_view.shape}, "
                f"expected {self.value.shape}"
            )
        if grad_view.shape != self.grad.shape:
            raise ValueError(
                f"grad view has shape {grad_view.shape}, "
                f"expected {self.grad.shape}"
            )
        self.value = value_view
        self.grad = grad_view

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"

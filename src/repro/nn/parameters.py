"""Trainable parameter container."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    Layers own their :class:`Parameter` objects; optimizers mutate
    ``value`` in place using ``grad``.  ``grad`` is reset by
    :meth:`zero_grad` before each backward pass.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self):
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"

"""A small, self-contained numpy neural-network substrate.

The MACH paper trains its federated models with PyTorch; that framework
is unavailable in this reproduction environment, so :mod:`repro.nn`
provides the minimal training stack the paper needs: dense and
convolutional layers, ReLU / max-pool, softmax cross-entropy, plain SGD
and the exact CNN architectures of the evaluation section (2 conv + 2 FC
for MNIST/FMNIST, 3 conv + 2 FC for CIFAR10).

The federated-learning engine interacts with models exclusively through
flat parameter vectors and per-step stochastic gradients, which is all
the sampling algorithms observe.  A :class:`Model` owns one contiguous
flat buffer per tensor kind and every layer parameter is a numpy view
into it: :meth:`Model.load_flat` installs weights with one copy,
:meth:`Model.flat_copy` exports them, and :meth:`Model.flat_view` /
:meth:`Model.grad_view` expose the live buffers so a whole-network SGD
step is a single vector op.  The pre-facade aliases (``get_flat`` /
``set_flat`` / ``get_flat_parameters`` / ``set_flat_parameters``) are
gone — see README's migration table.
"""

from repro.nn.functional import ConvWorkspace, one_hot, softmax
from repro.nn.layers import (
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.model import Model, Sequential
from repro.nn.optim import SGD, Adam, ConstantLR, ExponentialDecayLR, LRSchedule
from repro.nn.architectures import (
    build_cifar_cnn,
    build_logistic_regression,
    build_mlp,
    build_mnist_cnn,
    build_model,
)
from repro.nn.parameters import Parameter

__all__ = [
    "Conv2d",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool2d",
    "ReLU",
    "SoftmaxCrossEntropy",
    "Model",
    "Sequential",
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantLR",
    "ExponentialDecayLR",
    "Parameter",
    "ConvWorkspace",
    "one_hot",
    "softmax",
    "build_mnist_cnn",
    "build_cifar_cnn",
    "build_mlp",
    "build_logistic_regression",
    "build_model",
]

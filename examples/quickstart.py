"""Quickstart: train one HFL model with MACH on a mobile-device trace.

Builds a small federated scenario end-to-end through the public API —
Non-IID device datasets, a Markov mobility trace, the paper's CNN at a
reduced resolution — and runs Algorithm 1 with the MACH sampler,
printing the accuracy trajectory and the time-to-target-accuracy.

Run:  python examples/quickstart.py
"""

from repro import (
    HFLConfig,
    HFLTrainer,
    MACHSampler,
    MarkovMobilityModel,
    build_model,
    make_federated_task,
)


def main() -> None:
    # 1) Federated data: 20 mobile devices with long-tailed Non-IID
    #    class distributions, plus a held-out test set drawn from the
    #    same global distribution.
    devices, test = make_federated_task(
        "mnist",
        num_devices=20,
        samples_per_device=50,
        test_samples=300,
        image_size=12,   # reduced resolution; None keeps the 28x28 paper shape
        alpha=0.2,       # Dirichlet concentration: lower = more heterogeneous
        imbalance=6.0,   # global long-tail ratio between head and tail class
        rng=0,
    )

    # 2) Mobility: each device walks a stay-or-jump Markov chain over
    #    4 edges (the paper's Telecom-trace substitute is also available
    #    via repro.TelecomTraceGenerator).
    mobility = MarkovMobilityModel.stay_or_jump(4, stay_probability=0.8, rng=1)
    trace = mobility.sample_trace(num_steps=150, num_devices=20, rng=2)
    print(f"trace: {trace.num_devices} devices / {trace.num_edges} edges, "
          f"handover rate {trace.handover_rate():.2f}")

    # 3) HFL with MACH device sampling (Algorithm 1).
    config = HFLConfig(
        learning_rate=0.02,
        local_epochs=5,          # I
        batch_size=8,
        sync_interval=5,         # T_g
        participation_fraction=0.5,
        seed=3,
    )
    trainer = HFLTrainer(
        model_factory=lambda rng: build_model("mnist", (1, 12, 12),
                                              scale="tiny", rng=rng),
        device_datasets=devices,
        trace=trace,
        sampler=MACHSampler(),
        config=config,
        test_dataset=test,
    )
    result = trainer.run(num_steps=150, target_accuracy=0.85)

    # 4) Inspect the outcome.
    print("\nstep  accuracy")
    for step, acc in zip(result.history.steps, result.history.accuracy):
        print(f"{step:4d}  {acc:.3f}")
    reached = result.time_to_accuracy(0.85)
    if reached is not None:
        print(f"\nreached 85% accuracy at time step {reached}")
    else:
        print("\ntarget accuracy not reached within the horizon")
    print(f"mean participants per step: {result.mean_participants_per_step:.1f}")


if __name__ == "__main__":
    main()

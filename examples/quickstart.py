"""Quickstart: train one HFL model with MACH on a mobile-device trace.

Describes a small federated scenario — Non-IID device datasets, a
stay-or-jump Markov mobility trace, the paper's CNN at a reduced
resolution — as one :class:`ScenarioConfig` and runs Algorithm 1 with
the MACH sampler through the stable :mod:`repro.api` facade, printing
the accuracy trajectory and the time-to-target-accuracy.

Run:  python examples/quickstart.py
"""

import repro.api as api


def main() -> None:
    # One ScenarioConfig describes the whole experiment: the federated
    # workload (20 mobile devices with long-tailed Non-IID class
    # distributions plus a held-out test set), the mobility model
    # (each device walks a stay-or-jump Markov chain over 4 edges; the
    # paper's Telecom-trace substitute is trace_kind="telecom"), and
    # the Algorithm 1 hyperparameters.
    scenario = api.ScenarioConfig(
        task="mnist",
        num_devices=20,
        num_edges=4,
        samples_per_device=50,
        test_samples=300,
        image_size=12,         # reduced resolution; None keeps 28x28
        model_scale="tiny",
        dirichlet_alpha=0.2,   # lower = more heterogeneous devices
        imbalance=6.0,         # global head/tail class ratio
        trace_kind="markov",
        stay_probability=0.8,
        learning_rate=0.02,
        local_epochs=5,        # I
        batch_size=8,
        sync_interval=5,       # T_g
        participation_fraction=0.5,
        num_steps=150,
        target_accuracy=0.85,
        seed=3,
    )

    # Run it synchronously with MACH device sampling (Algorithm 1).
    # api.submit(...) runs the same scenario on an in-process
    # coordinator instead, and `runner serve` + api.attach(url) on a
    # remote one — see examples/service_quickstart.py.
    result = api.run_scenario(scenario, sampler="mach")

    # Inspect the outcome.
    print("step  accuracy")
    for step, acc in zip(result.history.steps, result.history.accuracy):
        print(f"{step:4d}  {acc:.3f}")
    reached = result.time_to_accuracy(0.85)
    if reached is not None:
        print(f"\nreached 85% accuracy at time step {reached}")
    else:
        print("\ntarget accuracy not reached within the horizon")
    print(f"mean participants per step: {result.mean_participants_per_step:.1f}")


if __name__ == "__main__":
    main()

"""Extend the library with a custom device-sampling strategy.

Shows the full extension surface of :class:`repro.Sampler`: a
"proportional-to-loss-squared" strategy that implements the life-cycle
hooks (setup / probabilities / observe_participation / on_global_sync),
honours the Eq. (3) channel-capacity constraint via the shared
water-filling helper, and is then raced against MACH and uniform
sampling on a common scenario.

Run:  python examples/custom_sampler.py
"""

from typing import Optional, Sequence

import numpy as np

from repro import (
    HFLConfig,
    HFLTrainer,
    MACHSampler,
    MarkovMobilityModel,
    Sampler,
    UniformSampler,
    build_model,
    make_federated_task,
)
from repro.sampling.base import DeviceProfile, capped_proportional_probabilities


class LossSquaredSampler(Sampler):
    """Sample devices proportionally to their squared recent mean loss.

    Squaring sharpens the preference for struggling devices compared to
    the plain statistical sampler; between cloud syncs the estimates are
    frozen, mirroring MACH's T_g update clock.
    """

    name = "loss_squared"

    def __init__(self) -> None:
        self._live: Optional[np.ndarray] = None     # updated on observation
        self._frozen: Optional[np.ndarray] = None   # used for decisions

    def setup(self, profiles: Sequence[DeviceProfile], num_edges: int) -> None:
        size = max(p.device_id for p in profiles) + 1
        self._live = np.ones(size)
        self._frozen = np.ones(size)

    def probabilities(self, t, edge, device_indices, capacity):
        weights = self._frozen[np.asarray(device_indices, dtype=int)] ** 2
        return capped_proportional_probabilities(weights, capacity)

    def observe_participation(self, t, device, grad_sq_norms, mean_loss):
        self._live[device] = max(float(mean_loss), 1e-6)

    def on_global_sync(self, t):
        self._frozen = self._live.copy()


def race(sampler, devices, test, trace, seed=0):
    trainer = HFLTrainer(
        model_factory=lambda rng: build_model("mlp", (16,), scale="tiny", rng=rng),
        device_datasets=devices,
        trace=trace,
        sampler=sampler,
        config=HFLConfig(
            learning_rate=0.08, local_epochs=10, batch_size=8,
            sync_interval=5, participation_fraction=0.4, seed=seed,
        ),
        test_dataset=test,
    )
    return trainer.run(num_steps=100, target_accuracy=0.70)


def main() -> None:
    devices, test = make_federated_task(
        "blobs", num_devices=30, samples_per_device=50, test_samples=300,
        alpha=0.1, imbalance=8.0, separation=0.9, noise=1.2, rng=0,
    )
    trace = MarkovMobilityModel.stay_or_jump(5, 0.8, rng=1).sample_trace(100, 30, rng=2)

    print(f"{'sampler':<16}{'steps to 70%':>14}{'final acc':>12}")
    for sampler in (LossSquaredSampler(), MACHSampler(), UniformSampler()):
        result = race(sampler, devices, test, trace)
        reached = result.time_to_accuracy(0.70)
        print(
            f"{sampler.name:<16}"
            f"{str(reached) if reached else 'not reached':>14}"
            f"{result.history.final_accuracy():>12.3f}"
        )


if __name__ == "__main__":
    main()

"""Service quickstart: drive the always-on coordinator through repro.api.

Three ways to run the same scenario, by increasing ambition:

1. ``api.run_scenario`` — synchronous, blocks until done (see
   examples/quickstart.py).
2. ``api.submit`` — asynchronous, in-process: the run executes on a
   background coordinator while you stream per-round metrics, pause,
   resume or stop it.  This is what this example shows.
3. ``api.attach(url)`` — the same handle surface against a remote
   coordinator started with::

       PYTHONPATH=src python -m repro.experiments.runner serve --port 8765

Run:  python examples/service_quickstart.py
"""

import repro.api as api


def main() -> None:
    # Submit a small preset to the process-wide default coordinator.
    # The call returns immediately with a RunHandle; the run executes
    # on the coordinator's dispatcher thread.
    handle = api.submit(
        preset="blobs-bench",
        sampler="mach",
        num_steps=20,
        eval_cadence="fixed",
    )
    print(f"submitted {handle.run_id} (state={handle.status().state})")

    # Stream round metrics live as the incremental pipeline finishes
    # each step — follow=True blocks until the run is terminal.
    for round_status in handle.stream(follow=True):
        marker = " <- synced" if round_status.synced else ""
        acc = (
            f" acc={round_status.accuracy:.3f}"
            if round_status.accuracy is not None
            else ""
        )
        print(
            f"step {round_status.step:3d}  "
            f"participants={round_status.participants:2d}{acc}{marker}"
        )

    # A terminal run has a JSON-safe summary (state, final accuracy,
    # SHA-256 of the final cloud model — the bit-identity fingerprint)
    # and, in-process only, the full TrainingResult.
    summary = handle.summary()
    state = handle.status().state
    print(f"\nstate={state} final_acc={summary.final_accuracy:.3f}")
    print(f"cloud model sha256: {summary.cloud_model_sha256[:16]}...")
    result = handle.result()
    print(f"steps run: {result.steps_run}")

    # Remote is the same surface minus result(): api.attach(url) then
    # client.submit/stream/summary — flat model vectors never cross
    # the wire, the summary's SHA-256 stands in for them.


if __name__ == "__main__":
    main()

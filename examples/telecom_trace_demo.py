"""Build and inspect a synthetic Shanghai-Telecom-style mobility trace.

Walks the paper's trace-preprocessing pipeline step by step:

1. synthesize a base-station deployment with urban hotspots and
   heavy-tailed station popularity;
2. generate per-device access records (timestamped device↔station
   sessions, the schema of the Shanghai Telecom dataset);
3. cluster stations into main edges (the paper's "neighboring base
   stations cluster together to form several main base stations");
4. discretize records into the per-time-step device→edge indicator
   B^t_{n,m} and inspect its statistics;
5. fit a Markov mobility model to the trace — the predictive fallback
   the paper cites for unknown future trajectories.

Run:  python examples/telecom_trace_demo.py
"""

import numpy as np

from repro import MarkovMobilityModel, TelecomTraceGenerator


def main() -> None:
    generator = TelecomTraceGenerator(
        num_devices=100,
        num_stations=400,
        anchors_per_device=2,     # home + work
        anchor_dwell_bias=0.7,    # 70% of sessions at personal anchors
        mean_dwell_hours=1.5,
        rng=0,
    )

    # -- access records --------------------------------------------------
    records = generator.generate_records(duration_hours=72.0)
    durations = np.array([r.duration for r in records])
    print(f"{len(records)} access records over 72h for 100 devices")
    print(
        f"session duration: median {np.median(durations):.2f}h, "
        f"p95 {np.percentile(durations, 95):.2f}h"
    )
    station_load = np.zeros(400)
    for record in records:
        station_load[record.station_id] += record.duration
    top10 = np.sort(station_load)[::-1][:40].sum() / station_load.sum()
    print(f"top-10% stations carry {top10:.0%} of total dwell time")

    # -- station clustering → main edges ---------------------------------
    edge_map = generator.build_edge_map(num_edges=10)
    print(f"\nstations per main edge: {edge_map.stations_per_edge().tolist()}")

    # -- discretization into B^t ------------------------------------------
    trace = generator.records_to_trace(
        records, edge_map, num_steps=144, step_hours=0.5, num_devices=100
    )
    trace.validate()  # Eq. (1): each device in exactly one edge per step
    print(f"\ntrace: {trace.num_steps} steps x {trace.num_devices} devices")
    print(f"mean devices per edge: {np.round(trace.occupancy(), 1).tolist()}")
    print(f"handover rate: {trace.handover_rate():.3f}")

    # -- Markov mobility model fit ----------------------------------------
    transition = trace.empirical_transition_matrix()
    model = MarkovMobilityModel(transition)
    pi = model.stationary_distribution()
    print(f"\nfitted Markov chain stationary distribution: {np.round(pi, 3)}")
    print(
        "3-step occupancy prediction for a device now at edge 0: "
        f"{np.round(model.predict(0, steps=3), 3)}"
    )


if __name__ == "__main__":
    main()

"""Compare the five device-sampling strategies on one workload.

Reproduces a single-task slice of the paper's Figure 3: the same data,
trace and model initialization are shared across MACH, MACH-P, uniform,
class-balance and statistical sampling, and the time-to-target-accuracy
is reported per strategy, including the paper's headline "% of time
steps MACH saves versus the best basic sampler".

Run:  python examples/sampling_comparison.py [task]
      (task ∈ {mnist, fmnist, cifar10, blobs}; default blobs — the
       fastest; the image tasks take a few minutes each on CPU)
"""

import sys

from repro.experiments import PRESETS, run_comparison


def main() -> None:
    task = sys.argv[1] if len(sys.argv) > 1 else "blobs"
    preset = f"{task}-bench"
    if preset not in PRESETS:
        raise SystemExit(
            f"unknown task {task!r}; choose from mnist, fmnist, cifar10, blobs"
        )
    config = PRESETS[preset]
    print(
        f"running 5 samplers on {task}: {config.num_devices} devices, "
        f"{config.num_edges} edges, {config.num_steps} steps "
        f"(target accuracy {config.target_accuracy})"
    )
    report = run_comparison(config, repeats=1)
    print()
    print(report.render())
    print()
    for name in report.results:
        steps, acc = report.mean_accuracy_curve(name)
        tail = " ".join(f"{a:.2f}" for a in acc[-8:])
        print(f"{name:>14} final stretch: {tail}")


if __name__ == "__main__":
    main()

"""Time-averaged channel budgets: let MACH burst, repay later.

The paper's Problem 1 poses the channel constraint as *time-averaged*:
``E[Σ 1^t_{m,n}] ≤ K_n`` on average over the horizon, not per step.
:class:`repro.BudgetedSampler` wraps any strategy with a Lyapunov
virtual-queue controller that relaxes the per-step budget when the
queue is short and tightens it while debt is repaid.

This example wraps MACH, runs it against per-step-constrained MACH, and
verifies the long-run average participation still meets K_n.

Run:  python examples/budgeted_sampling.py
"""

import numpy as np

from repro import (
    BudgetedSampler,
    HFLConfig,
    HFLTrainer,
    MACHSampler,
    MarkovMobilityModel,
    TelemetryRecorder,
    build_model,
    make_federated_task,
)


def run(sampler, devices, test, trace):
    telemetry = TelemetryRecorder()
    trainer = HFLTrainer(
        model_factory=lambda rng: build_model("mlp", (16,), scale="tiny", rng=rng),
        device_datasets=devices,
        trace=trace,
        sampler=sampler,
        config=HFLConfig(
            learning_rate=0.08, local_epochs=10, batch_size=8,
            sync_interval=5, participation_fraction=0.4, seed=0,
        ),
        test_dataset=test,
        telemetry=telemetry,
    )
    result = trainer.run(num_steps=120, target_accuracy=0.70)
    return result, telemetry


def main() -> None:
    devices, test = make_federated_task(
        "blobs", num_devices=30, samples_per_device=50, test_samples=300,
        alpha=0.1, imbalance=8.0, separation=0.9, noise=1.2, rng=0,
    )
    trace = MarkovMobilityModel.stay_or_jump(5, 0.8, rng=1).sample_trace(
        120, 30, rng=2
    )
    capacity = 0.4 * 30 / 5  # K_n per edge

    print(f"{'sampler':<22}{'steps to 70%':>14}{'mean participants':>20}")
    for sampler in (MACHSampler(), BudgetedSampler(MACHSampler())):
        result, _telemetry = run(sampler, devices, test, trace)
        reached = result.time_to_accuracy(0.70)
        print(
            f"{sampler.name:<22}"
            f"{str(reached) if reached else 'not reached':>14}"
            f"{result.mean_participants_per_step:>20.2f}"
        )
        if isinstance(sampler, BudgetedSampler):
            print("\nper-edge realized average cost vs K_n "
                  f"(capacity {capacity:.1f}):")
            for edge, cost in sorted(sampler.average_costs().items()):
                queue = sampler.queue_lengths()[edge]
                print(f"  edge {edge}: avg Σq = {cost:.2f}, queue = {queue:.2f}")


if __name__ == "__main__":
    main()

"""Figure 3 — time-to-accuracy performance over all learning tasks.

Regenerates the paper's headline comparison: accuracy-vs-time-step
curves for MACH / MACH-P / US / CS / SS on the three image tasks, and
the percentage of time steps MACH saves against the best basic sampler
(the paper reports 25.00%–56.86%).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_repeats, bench_tasks, save_report
from repro.experiments import fig3


@pytest.mark.parametrize("task", bench_tasks())
def test_fig3_task(benchmark, task, preset, repeats):
    def once():
        return fig3.run(preset=preset, tasks=(task,), repeats=repeats)

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    comparison = report.reports[task]
    save_report(f"fig3_{task}", report.render())

    # Shape assertions (weak, seed-robust): every sampler trains, and
    # MACH reaches the target whenever any basic sampler does.
    for name, runs in comparison.results.items():
        for run in runs:
            assert run.history.final_accuracy() > run.history.accuracy[0]
    mach_time = comparison.mean_time_to_accuracy("mach")
    _base_name, base_time = comparison.best_baseline()
    if base_time is not None:
        assert mach_time is not None, "MACH missed a target a baseline reached"
    benchmark.extra_info["mach_steps"] = mach_time
    benchmark.extra_info["best_baseline_steps"] = base_time
    benchmark.extra_info["mach_savings_percent"] = comparison.mach_savings_percent()

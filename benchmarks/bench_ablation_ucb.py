"""ABL-UCB — experience-updating design ablation (DESIGN.md).

Compares MACH's UCB exploitation window (``recent`` vs the literal
Eq.-(15) ``lifetime`` max) against the MACH-P oracle (true norms, no
estimation) and uniform sampling (no experience at all).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.experiments import ablations


def test_ablation_ucb(benchmark, preset, repeats):
    def once():
        return ablations.run_ucb_ablation(preset=preset, repeats=repeats)

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("ablation_ucb", report.render())
    for label, steps, acc in report.rows:
        benchmark.extra_info[label] = {"steps": steps, "final_accuracy": acc}

"""Micro-benchmarks of the performance-critical substrate operations.

These use pytest-benchmark's real timing loop (multiple rounds) and
track the hot paths of one HFL time step: local SGD updates, the im2col
convolution, edge-strategy computation, participation draws, trace
generation and aggregation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.edge_sampling import EdgeSamplingConfig, edge_strategy
from repro.data.synthetic import make_blobs_dataset, make_synthetic_image_dataset
from repro.hfl.device import Device, LocalUpdateResult
from repro.hfl.edge import Edge
from repro.mobility.markov import MarkovMobilityModel
from repro.mobility.telecom import TelecomTraceGenerator
from repro.nn.architectures import build_mlp, build_mnist_cnn
from repro.nn.functional import im2col


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_local_update_mlp(benchmark, rng):
    device = Device(0, make_blobs_dataset(60, rng=rng))
    model = build_mlp(16, hidden=(16,), rng=rng)
    start = model.flat_copy()
    benchmark(
        device.local_update, start, model, 5, 0.05, 8, np.random.default_rng(1)
    )


def test_bench_local_update_cnn(benchmark, rng):
    dataset = make_synthetic_image_dataset("mnist", 60, image_size=12, rng=rng)
    device = Device(0, dataset)
    model = build_mnist_cnn((1, 12, 12), width=2, hidden=16, rng=rng)
    start = model.flat_copy()
    benchmark(
        device.local_update, start, model, 5, 0.05, 8, np.random.default_rng(1)
    )


def test_bench_im2col(benchmark, rng):
    x = rng.normal(size=(8, 3, 32, 32))
    benchmark(im2col, x, 3, 1, 1)


def test_bench_edge_strategy(benchmark, rng):
    estimates = rng.lognormal(size=100)
    config = EdgeSamplingConfig(alpha=8.0, beta=2.0)
    benchmark(edge_strategy, estimates, 10.0, config)


def test_bench_edge_aggregation(benchmark, rng):
    dim = 5000
    edge = Edge(0, 5.0, dim)
    edge.set_model(rng.normal(size=dim))
    members = list(range(10))
    q = np.full(10, 0.5)
    results = {
        m: LocalUpdateResult(m, rng.normal(size=dim), [1.0], 0.5) for m in range(5)
    }
    benchmark(edge.aggregate, members, q, results, "fedavg")


def test_bench_markov_trace_generation(benchmark):
    model = MarkovMobilityModel.stay_or_jump(10, 0.8)
    benchmark(model.sample_trace, 500, 100, np.random.default_rng(0))


def test_bench_telecom_trace_generation(benchmark):
    def build():
        generator = TelecomTraceGenerator(
            num_devices=50, num_stations=150, rng=np.random.default_rng(0)
        )
        return generator.generate_trace(num_steps=100, num_edges=5)

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_bench_participation_draw(benchmark):
    q = np.full(1000, 0.5)
    rng = np.random.default_rng(0)
    benchmark(Edge.draw_participation, q, rng)

"""Figure 5 — steps to target accuracy vs device participation proportion.

The paper's findings: (i) more participation generally reduces time to
target; (ii) MACH beats the basic samplers throughout and trails the
MACH-P oracle slightly; (iii) MACH's improvement narrows as the
participation proportion grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.experiments import fig5


def test_fig5_participation(benchmark, preset, repeats):
    def once():
        return fig5.run(
            preset=preset,
            tasks=("mnist",),
            fractions=(0.4, 0.5, 0.6, 0.7),
            repeats=repeats,
        )

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("fig5_mnist", report.render())

    sweep = report.sweeps["mnist"]
    mach_times = [sweep.get(f, "mach") for f in sweep.sweep_values]
    benchmark.extra_info["mach_steps_by_fraction"] = mach_times
    benchmark.extra_info["savings_by_fraction"] = sweep.savings_series()
    # Remark-1 shape: the largest participation should not be slower than
    # the smallest for MACH (monotone trend up to eval-grid noise).
    reached = [t for t in mach_times if t is not None]
    if len(reached) >= 2:
        assert reached[-1] <= reached[0] * 1.5

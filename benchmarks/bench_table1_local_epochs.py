"""Table I — time steps consumed under different local updating epochs.

Regenerates both milestone blocks (70% of target / full target) for the
local-epoch settings {0.8I, I, 1.2I} with MACH / US / CS / SS, plus the
"- Time Steps %" savings column.  Paper shapes: all methods speed up as
I grows; MACH's savings shrink with larger I; savings at the 70%
milestone exceed those at the full target.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.experiments import table1


def test_table1_local_epochs(benchmark, preset, repeats):
    def once():
        return table1.run(preset=preset, tasks=("mnist",), repeats=repeats)

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("table1_mnist", report.render())

    for (task, milestone), sweep in report.sweeps.items():
        benchmark.extra_info[f"{milestone}_savings"] = sweep.savings_series()
        # MACH reaches every milestone a baseline reaches.
        for value in sweep.sweep_values:
            _name, base = sweep.best_baseline(value)
            if base is not None:
                assert sweep.get(value, "mach") is not None

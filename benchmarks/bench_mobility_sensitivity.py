"""EXT-MOBILITY — mobility-rate sensitivity (extension experiment).

Sweeps the Markov stay probability to probe the paper's core premise:
device mobility is what makes per-edge sampling strategies necessary.
Uses the fast flat-feature task so the sweep stays CPU-cheap.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.experiments import mobility


def test_mobility_sensitivity(benchmark, preset, repeats):
    def once():
        return mobility.run(preset=preset, tasks=("blobs",), repeats=repeats)

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("mobility_sensitivity", report.render())
    sweep = report.sweeps["blobs"]
    for stay in sweep.sweep_values:
        benchmark.extra_info[f"stay_{stay}_mach"] = sweep.get(stay, "mach")
        benchmark.extra_info[f"stay_{stay}_uniform"] = sweep.get(stay, "uniform")

"""Wall-clock scaling of the repro.runtime executor backends.

Runs one fixed HFL workload (default: 64 devices / 4 edges / blobs
task — the ISSUE's multi-device floor) under the serial reference
backend and then under the thread / process pools at several worker
counts, reporting wall-clock seconds and speedup versus serial.  Every
parallel run is also checked to be *bit-identical* to the serial
history — the determinism contract of the runtime subsystem — so a
speedup here is never bought with a different answer.

Standalone (not pytest-benchmark: it manages its own worker pools)::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py \
        --workers 1 2 4 8 --json benchmarks/results/BENCH_runtime.json

Pool start-up is included in each timed run (it is part of what a user
pays), so short horizons understate the asymptotic speedup.  The JSON
report embeds the host's CPU count — on a single-core box the pooled
backends can only show their overhead, which is still worth tracking.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS, make_sampler
from repro.experiments.runner import build_scenario
from repro.hfl.config import HFLConfig
from repro.hfl.trainer import HFLTrainer, TrainingResult


def build_workload(args) -> tuple:
    """One scenario instance, shared by every timed run."""
    config = PRESETS["blobs-bench"].with_overrides(
        num_devices=args.devices,
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
    )
    return config, build_scenario(config, args.seed)


def run_once(
    config, scenario, sampler_name: str, executor: str, num_workers: Optional[int]
) -> tuple:
    """Build a fresh trainer and time one full run."""
    devices, test, trace, model_factory = scenario
    hfl_config = HFLConfig(
        learning_rate=config.learning_rate,
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        sync_interval=config.sync_interval,
        participation_fraction=config.participation_fraction,
        aggregation=config.aggregation,
        executor=executor,
        num_workers=num_workers,
        seed=config.seed,
    )
    trainer = HFLTrainer(
        model_factory=model_factory,
        device_datasets=devices,
        trace=trace,
        sampler=make_sampler(sampler_name, config),
        config=hfl_config,
        test_dataset=test,
    )
    with trainer:
        start = time.perf_counter()
        result = trainer.run(config.num_steps)
        elapsed = time.perf_counter() - start
    return elapsed, result


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=64)
    parser.add_argument("--edges", type=int, default=4)
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sampler", default="uniform")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument(
        "--backends", nargs="+", default=["thread", "process"],
        choices=["thread", "process"],
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per configuration (best is kept)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    config, scenario = build_workload(args)
    print(
        f"workload: {args.devices} devices / {args.edges} edges / "
        f"{args.steps} steps / sampler={args.sampler} / "
        f"I={config.local_epochs} / host cpus={os.cpu_count()}"
    )

    def timed(executor: str, workers: Optional[int]) -> tuple:
        best, result = min(
            (run_once(config, scenario, args.sampler, executor, workers)
             for _ in range(args.repeats)),
            key=lambda pair: pair[0],
        )
        return best, result

    serial_seconds, serial_result = timed("serial", None)
    rows: List[Dict] = [
        {"backend": "serial", "workers": 1, "seconds": serial_seconds,
         "speedup": 1.0, "identical": True}
    ]
    print(f"{'backend':<10}{'workers':>8}{'seconds':>10}{'speedup':>9}  identical")
    print(f"{'serial':<10}{1:>8}{serial_seconds:>10.3f}{1.0:>9.2f}  -")

    for backend in args.backends:
        for workers in args.workers:
            seconds, result = timed(backend, workers)
            same = identical(serial_result, result)
            rows.append(
                {"backend": backend, "workers": workers, "seconds": seconds,
                 "speedup": serial_seconds / seconds, "identical": same}
            )
            print(
                f"{backend:<10}{workers:>8}{seconds:>10.3f}"
                f"{serial_seconds / seconds:>9.2f}  {same}"
            )
            if not same:
                print("FATAL: parallel history diverged from serial", file=sys.stderr)
                return 1

    if args.json is not None:
        report = {
            "workload": {
                "task": "blobs", "devices": args.devices, "edges": args.edges,
                "steps": args.steps, "local_epochs": config.local_epochs,
                "batch_size": config.batch_size, "sampler": args.sampler,
                "participation_fraction": config.participation_fraction,
                "seed": args.seed, "repeats": args.repeats,
            },
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": rows,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Sampler robustness under device faults: MACH vs the baselines.

Sweeps the fault profile's dropout rate (with mobility-coupled
departures enabled) over one fixed HFL workload and reports, per
sampler, the final/best accuracy, steps-to-target and the realized
fault counts.  The question the sweep answers: does MACH's UCB — which
counts sampled-but-failed rounds as participation without exploitation
credit, i.e. learns device *reliability* — degrade more gracefully than
samplers that never see the failures?

Standalone (not pytest-benchmark: runs full training horizons)::

    PYTHONPATH=src python benchmarks/bench_faults.py \
        --dropout 0.0 0.1 0.2 0.3 --json benchmarks/results/BENCH_faults.json

CI smoke mode (exercises the robustness acceptance criteria end to
end, cheaply)::

    PYTHONPATH=src python benchmarks/bench_faults.py --smoke

which asserts that (1) a run with every fault type enabled completes
with finite metrics on all three executor backends with bit-identical
histories, and (2) a run killed at a checkpoint and resumed matches the
uninterrupted run exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS
from repro.experiments.runner import run_single
from repro.hfl.telemetry import TelemetryRecorder
from repro.hfl.trainer import TrainingResult


def sweep_config(args, dropout: float):
    """The workload for one sweep point; faults scale with ``dropout``."""
    profile = (
        "none"
        if dropout == 0.0
        else f"dropout={dropout},mobility={min(2 * dropout, 1.0)}"
    )
    return PRESETS[args.preset].with_overrides(
        num_devices=args.devices,
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
        fault_profile=profile,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


def run_sweep(args) -> int:
    print(
        f"workload: {args.devices} devices / {args.edges} edges / "
        f"{args.steps} steps / repeats={args.repeats} / "
        f"samplers={','.join(args.samplers)}"
    )
    header = (
        f"{'dropout':>8}  {'sampler':<12}{'final acc':>10}{'best acc':>10}"
        f"{'to-target':>10}{'failed uploads':>15}"
    )
    print(header)
    rows: List[Dict] = []
    for dropout in args.dropout:
        config = sweep_config(args, dropout)
        for sampler in args.samplers:
            finals, bests, targets, failed = [], [], [], []
            for repeat in range(args.repeats):
                telemetry = TelemetryRecorder()
                result = run_single(
                    config,
                    sampler,
                    seed=args.seed + repeat,
                    telemetry=telemetry,
                )
                finals.append(result.history.final_accuracy())
                bests.append(result.history.best_accuracy())
                targets.append(result.time_to_accuracy(config.target_accuracy))
                summary = telemetry.fault_summary()
                failed.append(
                    sum(v for k, v in summary.items() if k != "sync_failure")
                )
            to_target = (
                float(np.mean(targets))
                if all(t is not None for t in targets)
                else None
            )
            row = {
                "dropout": dropout,
                "sampler": sampler,
                "final_accuracy": float(np.mean(finals)),
                "best_accuracy": float(np.mean(bests)),
                "steps_to_target": to_target,
                "failed_uploads": float(np.mean(failed)),
            }
            rows.append(row)
            t_str = f"{to_target:.0f}" if to_target is not None else "miss"
            print(
                f"{dropout:>8.2f}  {sampler:<12}{row['final_accuracy']:>10.3f}"
                f"{row['best_accuracy']:>10.3f}{t_str:>10}"
                f"{row['failed_uploads']:>15.1f}"
            )

    if args.json is not None:
        report = {
            "workload": {
                "preset": args.preset, "devices": args.devices,
                "edges": args.edges, "steps": args.steps,
                "samplers": args.samplers, "dropout_rates": args.dropout,
                "seed": args.seed, "repeats": args.repeats,
            },
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": rows,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


def run_smoke(args) -> int:
    """The CI fault-injection + checkpoint-kill-resume smoke."""
    config = PRESETS[args.preset].with_overrides(
        num_devices=min(args.devices, 16),
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
        fault_profile="severe",  # every fault type enabled
    )

    print("[smoke 1/2] severe faults on serial/thread/process ...")
    results = {}
    for executor in ("serial", "thread", "process"):
        telemetry = TelemetryRecorder()
        results[executor] = run_single(
            config.with_overrides(executor=executor, num_workers=2),
            "mach",
            telemetry=telemetry,
        )
        history = results[executor].history
        if not (
            np.all(np.isfinite(history.accuracy))
            and np.all(np.isfinite(history.loss))
        ):
            print(f"FATAL: non-finite metrics under {executor}", file=sys.stderr)
            return 1
        if executor == "serial" and not telemetry.fault_summary():
            print("FATAL: severe profile produced no faults", file=sys.stderr)
            return 1
    for executor in ("thread", "process"):
        if not identical(results["serial"], results[executor]):
            print(
                f"FATAL: {executor} history diverged from serial under faults",
                file=sys.stderr,
            )
            return 1
    print("        ok: run completed, three executors bit-identical")

    print("[smoke 2/2] checkpoint kill/resume ...")
    if args.steps < 3:
        print("FATAL: smoke needs --steps >= 3 to kill mid-run", file=sys.stderr)
        return 1
    # steps//2 + 1 is written exactly once (its next multiple is past the
    # horizon), so the file left behind is the mid-run snapshot — i.e.
    # the run "killed" right after writing it.
    kill_at = args.steps // 2 + 1
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "checkpoint.json")
        ckpt_config = config.with_overrides(
            checkpoint_every=kill_at, checkpoint_path=path,
        )
        uninterrupted = run_single(ckpt_config, "mach")
        resumed = run_single(config, "mach", resume_from=path)
    if not identical(uninterrupted, resumed):
        print("FATAL: resumed run diverged from uninterrupted run", file=sys.stderr)
        return 1
    print(f"        ok: killed at step {kill_at}, resume replayed exactly")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", default="blobs-bench")
    parser.add_argument("--devices", type=int, default=32)
    parser.add_argument("--edges", type=int, default=4)
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--samplers", nargs="+", default=["mach", "uniform", "statistical"],
        help="sampler names to compare (default: mach uniform statistical)",
    )
    parser.add_argument(
        "--dropout", type=float, nargs="+", default=[0.0, 0.1, 0.2, 0.3],
        help="dropout rates to sweep (mobility departures scale along)",
    )
    parser.add_argument("--repeats", type=int, default=1,
                        help="seeds per sweep point (mean is reported)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI acceptance smoke instead of the sweep",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    return run_sweep(args)


if __name__ == "__main__":
    raise SystemExit(main())

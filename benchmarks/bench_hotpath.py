"""Hot-path overhaul benchmark: reference vs optimized engine paths.

The perf pass (DESIGN.md §9) keeps the pre-optimization implementation
of every hot path alive behind :mod:`repro.hotpath`; this benchmark
runs the same fixed-seed workload down both paths and reports

- per-phase wall time (plan / execute / finish / sync / eval) from the
  :class:`~repro.hfl.telemetry.TelemetryRecorder` phase accounting,
- end-to-end serial seconds and the speedup optimized/reference,
- whether the two histories are **bit-identical** (they must be — a
  speedup bought with a different answer is a bug, not a win).

Standalone (records the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --json benchmarks/results/BENCH_hotpath.json

CI smoke mode (cheap, asserts the bit-identity contract end to end)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke

which checks that (1) the flat-buffer parameter aliasing is live and
survives pickle/deepcopy (the pool-worker contract) with the fused SGD
step bit-identical to the reference update, (2) the optimized
(aliased + batched) path reproduces the reference history exactly on
all three executor backends, and (3) the existing checkpoint
kill/resume determinism contract still holds on the optimized path.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS
from repro.experiments.runner import run_single
from repro.hfl.telemetry import TelemetryRecorder
from repro.hfl.trainer import TrainingResult
from repro.hotpath import hotpath_disabled

#: The two timed workloads: the conv one exercises the im2col/col2im
#: workspaces, the dense one the membership index / fused eval / flat
#: buffer reuse in (nearly) isolation.
WORKLOADS = ("cnn", "mlp")


def workload_config(args, workload: str):
    if workload == "cnn":
        return PRESETS["mnist-bench"].with_overrides(
            num_devices=args.devices,
            num_edges=args.edges,
            num_steps=args.steps,
            samples_per_device=30,
            test_samples=200,
            trace_kind="markov",
            seed=args.seed,
        )
    return PRESETS["blobs-bench"].with_overrides(
        num_devices=4 * args.devices,
        num_edges=args.edges,
        num_steps=2 * args.steps,
        trace_kind="markov",
        seed=args.seed,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


def timed_once(config, sampler: str):
    """One timed run; returns (seconds, result, phases)."""
    telemetry = TelemetryRecorder()
    start = time.perf_counter()
    result = run_single(config, sampler, telemetry=telemetry)
    elapsed = time.perf_counter() - start
    return elapsed, result, telemetry.phase_summary()


def timed_pair(config, sampler: str, repeats: int):
    """Best-of-``repeats`` for the reference and optimized paths.

    The two paths are *interleaved* (ref, opt, ref, opt, …) rather than
    run as two back-to-back blocks, so on a noisy shared host both
    sample the same load regime and the reported speedup is not an
    artifact of when each block happened to run.
    """
    best_ref = None
    best_opt = None
    for _ in range(repeats):
        with hotpath_disabled():
            ref = timed_once(config, sampler)
        if best_ref is None or ref[0] < best_ref[0]:
            best_ref = ref
        opt = timed_once(config, sampler)
        if best_opt is None or opt[0] < best_opt[0]:
            best_opt = opt
    return best_ref, best_opt


def print_phase_table(reference: Dict, optimized: Dict) -> None:
    phases = sorted(set(reference) | set(optimized))
    print(f"{'phase':<10}{'reference s':>13}{'optimized s':>13}{'speedup':>9}")
    for phase in phases:
        ref_s = reference.get(phase, {}).get("seconds", 0.0)
        opt_s = optimized.get(phase, {}).get("seconds", 0.0)
        ratio = f"{ref_s / opt_s:>9.2f}" if opt_s > 0 else f"{'-':>9}"
        print(f"{phase:<10}{ref_s:>13.4f}{opt_s:>13.4f}{ratio}")


def run_bench(args) -> int:
    rows: List[Dict] = []
    for workload in WORKLOADS:
        config = workload_config(args, workload)
        print(
            f"[{workload}] {config.num_devices} devices / {config.num_edges} "
            f"edges / {config.num_steps} steps / sampler={args.sampler} / "
            f"repeats={args.repeats}"
        )
        reference, optimized = timed_pair(config, args.sampler, args.repeats)
        ref_s, ref_result, ref_phases = reference
        opt_s, opt_result, opt_phases = optimized
        same = identical(ref_result, opt_result)
        print_phase_table(ref_phases, opt_phases)
        print(
            f"{'end-to-end':<10}{ref_s:>13.4f}{opt_s:>13.4f}"
            f"{ref_s / opt_s:>9.2f}  identical={same}"
        )
        if not same:
            print(
                "FATAL: optimized history diverged from the reference path",
                file=sys.stderr,
            )
            return 1
        rows.append(
            {
                "workload": workload,
                "devices": config.num_devices,
                "edges": config.num_edges,
                "steps": config.num_steps,
                "sampler": args.sampler,
                "reference": {"seconds": ref_s, "phases": ref_phases},
                "optimized": {"seconds": opt_s, "phases": opt_phases},
                "speedup": ref_s / opt_s,
                "identical": same,
            }
        )

    if args.json is not None:
        report = {
            "seed": args.seed,
            "repeats": args.repeats,
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": rows,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


def check_alias_identity(seed: int) -> bool:
    """Reference-vs-aliased identity at the nn layer.

    Asserts the flat-buffer aliasing invariants the engine relies on:
    parameters view into the canonical buffer, the fused
    ``loss_and_grad(sgd_lr=...)`` step matches the reference
    grad-copy-then-load update bit for bit, and pickle round trips
    re-alias into a private buffer (what thread clones and process-pool
    workers do).
    """
    import copy
    import pickle

    from repro.nn.architectures import build_mlp

    rng = np.random.default_rng(seed)
    model = build_mlp(16, hidden=(12,), rng=rng)
    flat = model.flat_view()
    if not all(np.shares_memory(p.value, flat) for p in model.parameters()):
        print("FATAL: parameters are not views into the flat buffer",
              file=sys.stderr)
        return False

    x = rng.normal(size=(8, 16))
    y = rng.integers(0, 10, size=8)
    twin = copy.deepcopy(model)
    ref_flat = twin.flat_copy()
    ref_loss, ref_grad = twin.loss_and_grad(x, y)
    ref_flat -= 0.1 * ref_grad
    twin.load_flat(ref_flat)
    fused_loss, fused_grad = model.loss_and_grad(x, y, sgd_lr=0.1)
    if not (
        fused_loss == ref_loss
        and np.array_equal(fused_grad, ref_grad)
        and np.array_equal(model.flat_copy(), twin.flat_copy())
    ):
        print("FATAL: fused SGD step diverged from the reference update",
              file=sys.stderr)
        return False

    clone = pickle.loads(pickle.dumps(model))
    if not (
        np.array_equal(clone.flat_copy(), model.flat_copy())
        and not np.shares_memory(clone.flat_view(), model.flat_view())
        and all(
            np.shares_memory(p.value, clone.flat_view())
            for p in clone.parameters()
        )
    ):
        print("FATAL: pickled model did not re-alias into a private buffer",
              file=sys.stderr)
        return False
    print("        ok: aliasing live, fused step identical, copies re-alias")
    return True


def run_smoke(args) -> int:
    """The CI bit-identity smoke over both timed workloads."""
    print("[smoke/nn] flat-buffer aliasing identity ...")
    if not check_alias_identity(args.seed):
        return 1
    for workload in WORKLOADS:
        config = workload_config(args, workload)
        print(
            f"[smoke/{workload}] reference vs optimized on "
            "serial/thread/process ..."
        )
        with hotpath_disabled():
            reference = run_single(config, args.sampler)
        telemetry = TelemetryRecorder()
        optimized = {
            "serial": run_single(config, args.sampler, telemetry=telemetry)
        }
        for executor in ("thread", "process"):
            optimized[executor] = run_single(
                config.with_overrides(executor=executor, num_workers=2),
                args.sampler,
            )
        for executor, result in optimized.items():
            if not identical(reference, result):
                print(
                    f"FATAL: optimized {executor} history diverged from the "
                    "reference path",
                    file=sys.stderr,
                )
                return 1
        print("        ok: three optimized backends match the reference bit for bit")
        for phase, stats in telemetry.phase_summary().items():
            print(
                f"        phase {phase:<8} {stats['seconds']:>9.4f}s "
                f"({100 * stats['share']:5.1f}%)"
            )

    print("[smoke] checkpoint kill/resume on the optimized path ...")
    config = workload_config(args, "mlp")
    kill_at = config.num_steps // 2 + 1
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "checkpoint.json")
        uninterrupted = run_single(
            config.with_overrides(checkpoint_every=kill_at, checkpoint_path=path),
            args.sampler,
        )
        resumed = run_single(config, args.sampler, resume_from=path)
    if not identical(uninterrupted, resumed):
        print("FATAL: resumed run diverged from uninterrupted run", file=sys.stderr)
        return 1
    print(f"        ok: killed at step {kill_at}, resume replayed exactly")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=12)
    parser.add_argument("--edges", type=int, default=3)
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sampler", default="mach")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per path (best is kept)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI bit-identity smoke instead of the timed benchmark",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    return run_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())

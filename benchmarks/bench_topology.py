"""Cross-topology benchmark: MACH vs its baselines on every topology.

The topology layer (DESIGN.md §12) makes the sync step a config choice:
the paper's cloud/edge tree (``hierarchical`` + ``ipw``), cluster FL
with inter-cluster model mixing (``clustered`` + ``cluster_mix``), and
cloudless gossip averaging (``gossip`` + ``gossip_avg``).  This
benchmark runs the sampler comparison across all three and reports, per
(topology, sampler): steps-to-target, final and best accuracy, and
wall-clock — the cross-scenario table the ROADMAP's scenario-diversity
item asks for.

Standalone (records the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_topology.py \
        --json benchmarks/results/BENCH_topology.json

CI smoke mode (cheap, asserts the topology contracts end to end)::

    PYTHONPATH=src python benchmarks/bench_topology.py --smoke

which checks that (1) the default ``hierarchical`` + ``ipw`` pair is
**bit-identical** to the pre-topology trainer (the runnable reference
twin in :mod:`repro.topology.reference`) on all three executor
backends, (2) the clustered and gossip modes run end-to-end with
seeded determinism — two same-seed runs agree exactly, on the serial
and thread backends — and produce sane (finite, in-[0,1]) accuracy,
and (3) checkpoint kill/resume replays exactly under every topology.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS, SAMPLER_ABBREVIATIONS
from repro.experiments.runner import run_single
from repro.hfl.trainer import TrainingResult
from repro.topology import DEFAULT_STRATEGY, TOPOLOGY_KINDS
from repro.topology.reference import run_reference

#: Samplers compared on every topology (MACH + the two strongest
#: baselines keeps the timed matrix 3×3).
SAMPLERS = ("mach", "uniform", "class_balance")


def topology_overrides(topology: str) -> Dict[str, object]:
    """Scenario overrides selecting one topology with its defaults."""
    overrides: Dict[str, object] = {"topology": topology}
    if topology == "clustered":
        overrides["num_clusters"] = None  # ceil(sqrt(E))
        overrides["cluster_mixing_weight"] = 0.25
    if topology == "gossip":
        overrides["gossip_degree"] = 2
    return overrides


def base_config(args):
    return PRESETS["blobs-bench"].with_overrides(
        num_devices=args.devices,
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


def sane(result: TrainingResult) -> bool:
    return (
        len(result.history.accuracy) > 0
        and all(np.isfinite(a) and 0.0 <= a <= 1.0 for a in result.history.accuracy)
        and all(np.isfinite(l) for l in result.history.loss)
    )


# ---------------------------------------------------------------------------
# Timed benchmark


def run_bench(args) -> int:
    rows: List[Dict] = []
    print(
        f"{'topology':<14}{'sampler':<10}{'steps-to-target':>16}"
        f"{'final acc':>11}{'best acc':>10}{'seconds':>9}"
    )
    for topology in TOPOLOGY_KINDS:
        config = base_config(args).with_overrides(**topology_overrides(topology))
        for sampler in SAMPLERS:
            start = time.perf_counter()
            result = run_single(config, sampler)
            elapsed = time.perf_counter() - start
            reached = result.time_to_accuracy(config.target_accuracy)
            label = SAMPLER_ABBREVIATIONS.get(sampler, sampler)
            reached_str = f"{reached}" if reached is not None else "not reached"
            print(
                f"{topology:<14}{label:<10}{reached_str:>16}"
                f"{result.history.final_accuracy():>11.3f}"
                f"{result.history.best_accuracy():>10.3f}{elapsed:>9.2f}"
            )
            if not sane(result):
                print(
                    f"FATAL: {topology}/{sampler} produced a non-finite "
                    "or out-of-range history",
                    file=sys.stderr,
                )
                return 1
            rows.append(
                {
                    "topology": topology,
                    "aggregation": DEFAULT_STRATEGY[topology],
                    "sampler": sampler,
                    "steps_to_target": reached,
                    "final_accuracy": result.history.final_accuracy(),
                    "best_accuracy": result.history.best_accuracy(),
                    "mean_participants": result.mean_participants_per_step,
                    "seconds": elapsed,
                }
            )

    if args.json is not None:
        report = {
            "seed": args.seed,
            "devices": args.devices,
            "edges": args.edges,
            "steps": args.steps,
            "target_accuracy": base_config(args).target_accuracy,
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": rows,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


# ---------------------------------------------------------------------------
# CI smoke


def smoke_default_pair_identity(args) -> bool:
    """hierarchical + ipw must equal the pre-topology trainer, bit for bit."""
    config = base_config(args)
    print("[smoke/identity] default pair vs pre-topology reference twin ...")
    reference = run_reference(config, "mach")
    for executor in ("serial", "thread", "process"):
        run_cfg = config
        if executor != "serial":
            run_cfg = config.with_overrides(executor=executor, num_workers=2)
        result = run_single(run_cfg, "mach")
        if not identical(reference, result):
            print(
                f"FATAL: hierarchical+ipw on {executor} diverged from the "
                "pre-topology reference trainer",
                file=sys.stderr,
            )
            return False
    print("        ok: three executors match the reference twin bit for bit")
    return True


def smoke_alternate_topologies(args) -> bool:
    """Clustered + gossip: seeded determinism and a sane history."""
    for topology in ("clustered", "gossip"):
        config = base_config(args).with_overrides(**topology_overrides(topology))
        print(f"[smoke/{topology}] seeded determinism on serial/thread ...")
        first = run_single(config, "mach")
        again = run_single(config, "mach")
        threaded = run_single(
            config.with_overrides(executor="thread", num_workers=2), "mach"
        )
        if not (identical(first, again) and identical(first, threaded)):
            print(
                f"FATAL: {topology} runs are not deterministic for a fixed seed",
                file=sys.stderr,
            )
            return False
        if not sane(first):
            print(
                f"FATAL: {topology} history is non-finite or out of range",
                file=sys.stderr,
            )
            return False
        print(
            f"        ok: exact replay, final_acc="
            f"{first.history.final_accuracy():.3f}"
        )
    return True


def smoke_kill_resume(args) -> bool:
    """Checkpoint kill/resume must replay exactly under every topology."""
    for topology in TOPOLOGY_KINDS:
        config = base_config(args).with_overrides(**topology_overrides(topology))
        # Kill on a sync/eval boundary: a run's final step always
        # evaluates, so an unaligned kill would bake an extra eval into
        # the checkpointed history (see tests/faults/test_checkpoint.py).
        kill_at = max(
            config.sync_interval,
            (config.num_steps // 2 // config.sync_interval)
            * config.sync_interval,
        )
        print(f"[smoke/{topology}] kill at step {kill_at} + resume ...")
        with tempfile.TemporaryDirectory() as tmp:
            path = str(Path(tmp) / "checkpoint.json")
            uninterrupted = run_single(config, "mach")
            run_single(
                config.with_overrides(
                    num_steps=kill_at,
                    checkpoint_every=kill_at,
                    checkpoint_path=path,
                ),
                "mach",
            )
            resumed = run_single(config, "mach", resume_from=path)
        if not identical(uninterrupted, resumed):
            print(
                f"FATAL: {topology} resume diverged from the uninterrupted run",
                file=sys.stderr,
            )
            return False
        print("        ok: resume replayed exactly")
    return True


def run_smoke(args) -> int:
    checks = (
        smoke_default_pair_identity,
        smoke_alternate_topologies,
        smoke_kill_resume,
    )
    for check in checks:
        if not check(args):
            return 1
    print("[smoke] all topology contracts hold")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=40)
    parser.add_argument("--edges", type=int, default=4)
    parser.add_argument("--steps", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI contract smoke instead of the timed benchmark "
             "(bit-identity vs the reference twin, cross-topology "
             "determinism, kill/resume)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.devices = min(args.devices, 16)
        args.edges = min(args.edges, 4)
        args.steps = min(args.steps, 12)
        return run_smoke(args)
    return run_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared configuration for the benchmark harness.

Every benchmark regenerates one paper artifact (figure/table) or one
ablation, at the CPU-sized ``bench`` preset by default.  Environment
knobs:

- ``REPRO_BENCH_PRESET``  — ``bench`` (default) or ``paper``.  The paper
  preset reproduces §IV-A.2 exactly (100 devices, full-resolution
  images) and takes hours on a pure-numpy substrate.
- ``REPRO_BENCH_REPEATS`` — repeats per (scenario, sampler); default 1
  (the paper averages 3).
- ``REPRO_BENCH_TASKS``   — comma-separated task subset for Fig. 3
  (default ``mnist,fmnist,cifar10``).

Rendered reports are written to ``benchmarks/results/*.txt`` and echoed
into pytest-benchmark's ``extra_info``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_preset() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "1"))


def bench_tasks() -> tuple:
    raw = os.environ.get("REPRO_BENCH_TASKS", "mnist,fmnist,cifar10")
    return tuple(t.strip() for t in raw.split(",") if t.strip())


def save_report(name: str, text: str) -> None:
    """Persist a rendered report and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report saved to {path}]")


@pytest.fixture
def preset() -> str:
    return bench_preset()


@pytest.fixture
def repeats() -> int:
    return bench_repeats()

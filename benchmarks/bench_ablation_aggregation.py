"""ABL-AGG — Eq. (5) aggregation-mode ablation (DESIGN.md).

Runs uniform sampling under the four aggregation realizations:
``fedavg`` (equal participant weights), ``delta`` (unbiased IPW update
aggregation, the Lemma-1 form), ``normalized`` and ``model`` (the
literal raw-model IPW sum, whose realized weights only sum to 1 in
expectation — the §III-B.2 instability).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.experiments import ablations


def test_ablation_aggregation(benchmark, preset, repeats):
    def once():
        return ablations.run_aggregation_ablation(preset=preset, repeats=repeats)

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("ablation_aggregation", report.render())
    for label, steps, acc in report.rows:
        benchmark.extra_info[label] = {"steps": steps, "final_accuracy": acc}

    # The literal Eq. (5) must be no more accurate than the stable modes
    # (it multiplies the model by a fluctuating weight sum every step).
    fedavg_acc = next(acc for lbl, _s, acc in report.rows if "fedavg" in lbl)
    model_acc = next(acc for lbl, _s, acc in report.rows if "model" in lbl)
    assert model_acc <= fedavg_acc + 0.05

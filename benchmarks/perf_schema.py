"""Unified performance-report schema shared by the benchmark suite.

Every committed ``benchmarks/results/BENCH_*.json`` grew its own ad-hoc
shape, which makes regression tracking a per-file parsing exercise.
This module defines the one canonical structure the tracking tooling
(:mod:`perf_track`) understands:

- a **report** carries run metadata (schema version, workload name,
  host fingerprint, git revision) plus a flat list of cells;
- a **cell** is one measured configuration — a unique name within the
  workload and a ``{metric: float}`` mapping (wall seconds, peak RSS,
  accuracy, speedups, ...).

Existing baselines are *not* rewritten; :mod:`perf_track` adapts them
into this shape on load.  New benchmark output (and fresh measurements)
should be written through :func:`make_report` / :func:`write_report`
directly.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

SCHEMA_VERSION = 1

__all__ = [
    "SCHEMA_VERSION",
    "PerfCell",
    "git_revision",
    "host_fingerprint",
    "load_report",
    "make_report",
    "write_report",
]


def git_revision() -> Optional[str]:
    """Best-effort short commit id of the working tree (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def host_fingerprint() -> Dict[str, object]:
    """The host identity block shared by every committed baseline."""
    try:
        import numpy as np

        numpy_version = np.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


@dataclass
class PerfCell:
    """One measured configuration: a name plus its scalar metrics."""

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cell name must be non-empty")
        cleaned: Dict[str, float] = {}
        for key, value in self.metrics.items():
            if value is None:
                continue
            if isinstance(value, bool):
                cleaned[key] = 1.0 if value else 0.0
            else:
                cleaned[key] = float(value)
        self.metrics = cleaned

    def to_dict(self) -> dict:
        return {"name": self.name, "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfCell":
        return cls(
            name=str(payload["name"]),
            metrics=dict(payload.get("metrics", {})),
        )


def make_report(
    workload: str,
    cells: Iterable[PerfCell],
    meta: Optional[dict] = None,
) -> dict:
    """Assemble a schema-versioned report with host/git provenance."""
    cell_list = list(cells)
    names = [cell.name for cell in cell_list]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate cell names in report: {names}")
    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": str(workload),
        "host": host_fingerprint(),
        "git_revision": git_revision(),
        "cells": [cell.to_dict() for cell in cell_list],
    }
    if meta:
        report["meta"] = dict(meta)
    return report


def write_report(path: Union[str, Path], report: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(path: Union[str, Path]) -> dict:
    """Load a canonical report, validating the schema envelope."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} (expected {SCHEMA_VERSION}); "
            "ad-hoc BENCH_*.json baselines must go through the perf_track "
            "adapters instead"
        )
    cells = [PerfCell.from_dict(cell) for cell in payload.get("cells", [])]
    names = [cell.name for cell in cells]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate cell names {names}")
    payload["cells"] = cells
    return payload

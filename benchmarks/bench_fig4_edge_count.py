"""Figure 4 — steps to target accuracy under different edge counts.

The paper's finding: MACH wins at every edge count, and its improvement
over the best basic sampler shrinks monotonically as edges decrease
(HFL degenerates toward flat FL, where per-edge strategies matter less).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.experiments import fig4


def test_fig4_edge_count(benchmark, preset, repeats):
    def once():
        return fig4.run(
            preset=preset, tasks=("mnist",), edge_counts=(2, 5, 10), repeats=repeats
        )

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("fig4_mnist", report.render())

    sweep = report.sweeps["mnist"]
    for edges in sweep.sweep_values:
        mach = sweep.get(edges, "mach")
        _name, base = sweep.best_baseline(edges)
        benchmark.extra_info[f"edges_{edges}_mach"] = mach
        benchmark.extra_info[f"edges_{edges}_best_baseline"] = base
        if base is not None:
            assert mach is not None
    benchmark.extra_info["savings_series_low_to_high_edges"] = sweep.savings_series()

"""Observability overhead benchmark: sinks/profiler/tracer vs obs off.

DESIGN.md §10's contract is that :mod:`repro.obs` *observes without
participating*: every sink must leave the run bit-identical, and pure
observation must cost at most a few percent of wall-clock.  This
benchmark runs the same fixed-seed workload four ways and reports,
per path, end-to-end seconds, relative overhead and bit-identity:

- **baseline** — obs off;
- **sinks sans tracer** — event log, metrics + resource accounting,
  health monitor, MACH audit trail.  This is the *bounded* path: it
  observes on the executor's unchanged fused hot path;
- **profiler** — the continuous profiler alone (site timing, phase
  attribution, round-granular worker timings).  Also bounded;
- **all sinks** — adds the span tracer, whose per-device timings
  switch the executors onto the item-granular path and forfeit
  population batching.  That cost is a documented *mode change* that
  scales with how much fusion wins on the host, so it is reported but
  not bounded.

Standalone (records the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --json benchmarks/results/BENCH_obs.json

CI smoke mode (cheap; asserts bit-identity, audit replay, telemetry
reconstruction and a lenient overhead bound on shared runners)::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS
from repro.experiments.runner import run_single
from repro.hfl.trainer import TrainingResult
from repro.obs import (
    EventLog,
    Observability,
    Profiler,
    read_events,
    replay_telemetry,
)


def workload_config(args):
    return PRESETS["blobs-bench"].with_overrides(
        num_devices=args.devices,
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


def observed_run(config, sampler: str, log_path: Path):
    """One run with every sink attached (event log on real disk)."""
    obs = Observability.enabled(events=EventLog(log_path))
    result = run_single(
        config, sampler, telemetry=obs.telemetry_recorder(), obs=obs
    )
    obs.close()
    return result, obs


def profiled_run(config, sampler: str):
    """One run with ONLY the continuous profiler attached.

    Isolates the profiler's cost: site timing, phase attribution and the
    round-granular worker timings it requests (one clock pair per edge
    round on the executor's unchanged fused path).
    """
    obs = Observability(profiler=Profiler())
    result = run_single(config, sampler, obs=obs)
    obs.close()
    return result, obs


def sinks_run(config, sampler: str, log_path: Path):
    """Every sink EXCEPT the span tracer.

    The tracer needs per-device worker timings, which switch the
    executors off their fused/population-batched round paths — a
    documented mode change whose cost scales with how much fusion the
    host's BLAS wins back, not an observer overhead.  The smoke bound
    therefore gates on this tracer-less path (pure observation) and
    reports the tracer mode's cost separately.
    """
    from repro.obs import MACHAuditTrail, MetricsRegistry

    events = EventLog(log_path)
    metrics = MetricsRegistry()
    from repro.obs import HealthMonitor, ResourceAccountant

    obs = Observability(
        events=events,
        metrics=metrics,
        audit=MACHAuditTrail(event_log=events),
        resources=ResourceAccountant(metrics),
        health=HealthMonitor(metrics),
    )
    result = run_single(
        config, sampler, telemetry=obs.telemetry_recorder(), obs=obs
    )
    obs.close()
    return result, obs


def measure(args, tmp: Path) -> Dict:
    """Interleaved best-of-``repeats`` A/B timing.

    Alternating the two paths inside each repeat cancels slow drift on
    shared hosts (CPU frequency, cache state, noisy neighbours), which
    would otherwise dominate the few-percent effect being measured.
    """
    config = workload_config(args)
    timers = {}
    baseline = observed = obs = profiled = obs_prof = sinks = None

    def timed(key, fn):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        previous = timers.get(key)
        timers[key] = elapsed if previous is None else min(previous, elapsed)
        return out

    run_single(config, args.sampler)  # warm caches before timing
    for _ in range(args.repeats):
        baseline = timed("baseline", lambda: run_single(config, args.sampler))
        observed, obs = timed(
            "observed",
            lambda: observed_run(config, args.sampler, tmp / "events.jsonl"),
        )
        sinks, _ = timed(
            "sinks",
            lambda: sinks_run(config, args.sampler, tmp / "events-s.jsonl"),
        )
        profiled, obs_prof = timed(
            "profiled", lambda: profiled_run(config, args.sampler)
        )
    baseline_s = timers["baseline"]
    return {
        "devices": config.num_devices,
        "edges": config.num_edges,
        "steps": config.num_steps,
        "sampler": args.sampler,
        "baseline_seconds": baseline_s,
        "observed_seconds": timers["observed"],
        "overhead": timers["observed"] / baseline_s - 1.0,
        "identical": identical(baseline, observed),
        "sinks_seconds": timers["sinks"],
        "sinks_overhead": timers["sinks"] / baseline_s - 1.0,
        "sinks_identical": identical(baseline, sinks),
        "profiled_seconds": timers["profiled"],
        "profiler_overhead": timers["profiled"] / baseline_s - 1.0,
        "profiled_identical": identical(baseline, profiled),
        "sink_volume": {
            "events": obs.events.num_events,
            "spans": len(obs.tracer.spans),
            "audit_decisions": len(obs.audit.decisions),
            "metric_families": len(obs.metrics.families()),
        },
        "_baseline_result": baseline,
        "_observed": observed,
        "_obs": obs,
        "_profiler": obs_prof.profiler,
        "_log_path": tmp / "events.jsonl",
    }


def run_bench(args) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        row = measure(args, Path(tmp))
        print(
            f"[obs] {row['devices']} devices / {row['edges']} edges / "
            f"{row['steps']} steps / sampler={row['sampler']} / "
            f"repeats={args.repeats}"
        )
        print(
            f"obs off {row['baseline_seconds']:.4f}s   "
            f"all sinks {row['observed_seconds']:.4f}s "
            f"({100 * row['overhead']:+.2f}%, tracer mode)   "
            f"identical={row['identical']}"
        )
        print(
            f"sinks sans tracer {row['sinks_seconds']:.4f}s   "
            f"overhead {100 * row['sinks_overhead']:+.2f}%   "
            f"identical={row['sinks_identical']}"
        )
        print(
            f"profiler on {row['profiled_seconds']:.4f}s   "
            f"overhead {100 * row['profiler_overhead']:+.2f}%   "
            f"identical={row['profiled_identical']}"
        )
        volume = row["sink_volume"]
        print(
            f"sinks: {volume['events']} events, {volume['spans']} spans, "
            f"{volume['audit_decisions']} audit decisions, "
            f"{volume['metric_families']} metric families"
        )
    for key in ("identical", "sinks_identical", "profiled_identical"):
        if not row[key]:
            print(
                f"FATAL: {key} is False — an observed history diverged "
                "from the baseline",
                file=sys.stderr,
            )
            return 1

    if args.json is not None:
        report = {
            "seed": args.seed,
            "repeats": args.repeats,
            "max_overhead": args.max_overhead,
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": [
                {k: v for k, v in row.items() if not k.startswith("_")}
            ],
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


def run_smoke(args) -> int:
    """CI gate: bit-identity on every backend, proofs, bounded overhead."""
    config = workload_config(args)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        print("[smoke] obs on vs obs off on serial/thread/process ...")
        for executor in ("serial", "thread", "process"):
            run_config = (
                config
                if executor == "serial"
                else config.with_overrides(executor=executor, num_workers=2)
            )
            baseline = run_single(run_config, args.sampler)
            observed, obs = observed_run(
                run_config, args.sampler, tmp / f"events-{executor}.jsonl"
            )
            if not identical(baseline, observed):
                print(
                    f"FATAL: obs-enabled {executor} run diverged from the "
                    "obs-disabled run",
                    file=sys.stderr,
                )
                return 1
            profiled, _ = profiled_run(run_config, args.sampler)
            if not identical(baseline, profiled):
                print(
                    f"FATAL: profiled {executor} run diverged from the "
                    "obs-disabled run",
                    file=sys.stderr,
                )
                return 1
        print(
            "        ok: all three backends bit-identical with every sink on "
            "and with the profiler on"
        )

        print("[smoke] offline proofs from the process-backend log ...")
        events = read_events(tmp / "events-process.jsonl")
        obs.audit.verify_replay(config.seed)
        print(
            f"        ok: {len(obs.audit.decisions)} sampled sets replayed "
            "exactly from logged probabilities"
        )
        rebuilt = replay_telemetry(events)
        live = run_single(config, args.sampler)  # independent reference
        assert rebuilt.records, "log must carry round events"
        expected = {
            d: int(c)
            for d, c in enumerate(live.participation_counts)
            if c > 0
        }
        assert rebuilt.participation_counts() == expected
        print(
            f"        ok: telemetry rebuilt from {len(events)} logged events "
            "matches the live run"
        )

        print(
            f"[smoke] observation overhead bounds "
            f"(<= {100 * args.max_overhead:.0f}%) ..."
        )
        row = measure(args, tmp)
        print(
            f"        obs off {row['baseline_seconds']:.4f}s, "
            f"sinks sans tracer {row['sinks_seconds']:.4f}s "
            f"({100 * row['sinks_overhead']:+.2f}%), "
            f"profiler {row['profiled_seconds']:.4f}s "
            f"({100 * row['profiler_overhead']:+.2f}%)"
        )
        print(
            f"        tracer mode (all sinks) {row['observed_seconds']:.4f}s "
            f"({100 * row['overhead']:+.2f}%; per-item timings forfeit "
            "population batching — informational, not bounded)"
        )
        for key in ("identical", "sinks_identical", "profiled_identical"):
            if not row[key]:
                print(
                    f"FATAL: {key} is False — an observed history "
                    "diverged from the baseline",
                    file=sys.stderr,
                )
                return 1
        for label, key in (
            ("sinks", "sinks_overhead"),
            ("profiler", "profiler_overhead"),
        ):
            if row[key] > args.max_overhead:
                print(
                    f"FATAL: {label} overhead {100 * row[key]:.2f}% exceeds "
                    f"the {100 * args.max_overhead:.0f}% bound",
                    file=sys.stderr,
                )
                return 1

        print("[smoke] hotspot attribution ...")
        sites = {
            (hot["subsystem"], hot["site"])
            for hot in row["_profiler"].hotspot_table()
        }
        expected = {("runtime", "device_update"), ("hfl", "edge_aggregate")}
        missing = expected - sites
        if missing:
            print(
                f"FATAL: profiler missed expected hotspots {sorted(missing)}; "
                f"saw {sorted(sites)}",
                file=sys.stderr,
            )
            return 1
        print(
            f"        ok: {len(sites)} sites attributed, including "
            "device_update and edge_aggregate"
        )
    print("        ok")
    return 0


def main_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=48)
    parser.add_argument("--edges", type=int, default=3)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sampler", default="mach")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per path (best is kept)")
    parser.add_argument(
        "--max-overhead", type=float, default=0.5,
        help="relative overhead bound asserted by --smoke; the committed "
             "baseline targets <= 0.05, the smoke default is lenient for "
             "noisy shared CI runners (default: 0.5)",
    )
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI assertion suite instead of the timed benchmark",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = main_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    return run_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Observability overhead benchmark: all sinks on vs obs disabled.

DESIGN.md §10's contract is that :mod:`repro.obs` *observes without
participating*: enabling every sink (JSONL event log, span tracer,
metrics registry, MACH audit trail) must leave the run bit-identical
and cost at most a few percent of wall-clock.  This benchmark runs the
same fixed-seed workload with obs off and with every sink on, and
reports

- end-to-end seconds for both paths and the relative overhead,
- whether the two histories are **bit-identical** (they must be),
- the sink volumes (events logged, spans recorded, audit decisions).

Standalone (records the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --json benchmarks/results/BENCH_obs.json

CI smoke mode (cheap; asserts bit-identity, audit replay, telemetry
reconstruction and a lenient overhead bound on shared runners)::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS
from repro.experiments.runner import run_single
from repro.hfl.trainer import TrainingResult
from repro.obs import EventLog, Observability, read_events, replay_telemetry


def workload_config(args):
    return PRESETS["blobs-bench"].with_overrides(
        num_devices=args.devices,
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


def observed_run(config, sampler: str, log_path: Path):
    """One run with every sink attached (event log on real disk)."""
    obs = Observability.enabled(events=EventLog(log_path))
    result = run_single(
        config, sampler, telemetry=obs.telemetry_recorder(), obs=obs
    )
    obs.close()
    return result, obs


def measure(args, tmp: Path) -> Dict:
    """Interleaved best-of-``repeats`` A/B timing.

    Alternating the two paths inside each repeat cancels slow drift on
    shared hosts (CPU frequency, cache state, noisy neighbours), which
    would otherwise dominate the few-percent effect being measured.
    """
    config = workload_config(args)
    baseline_s = observed_s = None
    baseline = observed = obs = None
    run_single(config, args.sampler)  # warm caches before timing
    for _ in range(args.repeats):
        start = time.perf_counter()
        baseline = run_single(config, args.sampler)
        elapsed = time.perf_counter() - start
        baseline_s = elapsed if baseline_s is None else min(baseline_s, elapsed)

        start = time.perf_counter()
        observed, obs = observed_run(
            config, args.sampler, tmp / "events.jsonl"
        )
        elapsed = time.perf_counter() - start
        observed_s = elapsed if observed_s is None else min(observed_s, elapsed)
    overhead = observed_s / baseline_s - 1.0
    return {
        "devices": config.num_devices,
        "edges": config.num_edges,
        "steps": config.num_steps,
        "sampler": args.sampler,
        "baseline_seconds": baseline_s,
        "observed_seconds": observed_s,
        "overhead": overhead,
        "identical": identical(baseline, observed),
        "sink_volume": {
            "events": obs.events.num_events,
            "spans": len(obs.tracer.spans),
            "audit_decisions": len(obs.audit.decisions),
            "metric_families": len(obs.metrics.families()),
        },
        "_baseline_result": baseline,
        "_observed": observed,
        "_obs": obs,
        "_log_path": tmp / "events.jsonl",
    }


def run_bench(args) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        row = measure(args, Path(tmp))
        print(
            f"[obs] {row['devices']} devices / {row['edges']} edges / "
            f"{row['steps']} steps / sampler={row['sampler']} / "
            f"repeats={args.repeats}"
        )
        print(
            f"obs off {row['baseline_seconds']:.4f}s   "
            f"obs on {row['observed_seconds']:.4f}s   "
            f"overhead {100 * row['overhead']:+.2f}%   "
            f"identical={row['identical']}"
        )
        volume = row["sink_volume"]
        print(
            f"sinks: {volume['events']} events, {volume['spans']} spans, "
            f"{volume['audit_decisions']} audit decisions, "
            f"{volume['metric_families']} metric families"
        )
    if not row["identical"]:
        print("FATAL: observed history diverged from baseline", file=sys.stderr)
        return 1

    if args.json is not None:
        report = {
            "seed": args.seed,
            "repeats": args.repeats,
            "max_overhead": args.max_overhead,
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": [
                {k: v for k, v in row.items() if not k.startswith("_")}
            ],
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


def run_smoke(args) -> int:
    """CI gate: bit-identity on every backend, proofs, bounded overhead."""
    config = workload_config(args)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        print("[smoke] obs on vs obs off on serial/thread/process ...")
        for executor in ("serial", "thread", "process"):
            run_config = (
                config
                if executor == "serial"
                else config.with_overrides(executor=executor, num_workers=2)
            )
            baseline = run_single(run_config, args.sampler)
            observed, obs = observed_run(
                run_config, args.sampler, tmp / f"events-{executor}.jsonl"
            )
            if not identical(baseline, observed):
                print(
                    f"FATAL: obs-enabled {executor} run diverged from the "
                    "obs-disabled run",
                    file=sys.stderr,
                )
                return 1
        print("        ok: all three backends bit-identical with every sink on")

        print("[smoke] offline proofs from the process-backend log ...")
        events = read_events(tmp / "events-process.jsonl")
        obs.audit.verify_replay(config.seed)
        print(
            f"        ok: {len(obs.audit.decisions)} sampled sets replayed "
            "exactly from logged probabilities"
        )
        rebuilt = replay_telemetry(events)
        live = run_single(config, args.sampler)  # independent reference
        assert rebuilt.records, "log must carry round events"
        expected = {
            d: int(c)
            for d, c in enumerate(live.participation_counts)
            if c > 0
        }
        assert rebuilt.participation_counts() == expected
        print(
            f"        ok: telemetry rebuilt from {len(events)} logged events "
            "matches the live run"
        )

        print(f"[smoke] overhead bound (<= {100 * args.max_overhead:.0f}%) ...")
        row = measure(args, tmp)
        print(
            f"        obs off {row['baseline_seconds']:.4f}s, "
            f"obs on {row['observed_seconds']:.4f}s, "
            f"overhead {100 * row['overhead']:+.2f}%"
        )
        if not row["identical"]:
            print("FATAL: observed history diverged", file=sys.stderr)
            return 1
        if row["overhead"] > args.max_overhead:
            print(
                f"FATAL: obs overhead {100 * row['overhead']:.2f}% exceeds "
                f"the {100 * args.max_overhead:.0f}% bound",
                file=sys.stderr,
            )
            return 1
    print("        ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=48)
    parser.add_argument("--edges", type=int, default=3)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sampler", default="mach")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per path (best is kept)")
    parser.add_argument(
        "--max-overhead", type=float, default=0.5,
        help="relative overhead bound asserted by --smoke; the committed "
             "baseline targets <= 0.05, the smoke default is lenient for "
             "noisy shared CI runners (default: 0.5)",
    )
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI assertion suite instead of the timed benchmark",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    return run_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Open-population chaos bench: MACH vs uniform under churn + staleness.

Sweeps churn intensity × bounded-staleness window over one fixed HFL
workload (with a straggler deadline active so the staleness buffer
actually fills) and reports, per sampler, the final/best accuracy,
steps-to-target and the realized churn/staleness counts.  The question
the sweep answers: does MACH's reliability-aware UCB — now warm-started
for arrivals and fed deferred credit for late admits — hold its edge
over uniform sampling as the population opens up?

Standalone (not pytest-benchmark: runs full training horizons)::

    PYTHONPATH=src python benchmarks/bench_churn.py \
        --json benchmarks/results/BENCH_churn.json

CI chaos-smoke mode (exercises the open-population acceptance criteria
end to end, cheaply)::

    PYTHONPATH=src python benchmarks/bench_churn.py --smoke

which asserts that (1) a churn-off gated run is bit-identical to the
plain closed-world engine, (2) an everything-on run (churn + staleness
+ faults) completes with finite metrics and bit-identical histories on
all three executor backends while respecting the staleness bound,
(3) a run killed mid-flight — churn state mid-stream, uploads parked —
resumes exactly, and (4) a corrupted primary checkpoint falls back to
the rotated ``.prev`` copy.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS
from repro.experiments.runner import run_single
from repro.faults import CheckpointIntegrityError, TrainerCheckpoint
from repro.hfl.telemetry import TelemetryRecorder
from repro.hfl.trainer import TrainingResult

#: The sweep's fault backdrop: moderate faults with a straggler
#: deadline low enough that the bounded-staleness window has work to do
#: in a CPU-sized workload.
FAULT_BACKDROP = "moderate,deadline=2.0"


def base_config(args):
    return PRESETS[args.preset].with_overrides(
        num_devices=args.devices,
        num_edges=args.edges,
        num_steps=args.steps,
        trace_kind="markov",
        seed=args.seed,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
        and a.devices_joined == b.devices_joined
        and a.devices_left == b.devices_left
        and a.late_admits == b.late_admits
        and a.late_drops == b.late_drops
    )


def run_sweep(args) -> int:
    print(
        f"workload: {args.devices} devices / {args.edges} edges / "
        f"{args.steps} steps / faults={FAULT_BACKDROP} / "
        f"samplers={','.join(args.samplers)}"
    )
    header = (
        f"{'churn':>10}{'S':>4}  {'sampler':<10}{'final':>8}{'best':>8}"
        f"{'to-tgt':>8}{'join/left':>11}{'admit/drop':>12}"
    )
    print(header)
    rows: List[Dict] = []
    for churn in args.churn:
        for staleness in args.staleness:
            config = base_config(args).with_overrides(
                fault_profile=FAULT_BACKDROP,
                churn_profile=churn,
                max_staleness=staleness,
            )
            for sampler in args.samplers:
                finals, bests, targets = [], [], []
                joined = left = admits = drops = 0
                for repeat in range(args.repeats):
                    telemetry = TelemetryRecorder()
                    result = run_single(
                        config,
                        sampler,
                        seed=args.seed + repeat,
                        telemetry=telemetry,
                    )
                    finals.append(result.history.final_accuracy())
                    bests.append(result.history.best_accuracy())
                    targets.append(
                        result.time_to_accuracy(config.target_accuracy)
                    )
                    joined += result.devices_joined
                    left += result.devices_left
                    admits += result.late_admits
                    drops += result.late_drops
                to_target = (
                    float(np.mean(targets))
                    if all(t is not None for t in targets)
                    else None
                )
                row = {
                    "churn": churn,
                    "max_staleness": staleness,
                    "sampler": sampler,
                    "final_accuracy": float(np.mean(finals)),
                    "best_accuracy": float(np.mean(bests)),
                    "steps_to_target": to_target,
                    "devices_joined": joined / args.repeats,
                    "devices_left": left / args.repeats,
                    "late_admits": admits / args.repeats,
                    "late_drops": drops / args.repeats,
                }
                rows.append(row)
                t_str = f"{to_target:.0f}" if to_target is not None else "miss"
                print(
                    f"{churn:>10}{staleness:>4}  {sampler:<10}"
                    f"{row['final_accuracy']:>8.3f}{row['best_accuracy']:>8.3f}"
                    f"{t_str:>8}"
                    f"{row['devices_joined']:>5.0f}/{row['devices_left']:<5.0f}"
                    f"{row['late_admits']:>6.1f}/{row['late_drops']:<5.1f}"
                )

    if args.json is not None:
        report = {
            "workload": {
                "preset": args.preset, "devices": args.devices,
                "edges": args.edges, "steps": args.steps,
                "samplers": args.samplers, "churn_profiles": args.churn,
                "staleness_windows": args.staleness,
                "fault_profile": FAULT_BACKDROP,
                "seed": args.seed, "repeats": args.repeats,
            },
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": rows,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")
    return 0


def run_smoke(args) -> int:
    """The CI open-population acceptance smoke."""
    config = base_config(args).with_overrides(
        num_devices=min(args.devices, 16),
    )
    open_world = config.with_overrides(
        fault_profile="moderate,deadline=1.5",
        churn_profile="moderate",
        max_staleness=3,
    )

    print("[smoke 1/4] churn-off gate is the closed-world engine ...")
    plain = run_single(config, "mach")
    gated = run_single(
        config.with_overrides(churn_profile="none", max_staleness=0), "mach"
    )
    if not identical(plain, gated):
        print(
            "FATAL: churn_profile='none' + max_staleness=0 diverged from "
            "the ungated engine",
            file=sys.stderr,
        )
        return 1
    print("        ok: gated and ungated runs bit-identical")

    print("[smoke 2/4] churn + staleness + faults on three executors ...")
    results = {}
    for executor in ("serial", "thread", "process"):
        telemetry = TelemetryRecorder()
        results[executor] = run_single(
            open_world.with_overrides(executor=executor, num_workers=2),
            "mach",
            telemetry=telemetry,
        )
        history = results[executor].history
        if not (
            np.all(np.isfinite(history.accuracy))
            and np.all(np.isfinite(history.loss))
        ):
            print(f"FATAL: non-finite metrics under {executor}", file=sys.stderr)
            return 1
        if executor == "serial":
            result = results[executor]
            if result.devices_joined + result.devices_left == 0:
                print("FATAL: moderate churn produced no transitions",
                      file=sys.stderr)
                return 1
            if result.late_admits + result.late_drops == 0:
                print("FATAL: no upload ever entered the staleness buffer",
                      file=sys.stderr)
                return 1
            bad_ages = [
                r.age for r in telemetry.late_admits
                if not 1 <= r.age <= open_world.max_staleness
            ]
            if bad_ages or any(
                not 0 < r.scale < np.inf for r in telemetry.late_admits
            ):
                print("FATAL: late admit violated the staleness bound or "
                      "produced a degenerate weight", file=sys.stderr)
                return 1
    for executor in ("thread", "process"):
        if not identical(results["serial"], results[executor]):
            print(
                f"FATAL: {executor} diverged from serial in the open world",
                file=sys.stderr,
            )
            return 1
    print("        ok: open world finite + three executors bit-identical")

    print("[smoke 3/4] checkpoint kill/resume under churn ...")
    if args.steps < 3:
        print("FATAL: smoke needs --steps >= 3 to kill mid-run", file=sys.stderr)
        return 1
    kill_at = args.steps // 2 + 1
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "checkpoint.json")
        ckpt_config = open_world.with_overrides(
            checkpoint_every=kill_at, checkpoint_path=path,
        )
        uninterrupted = run_single(ckpt_config, "mach")
        saved = TrainerCheckpoint.load(path)
        if saved.churn_state is None:
            print("FATAL: open-world checkpoint carries no churn state",
                  file=sys.stderr)
            return 1
        resumed = run_single(open_world, "mach", resume_from=path)
    if not identical(uninterrupted, resumed):
        print("FATAL: resumed run diverged from uninterrupted run",
              file=sys.stderr)
        return 1
    print(f"        ok: killed at step {kill_at}, resume replayed exactly")

    print("[smoke 4/4] corrupted checkpoint falls back to .prev ...")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "checkpoint.json"
        # checkpoint_every=2 writes at least twice over the horizon, so
        # save() leaves a rotated .prev beside the primary.
        run_single(
            open_world.with_overrides(
                checkpoint_every=2, checkpoint_path=str(path),
            ),
            "mach",
        )
        if not TrainerCheckpoint.previous_path(path).exists():
            print("FATAL: save() left no rotated .prev copy", file=sys.stderr)
            return 1
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        try:
            TrainerCheckpoint.load(path)
        except CheckpointIntegrityError:
            pass
        else:
            print("FATAL: truncated checkpoint loaded cleanly", file=sys.stderr)
            return 1
        try:
            fallback, used = TrainerCheckpoint.load_with_fallback(path)
        except (CheckpointIntegrityError, FileNotFoundError) as exc:
            print(f"FATAL: fallback failed: {exc}", file=sys.stderr)
            return 1
        if used != TrainerCheckpoint.previous_path(path):
            print("FATAL: fallback did not use the rotated copy",
                  file=sys.stderr)
            return 1
        run_single(open_world, "mach", resume_from=fallback)
    print("        ok: integrity error detected, .prev resumed the run")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", default="blobs-bench")
    parser.add_argument("--devices", type=int, default=32)
    parser.add_argument("--edges", type=int, default=4)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--samplers", nargs="+", default=["mach", "uniform"],
        help="sampler names to compare (default: mach uniform)",
    )
    parser.add_argument(
        "--churn", nargs="+", default=["none", "light", "moderate"],
        help="churn profiles to sweep (default: none light moderate)",
    )
    parser.add_argument(
        "--staleness", type=int, nargs="+", default=[0, 2, 5],
        help="max_staleness windows to sweep (default: 0 2 5)",
    )
    parser.add_argument("--repeats", type=int, default=1,
                        help="seeds per sweep point (mean is reported)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI acceptance smoke instead of the sweep",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    return run_sweep(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""City-scale population bench: devices vs wall-clock at fixed capacity.

Sweeps the device population over {1k, 10k, 100k} at a *fixed* sampled
capacity (participation_fraction scaled as target/devices) and reports
wall-clock plus peak RSS for MACH vs uniform on the dense and streaming
trace backends.  The question the table answers: does the city-scale
engine — population-batched local updates, chunked trace serving and
O(sampled) top-k MACH — keep wall-clock growth sub-linear in the
population when the per-step training work is constant?

Each cell runs in its own subprocess so ``ru_maxrss`` is an honest
per-cell peak, not a high-water mark inherited from a bigger neighbour.

Standalone (not pytest-benchmark: runs full training horizons)::

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --json benchmarks/results/BENCH_scale.json

CI scale-smoke mode (cheap; exercises the acceptance criteria)::

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke \
        --json scale_smoke_table.json

which asserts that (1) population-batched local updates are
bit-identical to the per-device reference twin end to end, (2) the
streaming trace backend is bit-identical to dense on a telecom trace
(whose streaming path wraps the same grid), (3) top-k MACH with a
pool covering every member equals the full Eq. (16)-(18) strategy, and
(4) a mid-sized streaming run stays under a peak-RSS ceiling — then
writes a two-population mini scaling table for the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments.config import PRESETS, ScenarioConfig
from repro.experiments.runner import run_single
from repro.hfl.trainer import TrainingResult
from repro.nn.population import population_batching_disabled

#: Sampled devices per step, held constant across populations.  With
#: participation_fraction = CAPACITY / devices, each step trains the
#: same number of devices whether the city holds 1k or 100k of them —
#: so any wall-clock growth is pure population overhead.
FIXED_CAPACITY = 48

#: Peak-RSS ceiling for the smoke's mid-sized streaming cell.  The
#: measured footprint is ~100 MB; a regression that materializes the
#: dense grid or per-device model copies blows well past 4x headroom.
SMOKE_RSS_CEILING_MB = 400


def cell_config(args, devices: int, backend: str) -> ScenarioConfig:
    return PRESETS[args.preset].with_overrides(
        num_devices=devices,
        num_edges=args.edges,
        num_steps=args.steps,
        samples_per_device=args.samples_per_device,
        participation_fraction=min(1.0, args.capacity / devices),
        trace_kind="markov",
        trace_backend=backend,
        mach_selection="topk",
        eval_cadence="adaptive",
        seed=args.seed,
    )


def identical(a: TrainingResult, b: TrainingResult) -> bool:
    return (
        a.history.steps == b.history.steps
        and a.history.accuracy == b.history.accuracy
        and a.history.loss == b.history.loss
        and np.array_equal(a.participation_counts, b.participation_counts)
    )


# ---------------------------------------------------------------------------
# Cell child process


def run_cell(spec: Dict) -> Dict:
    """One (devices, sampler, backend) measurement, reported as JSON."""
    from repro.experiments.runner import (
        build_scenario,
        hfl_config_for,
    )
    from repro.experiments.config import make_sampler
    from repro.hfl.trainer import HFLTrainer

    config_dict = dict(spec["config"])
    config = ScenarioConfig(**config_dict)
    t0 = time.perf_counter()
    devices, test, trace, model_factory = build_scenario(config, config.seed)
    setup_seconds = time.perf_counter() - t0

    trainer = HFLTrainer(
        model_factory=model_factory,
        device_datasets=devices,
        trace=trace,
        sampler=make_sampler(spec["sampler"], config),
        config=hfl_config_for(config, config.seed),
        test_dataset=test,
    )
    t1 = time.perf_counter()
    with trainer:
        result = trainer.run(config.num_steps)
    train_seconds = time.perf_counter() - t1

    return {
        "devices": config.num_devices,
        "sampler": spec["sampler"],
        "backend": config.trace_backend,
        "steps": config.num_steps,
        "setup_seconds": round(setup_seconds, 3),
        "train_seconds": round(train_seconds, 3),
        "steps_per_second": round(config.num_steps / train_seconds, 2),
        "final_accuracy": result.history.final_accuracy(),
        "evals": len(result.history.steps),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
    }


def spawn_cell(spec: Dict) -> Dict:
    """Run one cell in a fresh interpreter for an honest per-cell RSS."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--cell", json.dumps(spec)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"cell {spec['sampler']}/{spec['config']['num_devices']} failed:\n"
            f"{proc.stderr}"
        )
    for line in proc.stdout.splitlines():
        if line.startswith("@@CELL "):
            return json.loads(line[len("@@CELL "):])
    raise RuntimeError(f"cell produced no result line:\n{proc.stdout}")


# ---------------------------------------------------------------------------
# Sweep


def config_payload(config: ScenarioConfig) -> Dict:
    from dataclasses import asdict

    return asdict(config)


def run_sweep(args) -> int:
    print(
        f"fixed capacity: {args.capacity} sampled devices/step | "
        f"{args.edges} edges | {args.steps} steps | "
        f"populations: {', '.join(str(p) for p in args.populations)}"
    )
    header = (
        f"{'devices':>9}{'sampler':>9}{'backend':>11}{'setup':>8}"
        f"{'train':>9}{'steps/s':>9}{'rss MB':>8}{'final':>7}{'evals':>7}"
    )
    print(header)
    rows: List[Dict] = []
    for devices in args.populations:
        for backend in args.backends:
            for sampler in args.samplers:
                spec = {
                    "sampler": sampler,
                    "config": config_payload(cell_config(args, devices, backend)),
                }
                row = spawn_cell(spec)
                rows.append(row)
                print(
                    f"{row['devices']:>9}{row['sampler']:>9}{row['backend']:>11}"
                    f"{row['setup_seconds']:>8.2f}{row['train_seconds']:>9.2f}"
                    f"{row['steps_per_second']:>9.1f}{row['peak_rss_mb']:>8.0f}"
                    f"{row['final_accuracy']:>7.3f}{row['evals']:>7}"
                )

    flagship = None
    if args.flagship:
        print(f"[flagship] {args.flagship_devices} devices x "
              f"{args.flagship_steps} steps, streaming + topk + adaptive ...")
        flagship_args = argparse.Namespace(**vars(args))
        flagship_args.steps = args.flagship_steps
        spec = {
            "sampler": "mach",
            "config": config_payload(
                cell_config(flagship_args, args.flagship_devices, "streaming")
            ),
        }
        flagship = spawn_cell(spec)
        print(
            f"           done in {flagship['train_seconds']:.1f}s train "
            f"(+{flagship['setup_seconds']:.1f}s setup), "
            f"{flagship['peak_rss_mb']:.0f} MB peak, "
            f"final acc {flagship['final_accuracy']:.3f}"
        )

    growth = scaling_summary(rows, args)
    for line in growth["narrative"]:
        print(line)

    if args.json is not None:
        report = {
            "workload": {
                "preset": args.preset,
                "capacity": args.capacity,
                "edges": args.edges,
                "steps": args.steps,
                "samples_per_device": args.samples_per_device,
                "populations": args.populations,
                "samplers": args.samplers,
                "backends": args.backends,
                "seed": args.seed,
            },
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": rows,
            "scaling": growth["table"],
            "flagship": flagship,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report saved to {args.json}]")

    if growth["superlinear"]:
        print(
            "FATAL: wall-clock grew at least linearly with the population "
            "at fixed capacity", file=sys.stderr,
        )
        return 1
    return 0


def scaling_summary(rows: List[Dict], args) -> Dict:
    """Per (sampler, backend): wall-clock growth across the populations."""
    table, narrative, superlinear = [], [], False
    for backend in args.backends:
        for sampler in args.samplers:
            series = [
                r for r in rows
                if r["sampler"] == sampler and r["backend"] == backend
            ]
            series.sort(key=lambda r: r["devices"])
            if len(series) < 2:
                continue
            lo, hi = series[0], series[-1]
            pop_growth = hi["devices"] / lo["devices"]
            time_growth = hi["train_seconds"] / lo["train_seconds"]
            entry = {
                "sampler": sampler,
                "backend": backend,
                "population_growth": pop_growth,
                "train_time_growth": round(time_growth, 2),
                "sublinear": time_growth < pop_growth,
            }
            table.append(entry)
            narrative.append(
                f"[scaling] {sampler}/{backend}: {pop_growth:.0f}x devices -> "
                f"{time_growth:.1f}x wall-clock "
                f"({'sub-linear' if entry['sublinear'] else 'NOT sub-linear'})"
            )
            if not entry["sublinear"]:
                superlinear = True
    return {"table": table, "narrative": narrative, "superlinear": superlinear}


# ---------------------------------------------------------------------------
# Smoke


def run_smoke(args) -> int:
    """The CI city-scale acceptance smoke."""
    base = cell_config(args, devices=64, backend="dense").with_overrides(
        num_steps=min(args.steps, 20),
        participation_fraction=0.5,
        mach_selection="full",
        eval_cadence="fixed",
    )

    print("[smoke 1/4] population-batched updates == per-device reference ...")
    batched = run_single(base, "mach")
    with population_batching_disabled():
        reference = run_single(base, "mach")
    if not identical(batched, reference):
        print("FATAL: batched engine diverged from the per-device reference",
              file=sys.stderr)
        return 1
    print("        ok: batched and reference runs bit-identical")

    print("[smoke 2/4] streaming trace backend == dense (telecom grid) ...")
    telecom = base.with_overrides(trace_kind="telecom")
    dense = run_single(telecom, "mach")
    streamed = run_single(
        telecom.with_overrides(trace_backend="streaming", trace_chunk_steps=4),
        "mach",
    )
    if not identical(dense, streamed):
        print("FATAL: streaming backend diverged from dense", file=sys.stderr)
        return 1
    print("        ok: dense and streaming runs bit-identical")

    print("[smoke 3/4] top-k MACH with full-width pool == full strategy ...")
    full = run_single(base, "mach")
    topk = run_single(
        base.with_overrides(mach_selection="topk", mach_candidate_factor=1e6),
        "mach",
    )
    if not identical(full, topk):
        print("FATAL: top-k selection with a full-width pool diverged",
              file=sys.stderr)
        return 1
    print("        ok: top-k prescreen is conservative")

    print("[smoke 4/4] mid-sized streaming cell under the RSS ceiling ...")
    mini_args = argparse.Namespace(**vars(args))
    mini_args.steps = min(args.steps, 30)
    rows = []
    for devices in (1_000, 5_000):
        spec = {
            "sampler": "mach",
            "config": config_payload(
                cell_config(mini_args, devices, "streaming")
            ),
        }
        rows.append(spawn_cell(spec))
    worst = max(rows, key=lambda r: r["peak_rss_mb"])
    if worst["peak_rss_mb"] > SMOKE_RSS_CEILING_MB:
        print(
            f"FATAL: {worst['devices']}-device cell peaked at "
            f"{worst['peak_rss_mb']:.0f} MB "
            f"(ceiling {SMOKE_RSS_CEILING_MB} MB)", file=sys.stderr,
        )
        return 1
    print(
        f"        ok: peak RSS {worst['peak_rss_mb']:.0f} MB "
        f"<= {SMOKE_RSS_CEILING_MB} MB ceiling"
    )

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps({"results": rows}, indent=2) + "\n")
        print(f"[mini scaling table saved to {args.json}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", default="blobs-bench")
    parser.add_argument("--populations", type=int, nargs="+",
                        default=[1_000, 10_000, 100_000])
    parser.add_argument("--edges", type=int, default=8)
    parser.add_argument("--steps", type=int, default=120)
    parser.add_argument("--samples-per-device", type=int, default=10)
    parser.add_argument("--capacity", type=int, default=FIXED_CAPACITY,
                        help="sampled devices per step, fixed across populations")
    parser.add_argument("--samplers", nargs="+", default=["mach", "uniform"])
    parser.add_argument("--backends", nargs="+", default=["dense", "streaming"],
                        choices=["dense", "streaming"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--flagship", action="store_true", default=True,
                        help="also run the 100k-device 1k-step streaming cell")
    parser.add_argument("--no-flagship", dest="flagship", action="store_false")
    parser.add_argument("--flagship-devices", type=int, default=100_000)
    parser.add_argument("--flagship-steps", type=int, default=1_000)
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI acceptance smoke instead of the sweep")
    parser.add_argument("--cell", type=str, default=None,
                        help=argparse.SUPPRESS)  # internal: one subprocess cell
    args = parser.parse_args(argv)
    if args.cell is not None:
        print("@@CELL " + json.dumps(run_cell(json.loads(args.cell))))
        return 0
    if args.smoke:
        return run_smoke(args)
    return run_sweep(args)


if __name__ == "__main__":
    raise SystemExit(main())

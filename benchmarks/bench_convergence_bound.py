"""THEORY — executable checks of the §III-A analysis (DESIGN.md).

Verifies on synthetic gradient-norm populations that the Theorem-1
sampling objective orders: exact minimizer (q ∝ G) ≤ Eq. (13) closed
form (q ∝ G²), and that the Eq.-(7) virtual model is unbiased (Lemma 1).
A notable reproduction finding recorded by this benchmark: at large
norm spread the paper's q ∝ G² allocation is *worse than uniform* on
the very objective it is derived for (see EXPERIMENTS.md).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.experiments import theory


def test_convergence_bound_checks(benchmark):
    report = benchmark.pedantic(theory.run, rounds=1, iterations=1)
    save_report("theory", report.render())

    objectives = report.objective_by_strategy
    exact = objectives["bound_minimizing (q ∝ G)"]
    paper = objectives["paper_eq13 (q ∝ G²)"]
    uniform = objectives["uniform"]
    assert exact <= paper + 1e-9
    assert exact <= uniform + 1e-9
    assert report.lemma1_max_bias < 0.02
    benchmark.extra_info.update(
        {k: float(v) for k, v in objectives.items()}
    )
    benchmark.extra_info["lemma1_max_bias"] = report.lemma1_max_bias

"""ABL-SMOOTH — transfer-function (Eq. (17)) ablation (DESIGN.md).

Sweeps the (α, β) control coefficients and compares against disabling
the smoothing entirely (raw Remark-2 proportional allocation).  §III-B.2
motivates S(·) as variance protection for the inverse-probability
aggregation; under the practical ``fedavg`` weighting the raw allocation
is typically fastest, which this ablation quantifies.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.experiments import ablations


def test_ablation_smoothing(benchmark, preset, repeats):
    def once():
        return ablations.run_smoothing_ablation(preset=preset, repeats=repeats)

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    save_report("ablation_smoothing", report.render())
    for label, steps, acc in report.rows:
        benchmark.extra_info[label] = {"steps": steps, "final_accuracy": acc}

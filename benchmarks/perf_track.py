"""Performance regression tracking against the committed baselines.

The repo ships measured baselines under ``benchmarks/results/`` —
six ad-hoc ``BENCH_*.json`` files with per-benchmark shapes.  This tool
adapts each into the canonical :mod:`perf_schema` cell list and diffs a
fresh report against it with a configurable relative tolerance, so "did
this PR regress the engine?" becomes one command instead of six manual
comparisons.

Modes::

    # list the known baselines and their canonical cells
    PYTHONPATH=src python benchmarks/perf_track.py --list

    # diff two reports (canonical perf_schema files or committed
    # BENCH_*.json baselines; adapters are applied automatically)
    PYTHONPATH=src python benchmarks/perf_track.py \
        --fresh /tmp/fresh.json --baseline benchmarks/results/BENCH_obs.json

    # CI gate: re-run the obs workload and compare the
    # host-insensitive cells (bit-identity, sink volumes, profiler
    # overhead bound) against the committed BENCH_obs.json
    PYTHONPATH=src python benchmarks/perf_track.py --smoke

Metric direction is inferred from the name: ``*_seconds``, ``*_rss_mb``,
``overhead`` and ``steps_to_target`` regress upward; ``speedup``,
``steps_per_second`` and ``*accuracy`` regress downward.  Timing cells
move with the host, so ``--smoke`` only gates on deterministic metrics
(marked ``host_insensitive`` by the adapters) plus an absolute overhead
bound on the fresh run.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_schema import (  # noqa: E402
    SCHEMA_VERSION,
    PerfCell,
    load_report,
    make_report,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Metrics that do not depend on host speed: safe to gate in CI.
HOST_INSENSITIVE = (
    "identical",
    "sinks_identical",
    "profiled_identical",
    "events",
    "spans",
    "audit_decisions",
    "metric_families",
    "final_accuracy",
    "best_accuracy",
    "steps_to_target",
    "devices_joined",
    "devices_left",
    "late_admits",
    "late_drops",
    "sublinear",
    "evals",
)

_LOWER_IS_BETTER_SUFFIXES = (
    "_seconds",
    "_rss_mb",
    "seconds",
    "overhead",
    "steps_to_target",
    "late_drops",
)
_HIGHER_IS_BETTER_SUFFIXES = (
    "speedup",
    "steps_per_second",
    "accuracy",
    "identical",
    "sublinear",
)


def metric_direction(name: str) -> int:
    """+1 when an increase is a regression, -1 when a decrease is."""
    for suffix in _HIGHER_IS_BETTER_SUFFIXES:
        if name.endswith(suffix):
            return -1
    for suffix in _LOWER_IS_BETTER_SUFFIXES:
        if name.endswith(suffix):
            return 1
    return 1  # conservative default: bigger numbers are worse


# ---------------------------------------------------------------------------
# Adapters: committed ad-hoc BENCH_*.json -> canonical cells
# ---------------------------------------------------------------------------


def _adapt_obs(payload: dict) -> List[PerfCell]:
    cells = []
    for row in payload["results"]:
        name = f"obs/{row['sampler']}/{row['devices']}dev"
        volume = row.get("sink_volume", {})
        cells.append(PerfCell(name, {
            "baseline_seconds": row["baseline_seconds"],
            "observed_seconds": row["observed_seconds"],
            "overhead": row["overhead"],
            "identical": row["identical"],
            "events": volume.get("events"),
            "spans": volume.get("spans"),
            "audit_decisions": volume.get("audit_decisions"),
            "metric_families": volume.get("metric_families"),
            "sinks_seconds": row.get("sinks_seconds"),
            "sinks_overhead": row.get("sinks_overhead"),
            "sinks_identical": row.get("sinks_identical"),
            "profiler_overhead": row.get("profiler_overhead"),
            "profiled_seconds": row.get("profiled_seconds"),
            "profiled_identical": row.get("profiled_identical"),
        }))
    return cells


def _adapt_scale(payload: dict) -> List[PerfCell]:
    cells = []
    for row in payload["results"]:
        name = f"scale/{row['sampler']}/{row['backend']}/{row['devices']}dev"
        cells.append(PerfCell(name, {
            "train_seconds": row["train_seconds"],
            "setup_seconds": row["setup_seconds"],
            "steps_per_second": row["steps_per_second"],
            "final_accuracy": row["final_accuracy"],
            "peak_rss_mb": row["peak_rss_mb"],
        }))
    for row in payload.get("scaling", []):
        name = f"scale/{row['sampler']}/{row['backend']}/scaling"
        cells.append(PerfCell(name, {
            "train_time_growth": row["train_time_growth"],
            "sublinear": row["sublinear"],
        }))
    flagship = payload.get("flagship")
    if flagship:
        cells.append(PerfCell("scale/flagship", {
            "train_seconds": flagship["train_seconds"],
            "steps_per_second": flagship["steps_per_second"],
            "peak_rss_mb": flagship["peak_rss_mb"],
            "final_accuracy": flagship["final_accuracy"],
        }))
    return cells


def _adapt_hotpath(payload: dict) -> List[PerfCell]:
    return [
        PerfCell(f"hotpath/{row['workload']}", {
            "speedup": row["speedup"],
            "identical": row["identical"],
            "reference_seconds": row["reference"].get("seconds"),
            "optimized_seconds": row["optimized"].get("seconds"),
        })
        for row in payload["results"]
    ]


def _adapt_runtime(payload: dict) -> List[PerfCell]:
    return [
        PerfCell(f"runtime/{row['backend']}/{row['workers']}w", {
            "seconds": row["seconds"],
            "speedup": row["speedup"],
            "identical": row["identical"],
        })
        for row in payload["results"]
    ]


def _adapt_topology(payload: dict) -> List[PerfCell]:
    return [
        PerfCell(
            f"topology/{row['topology']}/{row['aggregation']}/{row['sampler']}",
            {
                "steps_to_target": row["steps_to_target"],
                "final_accuracy": row["final_accuracy"],
                "best_accuracy": row["best_accuracy"],
                "seconds": row["seconds"],
            },
        )
        for row in payload["results"]
    ]


def _adapt_churn(payload: dict) -> List[PerfCell]:
    return [
        PerfCell(
            f"churn/{row['churn']}/stale{row['max_staleness']}/{row['sampler']}",
            {
                "final_accuracy": row["final_accuracy"],
                "best_accuracy": row["best_accuracy"],
                "devices_joined": row["devices_joined"],
                "devices_left": row["devices_left"],
                "late_admits": row["late_admits"],
                "late_drops": row["late_drops"],
            },
        )
        for row in payload["results"]
    ]


ADAPTERS: Dict[str, Callable[[dict], List[PerfCell]]] = {
    "BENCH_obs.json": _adapt_obs,
    "BENCH_scale.json": _adapt_scale,
    "BENCH_hotpath.json": _adapt_hotpath,
    "BENCH_runtime.json": _adapt_runtime,
    "BENCH_topology.json": _adapt_topology,
    "BENCH_churn.json": _adapt_churn,
}


def load_any(path: Path) -> Tuple[str, List[PerfCell]]:
    """Load canonical reports directly, adapt known ad-hoc baselines."""
    payload = json.loads(path.read_text())
    if payload.get("schema_version") == SCHEMA_VERSION:
        report = load_report(path)
        return report["workload"], report["cells"]
    adapter = ADAPTERS.get(path.name)
    if adapter is None:
        raise ValueError(
            f"{path}: not a schema_version={SCHEMA_VERSION} report and no "
            f"adapter is registered for {path.name!r} "
            f"(known: {sorted(ADAPTERS)})"
        )
    return path.stem, adapter(payload)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def compare_cells(
    baseline: List[PerfCell],
    fresh: List[PerfCell],
    tolerance: float,
    metrics_filter: Optional[Tuple[str, ...]] = None,
) -> List[dict]:
    """Diff two cell lists; returns one row per (cell, metric).

    ``status`` is ``ok`` (within tolerance), ``improved``, ``regressed``
    or ``missing`` (cell/metric present in the baseline but absent from
    the fresh report — itself a regression in coverage).  Cells only in
    the fresh report are reported as ``new`` and never fail the diff.
    """
    baseline_by_name = {cell.name: cell for cell in baseline}
    fresh_by_name = {cell.name: cell for cell in fresh}
    rows: List[dict] = []
    for name, base_cell in sorted(baseline_by_name.items()):
        fresh_cell = fresh_by_name.get(name)
        for metric, base_value in sorted(base_cell.metrics.items()):
            if metrics_filter is not None and metric not in metrics_filter:
                continue
            row = {
                "cell": name,
                "metric": metric,
                "baseline": base_value,
                "fresh": None,
                "change": None,
                "status": "missing",
            }
            if fresh_cell is not None and metric in fresh_cell.metrics:
                fresh_value = fresh_cell.metrics[metric]
                row["fresh"] = fresh_value
                scale = abs(base_value) if base_value else 1.0
                change = (fresh_value - base_value) / scale
                row["change"] = change
                signed = change * metric_direction(metric)
                if signed > tolerance:
                    row["status"] = "regressed"
                elif signed < -tolerance:
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
            rows.append(row)
    for name in sorted(set(fresh_by_name) - set(baseline_by_name)):
        rows.append({
            "cell": name,
            "metric": None,
            "baseline": None,
            "fresh": None,
            "change": None,
            "status": "new",
        })
    return rows


def print_diff(rows: List[dict], show_ok: bool = False) -> None:
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row["status"]] = counts.get(row["status"], 0) + 1
        if row["status"] == "ok" and not show_ok:
            continue
        change = (
            f"{100 * row['change']:+.1f}%" if row["change"] is not None else "-"
        )
        print(
            f"{row['status']:>9}  {row['cell']}::{row['metric']}  "
            f"baseline={row['baseline']} fresh={row['fresh']} ({change})"
        )
    summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"[perf_track] {summary or 'no overlapping cells'}")


# ---------------------------------------------------------------------------
# CLI modes
# ---------------------------------------------------------------------------


def run_list() -> int:
    for name in sorted(ADAPTERS):
        path = RESULTS_DIR / name
        if not path.exists():
            print(f"{name}: MISSING from {RESULTS_DIR}")
            continue
        workload, cells = load_any(path)
        print(f"{name}: workload={workload}, {len(cells)} cells")
        for cell in cells:
            print(f"    {cell.name}: {', '.join(sorted(cell.metrics))}")
    return 0


def run_diff(args) -> int:
    _, baseline_cells = load_any(args.baseline)
    _, fresh_cells = load_any(args.fresh)
    metrics_filter = HOST_INSENSITIVE if args.host_insensitive else None
    rows = compare_cells(
        baseline_cells, fresh_cells, args.tolerance, metrics_filter
    )
    print_diff(rows, show_ok=args.show_ok)
    regressions = [
        r for r in rows if r["status"] in ("regressed", "missing")
    ]
    if regressions:
        print(
            f"FATAL: {len(regressions)} regression(s) beyond the "
            f"{100 * args.tolerance:.0f}% tolerance",
            file=sys.stderr,
        )
        return 1
    return 0


def run_smoke(args) -> int:
    """CI gate: fresh obs measurement vs committed BENCH_obs.json.

    Timing cells swing with the shared runner, so the gate compares
    only host-insensitive metrics (bit-identity flags and sink
    volumes, which are functions of the workload alone) and bounds the
    fresh profiler/obs overhead absolutely rather than relatively.
    """
    import bench_obs

    baseline_path = RESULTS_DIR / "BENCH_obs.json"
    _, baseline_cells = load_any(baseline_path)

    bench_args = bench_obs.main_parser().parse_args([])
    bench_args.repeats = args.repeats
    print(
        f"[perf_track] fresh obs measurement "
        f"({bench_args.devices} devices, {bench_args.steps} steps, "
        f"repeats={bench_args.repeats}) ..."
    )
    with tempfile.TemporaryDirectory() as tmp:
        row = bench_obs.measure(bench_args, Path(tmp))
    fresh_cells = _adapt_obs({"results": [
        {k: v for k, v in row.items() if not k.startswith("_")}
    ]})

    rows = compare_cells(
        baseline_cells, fresh_cells, args.tolerance,
        metrics_filter=HOST_INSENSITIVE,
    )
    print_diff(rows, show_ok=True)

    failures = [r for r in rows if r["status"] in ("regressed", "missing")]
    if row["sinks_overhead"] > args.max_overhead:
        print(
            f"FATAL: fresh sink overhead {100 * row['sinks_overhead']:.1f}% "
            f"exceeds the {100 * args.max_overhead:.0f}% smoke bound",
            file=sys.stderr,
        )
        return 1
    profiler_overhead = row.get("profiler_overhead")
    if profiler_overhead is not None:
        print(
            f"[perf_track] profiler overhead {100 * profiler_overhead:+.2f}% "
            f"(bound {100 * args.max_overhead:.0f}%)"
        )
        if profiler_overhead > args.max_overhead:
            print(
                f"FATAL: profiler overhead {100 * profiler_overhead:.1f}% "
                f"exceeds the {100 * args.max_overhead:.0f}% smoke bound",
                file=sys.stderr,
            )
            return 1
    if failures:
        print(
            f"FATAL: {len(failures)} deterministic metric(s) diverged from "
            f"{baseline_path.name}",
            file=sys.stderr,
        )
        return 1
    print("[perf_track] ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--list", action="store_true",
                        help="list known baselines and their cells")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate against BENCH_obs.json")
    parser.add_argument("--fresh", type=Path, default=None,
                        help="fresh report to diff (canonical or BENCH_*)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline report to diff against")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance before a change counts as a "
                             "regression (default: 0.10)")
    parser.add_argument("--max-overhead", type=float, default=0.5,
                        help="absolute obs/profiler overhead bound asserted "
                             "by --smoke (default: 0.5, lenient for CI)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats for the --smoke fresh run")
    parser.add_argument("--host-insensitive", action="store_true",
                        help="restrict an offline diff to host-insensitive "
                             "metrics")
    parser.add_argument("--show-ok", action="store_true",
                        help="also print within-tolerance rows")
    args = parser.parse_args(argv)
    if args.list:
        return run_list()
    if args.smoke:
        return run_smoke(args)
    if args.fresh is not None and args.baseline is not None:
        return run_diff(args)
    parser.error("pick a mode: --list, --smoke, or --fresh/--baseline")
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())

"""Tests for the Non-IID partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    dirichlet_partition,
    equal_size_dirichlet_partition,
    long_tailed_class_weights,
    partition_summary,
    shard_partition,
)


class TestLongTailedClassWeights:
    def test_simplex(self):
        w = long_tailed_class_weights(10, imbalance=4.0)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_imbalance_ratio_exact(self):
        w = long_tailed_class_weights(10, imbalance=8.0)
        assert w[0] / w[-1] == pytest.approx(8.0)

    def test_uniform_at_one(self):
        np.testing.assert_allclose(long_tailed_class_weights(5, imbalance=1.0), 0.2)

    def test_monotone_decreasing(self):
        w = long_tailed_class_weights(10, imbalance=4.0)
        assert np.all(np.diff(w) < 0)

    def test_single_class(self):
        np.testing.assert_array_equal(long_tailed_class_weights(1, 4.0), [1.0])

    def test_rejects_imbalance_below_one(self):
        with pytest.raises(ValueError):
            long_tailed_class_weights(5, imbalance=0.5)

    @given(st.integers(2, 20), st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_simplex_property(self, classes, imbalance):
        w = long_tailed_class_weights(classes, imbalance)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] / w[-1] == pytest.approx(imbalance, rel=1e-6)


class TestEqualSizeDirichletPartition:
    def test_equal_sizes(self):
        labels = equal_size_dirichlet_partition(8, 25, 10, alpha=0.5, rng=0)
        assert len(labels) == 8
        assert all(lbl.shape == (25,) for lbl in labels)

    def test_labels_in_range(self):
        labels = equal_size_dirichlet_partition(5, 40, 7, alpha=0.5, rng=1)
        for lbl in labels:
            assert lbl.min() >= 0 and lbl.max() < 7

    def test_low_alpha_concentrates(self):
        concentrated = equal_size_dirichlet_partition(20, 100, 10, alpha=0.05, rng=2)
        diffuse = equal_size_dirichlet_partition(20, 100, 10, alpha=50.0, rng=2)
        eff = lambda split: partition_summary(split, 10)["mean_effective_classes"]
        assert eff(concentrated) < eff(diffuse)

    def test_respects_global_prior_in_expectation(self):
        prior = long_tailed_class_weights(10, imbalance=6.0)
        labels = equal_size_dirichlet_partition(
            200, 100, 10, alpha=1.0, global_prior=prior, rng=3
        )
        counts = np.bincount(np.concatenate(labels), minlength=10)
        empirical = counts / counts.sum()
        np.testing.assert_allclose(empirical, prior, atol=0.03)

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError, match="sum to 1"):
            equal_size_dirichlet_partition(2, 5, 3, global_prior=np.array([1, 1, 1.0]))
        with pytest.raises(ValueError, match="shape"):
            equal_size_dirichlet_partition(2, 5, 3, global_prior=np.array([0.5, 0.5]))

    def test_deterministic_under_seed(self):
        a = equal_size_dirichlet_partition(4, 10, 5, rng=9)
        b = equal_size_dirichlet_partition(4, 10, 5, rng=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestDirichletPartition:
    def test_partitions_cover_pool(self):
        labels = np.random.default_rng(0).integers(0, 5, size=200)
        parts = dirichlet_partition(labels, 6, alpha=0.5, rng=0)
        all_idx = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(all_idx, np.arange(200))

    def test_parts_are_disjoint(self):
        labels = np.random.default_rng(1).integers(0, 5, size=150)
        parts = dirichlet_partition(labels, 5, alpha=0.5, rng=1)
        seen = set()
        for part in parts:
            for i in part:
                assert i not in seen
                seen.add(i)

    def test_min_samples_enforced(self):
        labels = np.random.default_rng(2).integers(0, 10, size=500)
        parts = dirichlet_partition(labels, 10, alpha=0.3, rng=2, min_samples=5)
        assert min(len(p) for p in parts) >= 5

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError, match="empty"):
            dirichlet_partition(np.array([], dtype=int), 3)


class TestShardPartition:
    def test_each_device_gets_shards(self):
        labels = np.sort(np.random.default_rng(0).integers(0, 10, size=100))
        parts = shard_partition(labels, 10, shards_per_device=2, rng=0)
        assert len(parts) == 10
        all_idx = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(all_idx, np.arange(100))

    def test_devices_see_few_classes(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 10, size=1000)
        parts = shard_partition(labels, 20, shards_per_device=2, rng=3)
        classes_per_device = [len(np.unique(labels[p])) for p in parts]
        # Each device holds 2 contiguous label shards: at most ~3 classes.
        assert max(classes_per_device) <= 4
        assert np.mean(classes_per_device) < 3.5

    def test_too_few_examples_raises(self):
        with pytest.raises(ValueError, match="at least"):
            shard_partition(np.zeros(5, dtype=int), 3, shards_per_device=2)


class TestPartitionSummary:
    def test_iid_split_has_low_tv(self):
        rng = np.random.default_rng(0)
        split = [rng.integers(0, 10, size=500) for _ in range(10)]
        summary = partition_summary(split, 10)
        assert summary["mean_tv_distance"] < 0.1
        assert summary["mean_effective_classes"] > 8

    def test_pathological_split_has_high_tv(self):
        split = [np.full(100, c % 10) for c in range(10)]
        summary = partition_summary(split, 10)
        assert summary["mean_tv_distance"] > 0.8
        assert summary["mean_effective_classes"] == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            partition_summary([], 10)

"""Tests for the real-corpus file-format loaders (IDX / CIFAR-10)."""

import gzip
import pickle
import struct

import numpy as np
import pytest

from repro.data.loaders import (
    concatenate_datasets,
    load_cifar10_binary_batch,
    load_cifar10_pickle_batch,
    load_idx_images,
    load_idx_labels,
    load_mnist_idx,
)
from repro.data.synthetic import make_blobs_dataset


def write_idx_images(path, images):
    """Write a uint8 (N, H, W) array in IDX3 format."""
    count, rows, cols = images.shape
    with open(path, "wb") as f:
        f.write(struct.pack(">IIII", 2051, count, rows, cols))
        f.write(images.astype(np.uint8).tobytes())


def write_idx_labels(path, labels):
    with open(path, "wb") as f:
        f.write(struct.pack(">II", 2049, len(labels)))
        f.write(np.asarray(labels, dtype=np.uint8).tobytes())


@pytest.fixture
def idx_pair(tmp_path, rng):
    images = rng.integers(0, 256, size=(12, 28, 28)).astype(np.uint8)
    labels = rng.integers(0, 10, size=12).astype(np.uint8)
    img_path = tmp_path / "train-images-idx3-ubyte"
    lbl_path = tmp_path / "train-labels-idx1-ubyte"
    write_idx_images(img_path, images)
    write_idx_labels(lbl_path, labels)
    return img_path, lbl_path, images, labels


class TestIdxLoaders:
    def test_round_trip(self, idx_pair):
        img_path, lbl_path, images, labels = idx_pair
        loaded = load_idx_images(img_path)
        assert loaded.shape == (12, 1, 28, 28)
        np.testing.assert_allclose(loaded[:, 0] * 255.0, images)
        np.testing.assert_array_equal(load_idx_labels(lbl_path), labels)

    def test_gzip_supported(self, tmp_path, idx_pair):
        img_path, _lbl, images, _labels = idx_pair
        gz_path = tmp_path / "images.idx.gz"
        gz_path.write_bytes(gzip.compress(img_path.read_bytes()))
        loaded = load_idx_images(gz_path)
        np.testing.assert_allclose(loaded[:, 0] * 255.0, images)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_idx_images(tmp_path / "nope")
        with pytest.raises(FileNotFoundError):
            load_idx_labels(tmp_path / "nope")

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(struct.pack(">IIII", 9999, 1, 2, 2) + b"\x00" * 4)
        with pytest.raises(ValueError, match="IDX3"):
            load_idx_images(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(struct.pack(">IIII", 2051, 10, 28, 28) + b"\x00" * 5)
        with pytest.raises(ValueError, match="truncated"):
            load_idx_images(path)

    def test_load_mnist_idx_dataset(self, idx_pair):
        img_path, lbl_path, _images, labels = idx_pair
        ds = load_mnist_idx(img_path, lbl_path)
        assert len(ds) == 12
        assert ds.feature_shape == (1, 28, 28)
        np.testing.assert_array_equal(ds.y, labels)
        # Normalized: roughly zero-mean, unit-std.
        assert abs(ds.x.mean()) < 1e-6
        assert ds.x.std() == pytest.approx(1.0, abs=1e-6)

    def test_count_mismatch_rejected(self, tmp_path, rng):
        img_path = tmp_path / "img"
        lbl_path = tmp_path / "lbl"
        write_idx_images(img_path, rng.integers(0, 256, (5, 4, 4)).astype(np.uint8))
        write_idx_labels(lbl_path, rng.integers(0, 10, 7))
        with pytest.raises(ValueError, match="mismatch"):
            load_mnist_idx(img_path, lbl_path)


class TestCifarLoaders:
    def test_binary_batch_round_trip(self, tmp_path, rng):
        count = 6
        labels = rng.integers(0, 10, count).astype(np.uint8)
        pixels = rng.integers(0, 256, size=(count, 3072)).astype(np.uint8)
        records = b"".join(
            bytes([labels[i]]) + pixels[i].tobytes() for i in range(count)
        )
        path = tmp_path / "data_batch_1.bin"
        path.write_bytes(records)
        ds = load_cifar10_binary_batch(path)
        assert len(ds) == count
        assert ds.feature_shape == (3, 32, 32)
        np.testing.assert_array_equal(ds.y, labels)

    def test_binary_batch_bad_size(self, tmp_path):
        path = tmp_path / "corrupt.bin"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError, match="not a CIFAR-10"):
            load_cifar10_binary_batch(path)

    def test_pickle_batch_round_trip(self, tmp_path, rng):
        count = 4
        labels = rng.integers(0, 10, count).tolist()
        data = rng.integers(0, 256, size=(count, 3072)).astype(np.uint8)
        path = tmp_path / "data_batch_1"
        with open(path, "wb") as f:
            pickle.dump({b"data": data, b"labels": labels}, f)
        ds = load_cifar10_pickle_batch(path)
        assert len(ds) == count
        np.testing.assert_array_equal(ds.y, labels)

    def test_pickle_batch_missing_keys(self, tmp_path):
        path = tmp_path / "weird"
        with open(path, "wb") as f:
            pickle.dump({"foo": 1}, f)
        with pytest.raises(ValueError, match="lacks"):
            load_cifar10_pickle_batch(path)

    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cifar10_binary_batch(tmp_path / "nope")
        with pytest.raises(FileNotFoundError):
            load_cifar10_pickle_batch(tmp_path / "nope")


class TestConcatenateDatasets:
    def test_concatenation(self):
        a = make_blobs_dataset(5, rng=0)
        b = make_blobs_dataset(7, rng=1)
        combined = concatenate_datasets([a, b])
        assert len(combined) == 12

    def test_incompatible_rejected(self):
        a = make_blobs_dataset(5, num_features=8, rng=0)
        b = make_blobs_dataset(5, num_features=16, rng=0)
        with pytest.raises(ValueError, match="compatible"):
            concatenate_datasets([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate_datasets([])

"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    TASK_SPECS,
    SyntheticTaskSpec,
    make_blobs_dataset,
    make_federated_task,
    make_synthetic_image_dataset,
)
from repro.nn.architectures import build_mlp
from repro.nn.loss import SoftmaxCrossEntropy


class TestTaskSpecs:
    def test_paper_shapes(self):
        assert TASK_SPECS["mnist"].input_shape == (1, 28, 28)
        assert TASK_SPECS["fmnist"].input_shape == (1, 28, 28)
        assert TASK_SPECS["cifar10"].input_shape == (3, 32, 32)

    def test_difficulty_ordering(self):
        """The separation/noise ratio must fall mnist > fmnist > cifar10,
        mirroring the real corpora's difficulty ordering."""
        ratio = lambda name: TASK_SPECS[name].separation / TASK_SPECS[name].noise
        assert ratio("mnist") > ratio("fmnist") > ratio("cifar10")

    def test_scaled_changes_resolution_only(self):
        spec = TASK_SPECS["cifar10"].scaled(8)
        assert spec.input_shape == (3, 8, 8)
        assert spec.separation == TASK_SPECS["cifar10"].separation


class TestMakeSyntheticImageDataset:
    def test_shapes_and_classes(self):
        ds = make_synthetic_image_dataset("mnist", 30, rng=0)
        assert ds.x.shape == (30, 1, 28, 28)
        assert ds.num_classes == 10

    def test_image_size_override(self):
        ds = make_synthetic_image_dataset("cifar10", 5, image_size=8, rng=0)
        assert ds.x.shape == (5, 3, 8, 8)

    def test_explicit_labels(self):
        labels = np.array([3, 3, 7])
        ds = make_synthetic_image_dataset("mnist", 0, labels=labels, rng=0)
        np.testing.assert_array_equal(ds.y, labels)

    def test_same_class_geometry_across_datasets(self):
        """Train and test sets must agree on class prototypes: same-class
        means across two independently drawn datasets correlate."""
        a = make_synthetic_image_dataset("mnist", 0, labels=np.full(50, 2), rng=1)
        b = make_synthetic_image_dataset("mnist", 0, labels=np.full(50, 2), rng=2)
        mean_a, mean_b = a.x.mean(axis=0).ravel(), b.x.mean(axis=0).ravel()
        corr = np.corrcoef(mean_a, mean_b)[0, 1]
        assert corr > 0.8

    def test_distinct_classes_have_distinct_prototypes(self):
        a = make_synthetic_image_dataset("mnist", 0, labels=np.full(50, 0), rng=1)
        b = make_synthetic_image_dataset("mnist", 0, labels=np.full(50, 1), rng=1)
        corr = np.corrcoef(a.x.mean(axis=0).ravel(), b.x.mean(axis=0).ravel())[0, 1]
        assert abs(corr) < 0.5

    def test_separation_override_scales_signal(self):
        strong = make_synthetic_image_dataset(
            "mnist", 0, labels=np.full(80, 1), separation=5.0, noise=0.1, rng=3
        )
        weak = make_synthetic_image_dataset(
            "mnist", 0, labels=np.full(80, 1), separation=0.1, noise=0.1, rng=3
        )
        assert np.abs(strong.x.mean(axis=0)).mean() > np.abs(weak.x.mean(axis=0)).mean()

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError, match="unknown task"):
            make_synthetic_image_dataset("svhn", 5)

    def test_learnable_by_small_model(self):
        """A linear model must exceed chance on the mnist-like task."""
        train = make_synthetic_image_dataset("mnist", 400, image_size=8, rng=0)
        test = make_synthetic_image_dataset("mnist", 200, image_size=8, rng=1)
        model = build_mlp(64, num_classes=10, hidden=(32,), rng=np.random.default_rng(0))
        x = train.x.reshape(len(train), -1)
        for _ in range(150):
            _l, g = model.loss_and_grad(x, train.y, SoftmaxCrossEntropy())
            model.load_flat(model.flat_copy() - 0.1 * g)
        acc = np.mean(model.predict(test.x.reshape(len(test), -1)) == test.y)
        assert acc > 0.5  # well above the 0.1 chance level


class TestMakeBlobsDataset:
    def test_shapes(self):
        ds = make_blobs_dataset(25, num_features=8, num_classes=5, rng=0)
        assert ds.x.shape == (25, 8)
        assert ds.num_classes == 5

    def test_separation_controls_difficulty(self):
        easy = make_blobs_dataset(500, separation=6.0, noise=0.5, rng=0)
        hard = make_blobs_dataset(500, separation=0.1, noise=2.0, rng=0)

        def centroid_spread(ds):
            centroids = np.stack(
                [ds.x[ds.y == c].mean(axis=0) for c in range(10) if (ds.y == c).any()]
            )
            return np.linalg.norm(centroids - centroids.mean(axis=0), axis=1).mean()

        assert centroid_spread(easy) > centroid_spread(hard)


class TestMakeFederatedTask:
    def test_device_count_and_sizes(self):
        devices, test = make_federated_task(
            "blobs", num_devices=6, samples_per_device=20, test_samples=50, rng=0
        )
        assert len(devices) == 6
        assert all(len(d) == 20 for d in devices)
        assert len(test) == 50

    def test_image_task(self):
        devices, test = make_federated_task(
            "mnist", num_devices=3, samples_per_device=5, test_samples=10,
            image_size=8, rng=0,
        )
        assert devices[0].x.shape == (5, 1, 8, 8)
        assert test.x.shape == (10, 1, 8, 8)

    def test_balanced_test_distribution(self):
        _d, test = make_federated_task(
            "blobs", 2, 5, test_samples=100, test_distribution="balanced", rng=0
        )
        counts = test.class_counts()
        assert counts.max() - counts.min() <= 1

    def test_global_test_distribution_is_long_tailed(self):
        _d, test = make_federated_task(
            "blobs", 2, 5, test_samples=2000, imbalance=8.0,
            test_distribution="global", rng=0,
        )
        counts = test.class_counts()
        assert counts[0] > 3 * counts[-1]

    def test_rejects_unknown_test_distribution(self):
        with pytest.raises(ValueError, match="test_distribution"):
            make_federated_task("blobs", 2, 5, test_distribution="weird", rng=0)

    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            make_federated_task("imagenet", 2, 5)

    def test_devices_are_heterogeneous(self):
        devices, _t = make_federated_task(
            "blobs", num_devices=10, samples_per_device=50, alpha=0.1, rng=0
        )
        dists = np.stack([d.class_distribution() for d in devices])
        # With alpha=0.1 some devices concentrate heavily on one class.
        assert dists.max() > 0.6

    def test_deterministic_under_seed(self):
        d1, t1 = make_federated_task("blobs", 3, 10, test_samples=20, rng=5)
        d2, t2 = make_federated_task("blobs", 3, 10, test_samples=20, rng=5)
        np.testing.assert_array_equal(d1[0].x, d2[0].x)
        np.testing.assert_array_equal(t1.y, t2.y)

"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_split


def make(n=20, classes=4, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return Dataset(rng.normal(size=(n, 3)), rng.integers(0, classes, size=n), classes)


class TestDataset:
    def test_len_and_feature_shape(self):
        ds = make(15)
        assert len(ds) == 15
        assert ds.feature_shape == (3,)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatch"):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError, match="labels out of range"):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError, match="1-D"):
            Dataset(np.zeros((2, 2)), np.zeros((2, 1), dtype=int), 2)

    def test_subset_preserves_labels(self):
        ds = make(10)
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, ds.y[[1, 3, 5]])
        assert sub.num_classes == ds.num_classes

    def test_sample_batch_shapes(self):
        ds = make(10)
        x, y = ds.sample_batch(4, rng=0)
        assert x.shape == (4, 3) and y.shape == (4,)

    def test_sample_batch_caps_at_dataset_size(self):
        ds = make(3)
        x, _y = ds.sample_batch(10, rng=0)
        assert x.shape[0] == 3

    def test_sample_batch_deterministic_under_seed(self):
        ds = make(10)
        x1, y1 = ds.sample_batch(5, rng=42)
        x2, y2 = ds.sample_batch(5, rng=42)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_sample_batch_empty_raises(self):
        ds = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 2)
        with pytest.raises(ValueError, match="empty"):
            ds.sample_batch(1)

    def test_sample_batches_matches_sequential_draws(self):
        """Pre-drawing I batches consumes the RNG stream exactly like I
        sequential sample_batch calls — the bit-identity argument for
        the batched local-update path."""
        ds = make(10)
        gen_a = np.random.default_rng(9)
        xs, ys = ds.sample_batches(4, 3, rng=gen_a)
        gen_b = np.random.default_rng(9)
        for tau in range(4):
            x, y = ds.sample_batch(3, rng=gen_b)
            np.testing.assert_array_equal(xs[tau], x)
            np.testing.assert_array_equal(ys[tau], y)
        # Subsequent draws from both generators still agree.
        np.testing.assert_array_equal(
            gen_a.integers(0, 100, size=5), gen_b.integers(0, 100, size=5)
        )

    def test_sample_batches_shapes(self):
        ds = make(10)
        xs, ys = ds.sample_batches(5, 4, rng=0)
        assert xs.shape == (5, 4, 3) and ys.shape == (5, 4)

    def test_sample_batches_caps_at_dataset_size(self):
        ds = make(3)
        xs, _ys = ds.sample_batches(2, 10, rng=0)
        assert xs.shape[:2] == (2, 3)

    def test_sample_batches_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="empty"):
            Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 2).sample_batches(1, 1)
        with pytest.raises(ValueError, match="num_batches"):
            make(5).sample_batches(0, 2)

    def test_class_distribution_sums_to_one(self):
        ds = make(50)
        dist = ds.class_distribution()
        assert dist.shape == (4,)
        assert dist.sum() == pytest.approx(1.0)
        np.testing.assert_array_equal(ds.class_counts(), (dist * 50).round())

    def test_class_distribution_empty_is_uniform(self):
        ds = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 4)
        np.testing.assert_allclose(ds.class_distribution(), 0.25)

    def test_shuffled_is_permutation(self):
        ds = make(12)
        shuffled = ds.shuffled(rng=1)
        assert sorted(shuffled.y.tolist()) == sorted(ds.y.tolist())
        assert len(shuffled) == len(ds)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(make(20), test_fraction=0.25, rng=0)
        assert len(test) == 5 and len(train) == 15

    def test_disjoint_and_covering(self):
        ds = Dataset(np.arange(20).reshape(20, 1), np.zeros(20, dtype=int), 1)
        train, test = train_test_split(ds, test_fraction=0.3, rng=0)
        values = sorted(np.concatenate([train.x, test.x]).ravel().tolist())
        assert values == list(range(20))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(make(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(make(10), test_fraction=1.0)

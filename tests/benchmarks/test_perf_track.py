"""perf_schema / perf_track: schema validation, adapters, diff semantics."""

import json

import pytest

import perf_schema
import perf_track
from perf_schema import PerfCell, load_report, make_report, write_report
from perf_track import (
    ADAPTERS,
    HOST_INSENSITIVE,
    compare_cells,
    load_any,
    metric_direction,
)


class TestPerfCell:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            PerfCell("")

    def test_normalizes_metric_values(self):
        cell = PerfCell("c", {
            "identical": True,
            "sublinear": False,
            "seconds": 1,
            "skipped": None,
        })
        assert cell.metrics == {
            "identical": 1.0, "sublinear": 0.0, "seconds": 1.0,
        }
        assert all(isinstance(v, float) for v in cell.metrics.values())

    def test_dict_round_trip(self):
        cell = PerfCell("c", {"seconds": 2.5})
        assert PerfCell.from_dict(cell.to_dict()) == cell


class TestReportEnvelope:
    def test_make_report_carries_provenance(self):
        report = make_report("w", [PerfCell("a", {"seconds": 1.0})],
                             meta={"note": "x"})
        assert report["schema_version"] == perf_schema.SCHEMA_VERSION
        assert report["workload"] == "w"
        assert set(report["host"]) == {
            "cpu_count", "platform", "python", "numpy",
        }
        assert report["meta"] == {"note": "x"}

    def test_duplicate_cell_names_rejected(self):
        cells = [PerfCell("a"), PerfCell("a")]
        with pytest.raises(ValueError, match="duplicate"):
            make_report("w", cells)

    def test_write_load_round_trip(self, tmp_path):
        report = make_report("w", [PerfCell("a", {"seconds": 1.0})])
        path = write_report(tmp_path / "sub" / "report.json", report)
        loaded = load_report(path)
        assert loaded["workload"] == "w"
        (cell,) = loaded["cells"]
        assert cell == PerfCell("a", {"seconds": 1.0})

    def test_load_rejects_foreign_schema_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99, "cells": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_report(path)

    def test_git_revision_shape(self):
        revision = perf_schema.git_revision()
        assert revision is None or (revision and "\n" not in revision)


class TestMetricDirection:
    @pytest.mark.parametrize("name", [
        "train_seconds", "peak_rss_mb", "overhead", "sinks_overhead",
        "steps_to_target", "late_drops", "unknown_metric",
    ])
    def test_lower_is_better(self, name):
        assert metric_direction(name) == 1

    @pytest.mark.parametrize("name", [
        "speedup", "steps_per_second", "final_accuracy", "best_accuracy",
        "identical", "sinks_identical", "sublinear",
    ])
    def test_higher_is_better(self, name):
        assert metric_direction(name) == -1


class TestCompareCells:
    def _rows(self, base, fresh, tolerance=0.10, metrics_filter=None):
        return compare_cells(
            [PerfCell("c", base)], [PerfCell("c", fresh)],
            tolerance, metrics_filter,
        )

    def test_within_tolerance_is_ok(self):
        (row,) = self._rows({"seconds": 1.0}, {"seconds": 1.05})
        assert row["status"] == "ok"
        assert row["change"] == pytest.approx(0.05)

    def test_slower_seconds_regress(self):
        (row,) = self._rows({"seconds": 1.0}, {"seconds": 1.5})
        assert row["status"] == "regressed"

    def test_faster_seconds_improve(self):
        (row,) = self._rows({"seconds": 1.0}, {"seconds": 0.5})
        assert row["status"] == "improved"

    def test_direction_flips_for_accuracy(self):
        (row,) = self._rows({"final_accuracy": 0.8}, {"final_accuracy": 0.6})
        assert row["status"] == "regressed"
        (row,) = self._rows({"final_accuracy": 0.6}, {"final_accuracy": 0.8})
        assert row["status"] == "improved"

    def test_lost_identity_flag_always_regresses(self):
        (row,) = self._rows({"identical": 1.0}, {"identical": 0.0},
                            tolerance=0.5)
        assert row["status"] == "regressed"

    def test_missing_metric_and_cell(self):
        (row,) = self._rows({"seconds": 1.0}, {})
        assert row["status"] == "missing"
        (row,) = compare_cells([PerfCell("gone", {"seconds": 1.0})],
                               [], 0.1)
        assert (row["cell"], row["status"]) == ("gone", "missing")

    def test_fresh_only_cells_are_new_not_failures(self):
        rows = compare_cells([], [PerfCell("added", {"seconds": 1.0})], 0.1)
        assert [(r["cell"], r["status"]) for r in rows] == [("added", "new")]

    def test_metrics_filter_restricts_comparison(self):
        rows = self._rows(
            {"seconds": 1.0, "identical": 1.0},
            {"seconds": 9.0, "identical": 1.0},
            metrics_filter=HOST_INSENSITIVE,
        )
        assert [r["metric"] for r in rows] == ["identical"]
        assert rows[0]["status"] == "ok"

    def test_zero_baseline_uses_absolute_scale(self):
        (row,) = self._rows({"late_drops": 0.0}, {"late_drops": 1.0})
        assert row["change"] == pytest.approx(1.0)
        assert row["status"] == "regressed"


class TestAdapters:
    def test_every_committed_baseline_adapts(self):
        for name in ADAPTERS:
            path = perf_track.RESULTS_DIR / name
            assert path.exists(), f"missing committed baseline {name}"
            workload, cells = load_any(path)
            assert workload == path.stem
            assert cells, f"{name} adapted to zero cells"
            names = [cell.name for cell in cells]
            assert len(set(names)) == len(names)
            for cell in cells:
                assert cell.metrics, f"{cell.name} has no metrics"

    def test_obs_adapter_exposes_gated_metrics(self):
        _, cells = load_any(perf_track.RESULTS_DIR / "BENCH_obs.json")
        (cell,) = cells
        gated = set(cell.metrics) & set(HOST_INSENSITIVE)
        assert {"identical", "sinks_identical", "profiled_identical",
                "events", "spans", "metric_families"} <= gated
        assert "profiler_overhead" in cell.metrics

    def test_canonical_report_loads_without_adapter(self, tmp_path):
        report = make_report("custom", [PerfCell("a", {"seconds": 1.0})])
        path = write_report(tmp_path / "fresh.json", report)
        workload, cells = load_any(path)
        assert workload == "custom"
        assert cells == [PerfCell("a", {"seconds": 1.0})]

    def test_unknown_adhoc_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_mystery.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ValueError, match="no adapter is registered"):
            load_any(path)


class TestCli:
    def test_self_diff_of_committed_baseline_passes(self, capsys):
        baseline = perf_track.RESULTS_DIR / "BENCH_obs.json"
        rc = perf_track.main([
            "--fresh", str(baseline), "--baseline", str(baseline),
        ])
        assert rc == 0
        assert "regressed" not in capsys.readouterr().out

    def test_diff_fails_on_regression(self, tmp_path, capsys):
        base = write_report(
            tmp_path / "base.json",
            make_report("w", [PerfCell("a", {"seconds": 1.0})]),
        )
        fresh = write_report(
            tmp_path / "fresh.json",
            make_report("w", [PerfCell("a", {"seconds": 2.0})]),
        )
        rc = perf_track.main([
            "--fresh", str(fresh), "--baseline", str(base),
        ])
        assert rc == 1
        assert "FATAL" in capsys.readouterr().err

    def test_list_mode_runs(self, capsys):
        assert perf_track.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ADAPTERS:
            assert name in out

"""Make the top-level ``benchmarks/`` tooling importable from tests."""

import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

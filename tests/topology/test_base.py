"""repro.topology core: registries, factories, plans, determinism."""

import numpy as np
import pytest

from repro.topology import (
    AGGREGATION_STRATEGIES,
    DEFAULT_STRATEGY,
    TOPOLOGY_KINDS,
    ClusteredTopology,
    GossipTopology,
    HierarchicalTopology,
    check_sync_inputs,
    default_num_clusters,
    default_strategy_name,
    make_aggregation,
    make_topology,
    validate_pair,
)
from repro.utils.rng import SeedSequenceFactory


def bound(topology, num_edges=6, seed=0):
    topology.bind(num_edges, SeedSequenceFactory(seed))
    return topology


class TestRegistries:
    def test_every_topology_has_a_default_strategy(self):
        assert set(DEFAULT_STRATEGY) == set(TOPOLOGY_KINDS)
        assert set(DEFAULT_STRATEGY.values()) <= set(AGGREGATION_STRATEGIES)

    def test_validate_pair_resolves_defaults(self):
        for topology in TOPOLOGY_KINDS:
            assert validate_pair(topology, None) == DEFAULT_STRATEGY[topology]
            assert default_strategy_name(topology) == DEFAULT_STRATEGY[topology]

    def test_validate_pair_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown topology"):
            validate_pair("ring", None)
        with pytest.raises(ValueError, match="unknown aggregation"):
            validate_pair("hierarchical", "median")
        with pytest.raises(ValueError, match="unknown topology"):
            default_strategy_name("ring")

    def test_validate_pair_rejects_incompatible_combinations(self):
        with pytest.raises(ValueError, match="does not support"):
            validate_pair("gossip", "ipw")
        with pytest.raises(ValueError, match="does not support"):
            validate_pair("hierarchical", "cluster_mix")
        # The one genuine cross-combination: gossip_avg on clusters.
        assert validate_pair("clustered", "gossip_avg") == "gossip_avg"

    def test_make_topology_round_trips_names(self):
        for name in TOPOLOGY_KINDS:
            assert make_topology(name).name == name
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("ring")

    def test_make_aggregation_binds_and_validates(self):
        topology = bound(make_topology("hierarchical"))
        strategy = make_aggregation(None, topology)
        assert strategy.name == "ipw"
        assert strategy.topology is topology
        with pytest.raises(ValueError, match="does not support"):
            make_aggregation("gossip_avg", topology)


class TestTopologyLifecycle:
    def test_unbound_topology_refuses_plans(self):
        with pytest.raises(RuntimeError, match="not bound"):
            HierarchicalTopology().sync_plan(0, np.ones(3))

    def test_bind_rejects_bad_edge_counts(self):
        with pytest.raises(ValueError, match="positive"):
            HierarchicalTopology().bind(0, SeedSequenceFactory(0))

    def test_state_dict_round_trip(self):
        for name in TOPOLOGY_KINDS:
            topology = bound(make_topology(name))
            twin = bound(make_topology(name))
            twin.load_state_dict(topology.state_dict())

    def test_legacy_empty_state_accepted(self):
        bound(make_topology("gossip")).load_state_dict({})

    def test_state_dict_mismatches_rejected(self):
        topology = bound(make_topology("clustered"))
        with pytest.raises(ValueError, match="topology state is for"):
            topology.load_state_dict({"name": "gossip"})
        with pytest.raises(ValueError, match="edges"):
            topology.load_state_dict({"name": "clustered", "num_edges": 9})
        with pytest.raises(ValueError, match="clusters"):
            topology.load_state_dict(
                {"name": "clustered", "num_edges": 6, "num_clusters": 5}
            )
        gossip = bound(make_topology("gossip", gossip_degree=2))
        with pytest.raises(ValueError, match="degree"):
            gossip.load_state_dict(
                {"name": "gossip", "num_edges": 6, "degree": 3}
            )


class TestHierarchicalPlan:
    def test_single_group_of_all_edges(self):
        plan = bound(HierarchicalTopology(), 4).sync_plan(5, np.ones(4))
        assert plan.step == 5
        assert plan.groups == ((0, 1, 2, 3),)
        assert plan.group_of == (0, 0, 0, 0)
        assert plan.mixing is None
        assert HierarchicalTopology.has_cloud


class TestClusteredPlan:
    def test_default_cluster_count_is_sqrt_like(self):
        assert default_num_clusters(1) == 1
        assert default_num_clusters(2) == 2
        assert default_num_clusters(4) == 2
        assert default_num_clusters(9) == 3
        assert default_num_clusters(10) == 4

    def test_groups_partition_the_edges(self):
        topology = bound(ClusteredTopology(num_clusters=3), 7)
        plan = topology.sync_plan(0, np.ones(7))
        flattened = sorted(n for group in plan.groups for n in group)
        assert flattened == list(range(7))
        for n in range(7):
            assert n in plan.groups[plan.group_of[n]]

    def test_mixing_matrix_is_row_stochastic_with_zero_diagonal(self):
        plan = bound(ClusteredTopology(num_clusters=3), 9).sync_plan(
            0, np.ones(9)
        )
        np.testing.assert_allclose(plan.mixing.sum(axis=1), 1.0)
        np.testing.assert_allclose(np.diag(plan.mixing), 0.0)

    def test_single_cluster_mixes_with_itself(self):
        plan = bound(ClusteredTopology(num_clusters=1), 3).sync_plan(
            0, np.ones(3)
        )
        np.testing.assert_array_equal(plan.mixing, np.eye(1))

    def test_more_clusters_than_edges_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            bound(ClusteredTopology(num_clusters=5), 3)
        with pytest.raises(ValueError, match="positive"):
            ClusteredTopology(num_clusters=0)


class TestGossipPlan:
    def test_each_group_is_self_plus_degree_peers(self):
        topology = bound(GossipTopology(degree=2), 6)
        plan = topology.sync_plan(3, np.ones(6))
        assert plan.group_of == tuple(range(6))
        for n, group in enumerate(plan.groups):
            assert group[0] == n
            peers = group[1:]
            assert len(peers) == 2
            assert n not in peers
            assert len(set(peers)) == 2
            assert all(0 <= p < 6 for p in peers)

    def test_degree_saturates_at_all_peers(self):
        plan = bound(GossipTopology(degree=10), 3).sync_plan(0, np.ones(3))
        assert all(len(group) == 3 for group in plan.groups)

    def test_plans_depend_only_on_seed_and_step(self):
        a = bound(GossipTopology(degree=2), 8, seed=7)
        b = bound(GossipTopology(degree=2), 8, seed=7)
        other_seed = bound(GossipTopology(degree=2), 8, seed=8)
        assert a.sync_plan(4, np.ones(8)).groups == b.sync_plan(4, np.ones(8)).groups
        differs = any(
            a.sync_plan(t, np.ones(8)).groups
            != other_seed.sync_plan(t, np.ones(8)).groups
            for t in range(5)
        )
        assert differs, "different master seeds should draw different peers"
        varies = any(
            a.sync_plan(0, np.ones(8)).groups != a.sync_plan(t, np.ones(8)).groups
            for t in range(1, 5)
        )
        assert varies, "peer draws should vary across sync steps"


class TestSyncInputGuards:
    def test_empty_edge_list_rejected(self):
        with pytest.raises(ValueError, match="empty edge list"):
            check_sync_inputs("ipw", [], np.array([]))

    def test_misaligned_counts_rejected(self):
        with pytest.raises(ValueError, match="align"):
            check_sync_inputs("ipw", [np.zeros(2)], np.array([1, 2]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_sync_inputs("ipw", [np.zeros(2)], np.array([-1]))

    def test_all_zero_population_rejected(self):
        with pytest.raises(ValueError, match="no devices"):
            check_sync_inputs(
                "gossip_avg", [np.zeros(2), np.zeros(2)], np.array([0, 0])
            )

"""End-to-end topology contracts on the real trainer.

The acceptance criteria of the topology PR: (1) the default
``hierarchical`` + ``ipw`` pair is bit-identical to the pre-topology
trainer (the runnable reference twin) on every executor backend;
(2) the clustered and gossip modes are deterministic under a fixed
seed and replay exactly across checkpoint kill/resume; (3) a
checkpoint taken under one topology refuses to restore into another.
"""

import numpy as np
import pytest

from repro.experiments.config import PRESETS
from repro.experiments.runner import run_single
from repro.faults import TrainerCheckpoint
from repro.topology import TOPOLOGY_KINDS
from repro.topology.reference import ReferenceTwinTrainer, run_reference

BASE = PRESETS["blobs-bench"].with_overrides(
    num_devices=16,
    num_edges=4,
    num_steps=10,
    trace_kind="markov",
    seed=0,
)

TOPOLOGY_OVERRIDES = {
    "hierarchical": {},
    "clustered": {"topology": "clustered", "num_clusters": 2},
    "gossip": {"topology": "gossip", "gossip_degree": 2},
}


def config_for(topology, **extra):
    return BASE.with_overrides(**{**TOPOLOGY_OVERRIDES[topology], **extra})


def assert_identical(a, b):
    assert a.history.steps == b.history.steps
    assert a.history.accuracy == b.history.accuracy
    assert a.history.loss == b.history.loss
    np.testing.assert_array_equal(a.participation_counts, b.participation_counts)


class TestDefaultPairBitIdentity:
    """hierarchical+ipw vs the verbatim pre-topology trainer."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_matches_reference_twin(self, executor):
        config = BASE
        if executor != "serial":
            config = BASE.with_overrides(executor=executor, num_workers=2)
        assert_identical(run_reference(BASE, "mach"), run_single(config, "mach"))

    def test_twin_refuses_alternative_topologies(self):
        config = config_for("gossip")
        with pytest.raises(ValueError, match="hierarchical"):
            run_reference(config, "uniform")


class TestSeededDeterminism:
    @pytest.mark.parametrize("topology", ["clustered", "gossip"])
    def test_same_seed_replays_exactly(self, topology):
        config = config_for(topology)
        assert_identical(run_single(config, "mach"), run_single(config, "mach"))

    @pytest.mark.parametrize("topology", ["clustered", "gossip"])
    def test_thread_executor_matches_serial(self, topology):
        config = config_for(topology)
        threaded = config.with_overrides(executor="thread", num_workers=2)
        assert_identical(run_single(config, "mach"), run_single(threaded, "mach"))

    def test_different_seeds_diverge(self):
        config = config_for("gossip")
        a = run_single(config, "mach")
        b = run_single(config.with_overrides(seed=1), "mach")
        assert a.history.accuracy != b.history.accuracy


class TestKillResumeParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGY_KINDS))
    def test_resume_matches_uninterrupted(self, topology, tmp_path):
        config = config_for(topology)
        path = str(tmp_path / "ckpt.json")
        uninterrupted = run_single(config, "mach")
        run_single(
            config.with_overrides(
                num_steps=5, checkpoint_every=5, checkpoint_path=path
            ),
            "mach",
        )
        resumed = run_single(config, "mach", resume_from=path)
        assert_identical(uninterrupted, resumed)

    def test_checkpoint_refuses_wrong_topology(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_single(
            config_for("gossip").with_overrides(
                num_steps=5, checkpoint_every=5, checkpoint_path=path
            ),
            "mach",
        )
        checkpoint = TrainerCheckpoint.load(path)
        assert checkpoint.topology_name == "gossip"
        assert checkpoint.aggregation_name == "gossip_avg"
        with pytest.raises(ValueError, match="topology"):
            run_single(config_for("clustered"), "mach", resume_from=path)

    def test_checkpoint_refuses_wrong_topology_parameters(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_single(
            config_for("gossip").with_overrides(
                num_steps=5, checkpoint_every=5, checkpoint_path=path
            ),
            "mach",
        )
        with pytest.raises(ValueError, match="degree"):
            run_single(
                config_for("gossip", gossip_degree=3), "mach", resume_from=path
            )

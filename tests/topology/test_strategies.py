"""Aggregation-strategy math on hand-built plans and fake edges."""

import numpy as np
import pytest

from repro.hfl.cloud import Cloud
from repro.hfl.edge import Edge
from repro.topology import (
    ClusteredTopology,
    ClusterMixAggregation,
    GossipAveraging,
    GossipTopology,
    HierarchicalTopology,
    IPWAggregation,
    make_topology,
)
from repro.topology.base import weighted_group_average
from repro.utils.rng import SeedSequenceFactory

DIM = 3


def build(topology_name, strategy, num_edges, **topology_kwargs):
    topology = make_topology(topology_name, **topology_kwargs)
    topology.bind(num_edges, SeedSequenceFactory(0))
    strategy.bind(topology)
    cloud = Cloud(DIM)
    edges = [Edge(n, 1.0, DIM) for n in range(num_edges)]
    return topology, strategy, cloud, edges


def constant_uploads(values):
    return [np.full(DIM, float(v)) for v in values]


class TestIPW:
    def test_matches_cloud_aggregate_and_broadcast(self):
        topology, strategy, cloud, edges = build(
            "hierarchical", IPWAggregation(), 3
        )
        counts = np.array([3.0, 1.0, 0.0])
        uploads = constant_uploads([1.0, 5.0, 100.0])
        plan = topology.sync_plan(0, counts)
        strategy.apply(plan, uploads, counts, cloud, edges)
        expected = (3 * 1.0 + 1 * 5.0) / 4  # zero-count edge contributes nothing
        np.testing.assert_allclose(cloud.model, expected)
        for edge in edges:
            np.testing.assert_array_equal(edge.model, cloud.model)

    def test_incompatible_with_cloudless_topologies(self):
        gossip = make_topology("gossip")
        gossip.bind(3, SeedSequenceFactory(0))
        with pytest.raises(ValueError, match="does not support"):
            IPWAggregation().bind(gossip)


class TestClusterMix:
    def apply(self, mixing_weight, counts, uploads, num_edges=4, clusters=2):
        topology, strategy, cloud, edges = build(
            "clustered",
            ClusterMixAggregation(mixing_weight=mixing_weight),
            num_edges,
            num_clusters=clusters,
        )
        plan = topology.sync_plan(0, counts)
        strategy.apply(plan, uploads, counts, cloud, edges)
        return plan, cloud, edges

    def test_lambda_zero_is_pure_per_cluster_training(self):
        counts = np.array([1.0, 3.0, 2.0, 2.0])
        plan, cloud, edges = self.apply(
            0.0, counts, constant_uploads([0.0, 4.0, 10.0, 20.0])
        )
        # Cluster {0,1}: (1*0 + 3*4)/4 = 3; cluster {2,3}: (2*10 + 2*20)/4 = 15.
        np.testing.assert_allclose(edges[0].model, 3.0)
        np.testing.assert_allclose(edges[1].model, 3.0)
        np.testing.assert_allclose(edges[2].model, 15.0)
        np.testing.assert_allclose(edges[3].model, 15.0)
        # Global = count-weighted average of the cluster models.
        np.testing.assert_allclose(cloud.model, (4 * 3.0 + 4 * 15.0) / 8)

    def test_lambda_one_is_full_neighbor_exchange(self):
        counts = np.array([1.0, 3.0, 2.0, 2.0])
        plan, cloud, edges = self.apply(
            1.0, counts, constant_uploads([0.0, 4.0, 10.0, 20.0])
        )
        # With two clusters and uniform off-diagonal mixing, λ=1 swaps
        # the cluster aggregates outright.
        np.testing.assert_allclose(edges[0].model, 15.0)
        np.testing.assert_allclose(edges[3].model, 3.0)

    def test_intermediate_lambda_interpolates(self):
        counts = np.ones(4)
        plan, cloud, edges = self.apply(
            0.25, counts, constant_uploads([0.0, 0.0, 8.0, 8.0])
        )
        np.testing.assert_allclose(edges[0].model, 0.75 * 0.0 + 0.25 * 8.0)
        np.testing.assert_allclose(edges[2].model, 0.75 * 8.0 + 0.25 * 0.0)

    def test_mixing_weight_validated(self):
        with pytest.raises(ValueError):
            ClusterMixAggregation(mixing_weight=1.5)

    def test_devicless_cluster_falls_back_to_unweighted_mean(self):
        counts = np.array([2.0, 2.0, 0.0, 0.0])
        plan, cloud, edges = self.apply(
            0.0, counts, constant_uploads([1.0, 3.0, 10.0, 30.0])
        )
        # Cluster {2,3} has no devices: plain mean keeps its edges live.
        np.testing.assert_allclose(edges[2].model, 20.0)
        # ...but it contributes zero weight to the global model.
        np.testing.assert_allclose(cloud.model, 2.0)


class TestGossipAveraging:
    def test_neighborhood_uniform_mean_from_presync_uploads(self):
        topology, strategy, cloud, edges = build(
            "gossip", GossipAveraging(), 4, gossip_degree=2
        )
        counts = np.ones(4)
        uploads = constant_uploads([0.0, 1.0, 2.0, 3.0])
        plan = topology.sync_plan(0, counts)
        strategy.apply(plan, uploads, counts, cloud, edges)
        for n in range(4):
            group = plan.groups[n]
            expected = np.mean([uploads[k][0] for k in group])
            np.testing.assert_allclose(edges[n].model, expected)
        expected_global = np.mean([edge.model for edge in edges], axis=0)
        np.testing.assert_allclose(cloud.model, expected_global)

    def test_runs_on_clusters_as_unweighted_cluster_mean(self):
        topology, strategy, cloud, edges = build(
            "clustered", GossipAveraging(), 4, num_clusters=2
        )
        counts = np.array([5.0, 1.0, 1.0, 1.0])
        uploads = constant_uploads([0.0, 4.0, 10.0, 30.0])
        plan = topology.sync_plan(0, counts)
        strategy.apply(plan, uploads, counts, cloud, edges)
        # Unweighted within the cluster, regardless of member counts.
        np.testing.assert_allclose(edges[0].model, 2.0)
        np.testing.assert_allclose(edges[2].model, 20.0)


class TestWeightedGroupAverage:
    def test_weights_by_member_counts(self):
        uploads = constant_uploads([1.0, 5.0])
        out = weighted_group_average((0, 1), uploads, np.array([3.0, 1.0]))
        np.testing.assert_allclose(out, 2.0)

    def test_zero_count_group_uses_plain_mean(self):
        uploads = constant_uploads([1.0, 5.0])
        out = weighted_group_average((0, 1), uploads, np.array([0.0, 0.0]))
        np.testing.assert_allclose(out, 3.0)


class TestStrategyGuards:
    @pytest.mark.parametrize(
        "topology_name,strategy,kwargs",
        [
            ("hierarchical", IPWAggregation(), {}),
            ("clustered", ClusterMixAggregation(), {"num_clusters": 2}),
            ("gossip", GossipAveraging(), {"gossip_degree": 1}),
        ],
    )
    def test_all_zero_counts_raise_everywhere(self, topology_name, strategy, kwargs):
        topology, strategy, cloud, edges = build(
            topology_name, strategy, 2, **kwargs
        )
        counts = np.zeros(2)
        plan = topology.sync_plan(0, counts)
        with pytest.raises(ValueError, match="no devices"):
            strategy.apply(plan, constant_uploads([1.0, 2.0]), counts, cloud, edges)

    def test_empty_upload_list_raises(self):
        topology, strategy, cloud, edges = build(
            "gossip", GossipAveraging(), 2, gossip_degree=1
        )
        plan = topology.sync_plan(0, np.ones(2))
        with pytest.raises(ValueError, match="empty"):
            strategy.apply(plan, [], np.array([]), cloud, edges)

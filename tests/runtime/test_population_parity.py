"""City-scale engine parity: population-batched updates bit-identical
to the per-device reference twin on all three executors and under
kill/resume; top-k MACH and adaptive evaluation semantics."""

import numpy as np
import pytest

from repro.core.mach import MACHConfig, MACHSampler
from repro.hfl.device import Device
from repro.runtime import EXECUTOR_KINDS
from repro.runtime.work_items import LocalUpdateItem, WorkerContext
from repro.nn.population import population_batching_disabled
from repro.data.synthetic import make_blobs_dataset
from repro.nn.architectures import build_mlp

from tests.faults.test_degradation import build_trainer


def run_history(executor="serial", batched=True, steps=10, resume=None,
                checkpoint=None, **overrides):
    trainer = build_trainer(
        MACHSampler(), executor=executor,
        num_workers=2 if executor != "serial" else None,
        **overrides,
    )
    with trainer:
        if batched:
            result = trainer.run(num_steps=steps, resume_from=resume)
        else:
            with population_batching_disabled():
                result = trainer.run(num_steps=steps, resume_from=resume)
        cloud = trainer.cloud.model.copy()
    return result, cloud


class TestBatchedExecutorParity:
    def test_batched_matches_reference_on_every_executor(self):
        ref_result, ref_cloud = run_history("serial", batched=False)
        for kind in EXECUTOR_KINDS:
            result, cloud = run_history(kind, batched=True)
            assert result.history.steps == ref_result.history.steps
            assert result.history.accuracy == ref_result.history.accuracy
            assert result.history.loss == ref_result.history.loss
            np.testing.assert_array_equal(cloud, ref_cloud)
            np.testing.assert_array_equal(
                result.participation_counts, ref_result.participation_counts
            )

    def test_batched_kill_resume_replays_exactly(self, tmp_path):
        path = tmp_path / "ckpt.json"
        # Kill on an eval boundary so the checkpointed history aligns.
        ckpt_cfg = dict(checkpoint_every=5, checkpoint_path=str(path))
        straight, straight_cloud = run_history("serial", steps=10, **ckpt_cfg)
        run_history("serial", steps=5, **ckpt_cfg)
        resumed, resumed_cloud = run_history(
            "serial", steps=10, resume=str(path), **ckpt_cfg
        )
        assert resumed.history.steps == straight.history.steps
        assert resumed.history.accuracy == straight.history.accuracy
        assert resumed.history.loss == straight.history.loss
        np.testing.assert_array_equal(resumed_cloud, straight_cloud)

    def test_resume_into_reference_twin_matches_batched(self, tmp_path):
        """A checkpoint written by the batched engine must resume to the
        same history on the per-device reference path."""
        path = tmp_path / "ckpt.json"
        ckpt_cfg = dict(checkpoint_every=5, checkpoint_path=str(path))
        straight, _ = run_history("serial", steps=10, **ckpt_cfg)
        run_history("serial", steps=5, batched=True, **ckpt_cfg)
        resumed, _ = run_history(
            "serial", steps=10, batched=False, resume=str(path), **ckpt_cfg
        )
        assert resumed.history.accuracy == straight.history.accuracy
        assert resumed.history.loss == straight.history.loss


class TestRunItemsFallbacks:
    @pytest.fixture
    def context(self, rng):
        datasets = [
            make_blobs_dataset(30, num_features=16, num_classes=10, rng=rng)
            for _ in range(4)
        ]
        devices = [Device(i, ds) for i, ds in enumerate(datasets)]
        model = build_mlp(16, hidden=(12,), rng=rng)
        return WorkerContext(model, devices, master_seed=7)

    @staticmethod
    def items(device_ids, **overrides):
        base = dict(step=2, edge=1, local_epochs=3, learning_rate=0.05,
                    batch_size=8)
        base.update(overrides)
        return tuple(
            LocalUpdateItem(device_id=d, **base) for d in device_ids
        )

    @staticmethod
    def assert_results_equal(pairs, reference):
        assert [d for d, _ in pairs] == [d for d, _ in reference]
        for (_, a), (_, b) in zip(pairs, reference):
            np.testing.assert_array_equal(a.final_model, b.final_model)
            assert a.grad_sq_norms == b.grad_sq_norms
            assert a.mean_loss == b.mean_loss

    def test_run_items_matches_run_item(self, context):
        items = self.items([0, 1, 2, 3])
        start = context.model.flat_copy()
        batched = context.run_items(start, items)
        reference = [
            (item.device_id, context.run_item(start, item)) for item in items
        ]
        self.assert_results_equal(batched, reference)

    def test_heterogeneous_hyperparams_fall_back(self, context):
        items = self.items([0, 1]) + self.items([2], learning_rate=0.01)
        assert not context._batchable(items)
        start = context.model.flat_copy()
        pairs = context.run_items(start, items)
        reference = [
            (item.device_id, context.run_item(start, item)) for item in items
        ]
        self.assert_results_equal(pairs, reference)

    def test_uneven_dataset_sizes_fall_back(self, rng):
        datasets = [
            make_blobs_dataset(n, num_features=16, num_classes=10, rng=rng)
            for n in (30, 5)  # 5 < batch_size clips the effective batch
        ]
        devices = [Device(i, ds) for i, ds in enumerate(datasets)]
        context = WorkerContext(
            build_mlp(16, hidden=(12,), rng=rng), devices, master_seed=7
        )
        items = self.items([0, 1])
        assert not context._batchable(items)
        start = context.model.flat_copy()
        self.assert_results_equal(
            context.run_items(start, items),
            [(i.device_id, context.run_item(start, i)) for i in items],
        )

    def test_single_item_uses_per_device_path(self, context):
        assert not context._batchable(self.items([0]))

    def test_pickle_drops_population_cache(self, context):
        import pickle

        items = self.items([0, 1])
        context.run_items(context.model.flat_copy(), items)
        assert context._pop_model is not None
        clone = pickle.loads(pickle.dumps(context))
        assert clone._pop_model is None
        start = context.model.flat_copy()
        self.assert_results_equal(
            clone.run_items(start, items),
            context.run_items(start, items),
        )


class TestTopKSelection:
    def test_topk_with_big_pool_equals_full(self):
        full = MACHSampler(MACHConfig(selection="full"))
        topk = MACHSampler(
            MACHConfig(selection="topk", min_candidates=10_000)
        )
        r_full, c_full = (
            build_trainer(full).run(num_steps=8),
            None,
        )
        r_topk = build_trainer(topk).run(num_steps=8)
        assert r_topk.history.accuracy == r_full.history.accuracy
        assert r_topk.history.loss == r_full.history.loss

    def test_topk_prescreen_is_deterministic(self):
        def run():
            sampler = MACHSampler(
                MACHConfig(selection="topk", min_candidates=2,
                           candidate_factor=1.0)
            )
            return build_trainer(sampler).run(num_steps=10)

        a, b = run(), run()
        assert a.history.accuracy == b.history.accuracy
        np.testing.assert_array_equal(
            a.participation_counts, b.participation_counts
        )

    def test_topk_zeroes_non_candidates(self):
        sampler = MACHSampler(
            MACHConfig(selection="topk", min_candidates=2,
                       candidate_factor=1.0)
        )
        sampler.setup(
            [type("P", (), {"device_id": i})() for i in range(20)], 2
        )
        for m in range(20):
            sampler.tracker.record(m, [float(m + 1)])
        sampler.on_global_sync(0)
        probs = sampler.probabilities(1, 0, np.arange(20), capacity=2.0)
        assert probs.shape == (20,)
        assert (probs > 0).sum() <= 2
        # The highest-experience members are the surviving candidates.
        assert probs[19] > 0

    def test_invalid_selection_rejected(self):
        with pytest.raises(ValueError, match="selection"):
            MACHConfig(selection="bogus")


class TestAdaptiveEvalCadence:
    def test_plateau_backs_off_and_movement_resets(self):
        fixed = build_trainer(MACHSampler()).run(num_steps=30)
        adaptive = build_trainer(
            MACHSampler(), eval_cadence="adaptive", eval_accuracy_delta=0.02
        ).run(num_steps=30)
        fixed_map = dict(zip(fixed.history.steps, fixed.history.accuracy))
        # Adaptive evals are a subset of steps and agree wherever a
        # fixed-cadence eval also landed (evaluation is a pure observer).
        assert len(adaptive.history.steps) <= len(fixed.history.steps)
        for step, acc in zip(adaptive.history.steps, adaptive.history.accuracy):
            if step in fixed_map:
                assert acc == fixed_map[step]
        assert adaptive.history.steps[-1] == 30  # final step always evaluated

    def test_adaptive_resume_replays_exactly(self, tmp_path):
        path = tmp_path / "ckpt.json"
        cfg = dict(
            eval_cadence="adaptive", eval_accuracy_delta=0.02,
            checkpoint_every=5, checkpoint_path=str(path),
        )
        straight = build_trainer(MACHSampler(), **cfg).run(num_steps=24)
        build_trainer(MACHSampler(), **cfg).run(num_steps=5)
        resumed = build_trainer(MACHSampler(), **cfg).run(
            num_steps=24, resume_from=str(path)
        )
        assert resumed.history.steps == straight.history.steps
        assert resumed.history.accuracy == straight.history.accuracy
        assert resumed.history.loss == straight.history.loss

    def test_invalid_cadence_rejected(self):
        from repro.hfl.config import HFLConfig

        with pytest.raises(ValueError, match="eval_cadence"):
            HFLConfig(eval_cadence="sometimes")
        with pytest.raises(ValueError, match="eval_max_interval"):
            HFLConfig(eval_cadence="adaptive", eval_max_interval=2,
                      sync_interval=5)
